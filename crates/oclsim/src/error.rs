//! Error type shared by every layer of the simulated OpenCL platform.

use std::fmt;

/// Errors produced by the `oclsim` runtime, compiler, and executor.
///
/// The variants mirror the error classes a real OpenCL implementation
/// reports (build failures, invalid kernel arguments, launch geometry
/// errors, resource exhaustion), plus the execution-time faults a simulator
/// can detect that real hardware silently turns into undefined behaviour
/// (out-of-bounds accesses, divergent barriers).
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Program compilation failed. Contains the build log.
    BuildFailure(String),
    /// A kernel with the requested name does not exist in the program.
    NoSuchKernel(String),
    /// A kernel argument was not set or has the wrong type.
    InvalidArg {
        kernel: String,
        index: usize,
        reason: String,
    },
    /// The launch geometry is invalid (zero sizes, local does not divide
    /// global, work-group too large, ...).
    InvalidLaunch(String),
    /// A device resource limit was exceeded (global/local/constant memory).
    OutOfResources(String),
    /// The device cannot run this kernel (e.g. fp64 code on a device
    /// without fp64 support).
    UnsupportedCapability(String),
    /// A work-item accessed memory outside any allocation. Real OpenCL
    /// makes this undefined behaviour; the simulator traps it.
    MemoryFault {
        space: &'static str,
        offset: u64,
        len: u64,
        detail: String,
    },
    /// `barrier()` was executed with only part of the work-group active.
    /// Undefined behaviour in OpenCL; trapped here.
    BarrierDivergence(String),
    /// The dynamic race sanitizer observed two work-items touching the same
    /// memory cell with no barrier between them (at least one a write).
    /// Undefined behaviour in OpenCL; only reported when the sanitizer is
    /// enabled via `Program::set_sanitize`.
    DataRace {
        space: &'static str,
        offset: u64,
        detail: String,
    },
    /// Arithmetic fault trapped by the simulator (integer division by zero).
    ArithmeticFault(String),
    /// A host-side buffer read/write was out of range or misaligned.
    InvalidBufferAccess(String),
    /// Catch-all for API misuse (wrong queue/context pairing etc.).
    InvalidOperation(String),
    /// A command was not run because one of the events in its (transitive)
    /// wait list finished with an error. The boxed cause is the error of
    /// the failed dependency, so chains of poisoned commands keep the
    /// original fault reachable through nested causes.
    DependencyFailed { cause: Box<Error> },
    /// An event wait list reaches back to the event being enqueued (only
    /// possible through chained user events). Real OpenCL deadlocks; the
    /// simulator rejects the enqueue instead.
    DependencyCycle(String),
    /// A service tenant exceeded one of its configured quotas (see
    /// [`crate::serve`]). Carries enough structure for the client to back
    /// off intelligently instead of parsing a message.
    QuotaExceeded {
        tenant: String,
        resource: &'static str,
        limit: u64,
        used: u64,
    },
    /// The service refused to admit a request before running it (cache
    /// capacity, quota, device capability). The boxed cause is the
    /// underlying refusal, mirroring the [`Error::DependencyFailed`]
    /// poisoning style so `root_cause()` reaches the original fault.
    AdmissionRejected { what: String, cause: Box<Error> },
}

impl Error {
    /// Walk [`Error::DependencyFailed`] and [`Error::AdmissionRejected`]
    /// chains to the originating fault.
    pub fn root_cause(&self) -> &Error {
        match self {
            Error::DependencyFailed { cause } => cause.root_cause(),
            Error::AdmissionRejected { cause, .. } => cause.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BuildFailure(log) => write!(f, "program build failure:\n{log}"),
            Error::NoSuchKernel(name) => write!(f, "no kernel named `{name}` in program"),
            Error::InvalidArg {
                kernel,
                index,
                reason,
            } => {
                write!(
                    f,
                    "invalid argument {index} for kernel `{kernel}`: {reason}"
                )
            }
            Error::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            Error::OutOfResources(msg) => write!(f, "out of resources: {msg}"),
            Error::UnsupportedCapability(msg) => write!(f, "unsupported capability: {msg}"),
            Error::MemoryFault {
                space,
                offset,
                len,
                detail,
            } => write!(
                f,
                "memory fault in {space} memory at offset {offset} (len {len}): {detail}"
            ),
            Error::BarrierDivergence(msg) => write!(f, "divergent barrier: {msg}"),
            Error::DataRace {
                space,
                offset,
                detail,
            } => write!(
                f,
                "data race on {space} memory at offset {offset}: {detail}"
            ),
            Error::ArithmeticFault(msg) => write!(f, "arithmetic fault: {msg}"),
            Error::InvalidBufferAccess(msg) => write!(f, "invalid buffer access: {msg}"),
            Error::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            Error::DependencyFailed { cause } => {
                write!(f, "command skipped: dependency failed: {cause}")
            }
            Error::DependencyCycle(msg) => write!(f, "event dependency cycle: {msg}"),
            Error::QuotaExceeded {
                tenant,
                resource,
                limit,
                used,
            } => write!(
                f,
                "quota exceeded for tenant `{tenant}`: {resource} limit is {limit}, would use {used}"
            ),
            Error::AdmissionRejected { what, cause } => {
                write!(f, "admission rejected: {what}: {cause}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::BuildFailure("line 3: expected ';'".into());
        assert!(e.to_string().contains("expected ';'"));
        let e = Error::NoSuchKernel("foo".into());
        assert!(e.to_string().contains("`foo`"));
        let e = Error::MemoryFault {
            space: "global",
            offset: 40,
            len: 4,
            detail: "arg 0".into(),
        };
        let s = e.to_string();
        assert!(s.contains("global") && s.contains("40"));
    }

    #[test]
    fn quota_exceeded_carries_structure() {
        let e = Error::QuotaExceeded {
            tenant: "alice".into(),
            resource: "launches",
            limit: 10,
            used: 11,
        };
        let s = e.to_string();
        assert!(s.contains("alice") && s.contains("launches") && s.contains("10"));
        // a plain quota error is its own root cause
        assert_eq!(*e.root_cause(), e);
    }

    #[test]
    fn admission_rejection_chains_to_root_cause() {
        let quota = Error::QuotaExceeded {
            tenant: "bob".into(),
            resource: "inflight launches",
            limit: 2,
            used: 3,
        };
        let rejected = Error::AdmissionRejected {
            what: "launch of kernel `fill`".into(),
            cause: Box::new(quota.clone()),
        };
        // a poisoned dependent two levels up still reaches the quota fault
        let poisoned = Error::DependencyFailed {
            cause: Box::new(rejected.clone()),
        };
        assert_eq!(*rejected.root_cause(), quota);
        assert_eq!(*poisoned.root_cause(), quota);
        assert!(rejected.to_string().contains("fill"), "{rejected}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::InvalidLaunch("x".into()),
            Error::InvalidLaunch("x".into())
        );
        assert_ne!(
            Error::InvalidLaunch("x".into()),
            Error::InvalidLaunch("y".into())
        );
    }
}
