//! The analytic device timing model.
//!
//! Functional execution (the interpreter) counts *architectural events*:
//! instructions per SIMD batch, global-memory transactions, barriers.
//! This module turns those counts into a modeled execution time using a
//! roofline-style formula over the device profile:
//!
//! ```text
//! compute_time = makespan(per-CU cycles) / clock
//! memory_time  = transactions * segment_bytes / bandwidth
//! device_time  = launch_overhead + max(compute_time, memory_time)
//! ```
//!
//! Work-groups are greedily scheduled onto compute units (longest-queue-
//! last), so load imbalance between groups is reflected in the makespan.
//! This is the substitution for the paper's real GPUs documented in
//! DESIGN.md: it preserves *shapes* (who wins, by what factor, where the
//! compute/memory crossover falls), not absolute nanoseconds.

use crate::device::DeviceProfile;
use crate::types::ScalarType;

/// Fixed per-launch overhead modeled for the device front-end (µs range,
/// mirrors a driver's kernel dispatch cost).
pub const LAUNCH_OVERHEAD_SECONDS: f64 = 5.0e-6;

/// Sub-cycle cost resolution: every [`CostModel`] cost is expressed in
/// quarter-cycles, so a cost of 1 models an operation with a throughput of
/// four per clock.
pub const COST_UNITS_PER_CYCLE: u32 = 4;

/// Architectural event counts for one work-group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Compute cycles charged (per SIMD batch, i.e. already multiplied by
    /// the number of active warps per instruction).
    pub cycles: u64,
    /// Instructions issued (warp-granular).
    pub instructions: u64,
    /// Global/constant memory transactions after coalescing.
    pub mem_transactions: u64,
    /// Local (scratchpad) accesses.
    pub local_accesses: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Simulated L1 cache hits (zero unless the device profile declares a
    /// cache capability; see [`crate::prof::cache`]).
    pub l1_hits: u64,
    /// Simulated L1 cache misses.
    pub l1_misses: u64,
    /// Simulated L2 hits (filled in by the launch layer's shared-L2
    /// replay of the per-group miss streams).
    pub l2_hits: u64,
    /// Simulated L2 misses — the launch's modeled DRAM transactions.
    pub l2_misses: u64,
}

impl GroupStats {
    /// Accumulate another group's stats (used when merging worker results).
    pub fn merge(&mut self, other: &GroupStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.mem_transactions += other.mem_transactions;
        self.local_accesses += other.local_accesses;
        self.barriers += other.barriers;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
    }
}

/// Per-operation costs (in [`COST_UNITS_PER_CYCLE`] sub-cycle units)
/// derived from a device profile.
///
/// GPU values are Fermi-era reciprocal throughputs per warp; CPU values
/// model an optimising compiler's output on a superscalar core (cheap ops
/// under one cycle, latency-bound libm calls at full cost).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    pub int_alu: u32,
    pub int_mul: u32,
    pub int_div: u32,
    pub f32_alu: u32,
    pub f32_div: u32,
    pub f32_sqrt: u32,
    pub f32_transcendental: u32,
    pub cast: u32,
    pub mem_issue: u32,
    pub local_access: u32,
    pub barrier: u32,
    pub atomic: u32,
    /// Multiplier applied to float costs when the operand type is f64.
    pub fp64_factor: f64,
    /// Coalescing segment size in bytes.
    pub segment_bytes: u32,
}

impl CostModel {
    /// Build the cost model for a device. Costs are expressed in
    /// [`COST_UNITS_PER_CYCLE`] sub-cycle units so that fractional
    /// throughputs are representable. Two asymmetries matter:
    ///
    /// - GPUs have special-function units that evaluate transcendentals in
    ///   a dozen-odd cycles per warp; CPUs go through software libm at
    ///   several tens of cycles per call. This is a large part of why
    ///   compute-bound kernels like EP see the paper's outsized speedups.
    /// - The CPU baseline stands for *compiler-optimised* native code run
    ///   on a superscalar core, which retires several simple operations per
    ///   cycle; the interpreter counts unoptimised expression-tree
    ///   operations, so cheap CPU ops are charged below one cycle.
    ///   Latency-bound operations (divide, sqrt, transcendentals) get no
    ///   such discount.
    pub fn for_device(p: &DeviceProfile) -> CostModel {
        let is_cpu = p.device_type == crate::device::DeviceType::Cpu;
        if is_cpu {
            CostModel {
                int_alu: 2,
                int_mul: 3,
                int_div: 80,
                // serial FP accumulations are latency-bound (strict-FP
                // compilers cannot reassociate): a full cycle per op
                f32_alu: 4,
                f32_div: 80,
                f32_sqrt: 96,
                f32_transcendental: 192,
                cast: 1,
                mem_issue: 2,
                local_access: 3,
                barrier: 64,
                atomic: 96,
                fp64_factor: if p.fp64_cost_factor.is_finite() {
                    p.fp64_cost_factor
                } else {
                    1.0
                },
                segment_bytes: p.mem_segment_bytes,
            }
        } else {
            CostModel {
                int_alu: 4,
                int_mul: 8,
                int_div: 80,
                f32_alu: 4,
                f32_div: 40,
                f32_sqrt: 48,
                f32_transcendental: 64,
                cast: 4,
                mem_issue: 8,
                local_access: 8,
                barrier: 64,
                atomic: 96,
                fp64_factor: if p.fp64_cost_factor.is_finite() {
                    p.fp64_cost_factor
                } else {
                    1.0
                },
                segment_bytes: p.mem_segment_bytes,
            }
        }
    }

    /// Apply the fp64 penalty to a base float cost.
    #[inline]
    pub fn float_cost(&self, base: u32, ty: ScalarType) -> u32 {
        if ty == ScalarType::F64 {
            ((base as f64) * self.fp64_factor).round() as u32
        } else {
            base
        }
    }
}

/// Modeled timing of one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingBreakdown {
    /// Modeled time the device needs for the launch, in seconds.
    pub device_seconds: f64,
    /// Compute component (before taking the roofline max).
    pub compute_seconds: f64,
    /// Memory component (before taking the roofline max).
    pub memory_seconds: f64,
    /// Aggregate event counts over all groups.
    pub totals: GroupStats,
    /// Number of work-groups launched.
    pub num_groups: usize,
}

/// Per-CU cycle loads under the timing model's group-to-CU assignment.
///
/// Greedy LPT scheduling: sort groups by cycles descending, assign each to
/// the least-loaded CU. The result depends only on the multiset of group
/// cycle counts, so it is deterministic across worker counts and completion
/// orders. The makespan (max element) drives [`model_launch`]; the profiler
/// reads the whole vector for per-CU achieved occupancy.
pub fn cu_loads(profile: &DeviceProfile, groups: &[GroupStats]) -> Vec<u64> {
    let cus = profile.compute_units.max(1) as usize;
    let mut cycles: Vec<u64> = groups.iter().map(|g| g.cycles).collect();
    cycles.sort_unstable_by(|a, b| b.cmp(a));
    let mut load = vec![0u64; cus];
    for c in cycles {
        let min = load.iter_mut().min().expect("at least one CU");
        *min += c;
    }
    load
}

/// Turn per-group stats into a modeled launch time for `profile`.
pub fn model_launch(profile: &DeviceProfile, groups: &[GroupStats]) -> TimingBreakdown {
    let makespan = cu_loads(profile, groups).into_iter().max().unwrap_or(0);

    let mut totals = GroupStats::default();
    for g in groups {
        totals.merge(g);
    }

    let clock_hz = profile.clock_mhz as f64 * 1.0e6;
    let compute_seconds =
        makespan as f64 / (clock_hz * profile.issue_efficiency * COST_UNITS_PER_CYCLE as f64);
    let memory_seconds = match &profile.cache {
        // Cache-aware path: hits are served at the level's bandwidth, L2
        // misses go to DRAM at line granularity. Transactions the hierarchy
        // never observed (atomics bypass it) stay priced at DRAM segment
        // cost; the `saturating_sub` guarantees a cache that somehow beat
        // the transaction stream could never yield negative DRAM traffic
        // (the modeled-time side of the `coalescing_efficiency` clamp).
        Some(cc) => {
            let line = cc.line_bytes as f64;
            let observed = totals.l1_hits + totals.l1_misses;
            let uncached_tx = totals.mem_transactions.saturating_sub(observed);
            let l1_s = totals.l1_hits as f64 * line / (cc.l1_gbps * 1.0e9);
            let l2_s = totals.l2_hits as f64 * line / (cc.l2_gbps * 1.0e9);
            let dram_bytes = totals.l2_misses as f64 * line
                + uncached_tx as f64 * profile.mem_segment_bytes as f64;
            l1_s + l2_s + dram_bytes / (profile.global_bandwidth_gbps * 1.0e9)
        }
        // Roofline-only path — bit-for-bit the pre-cache formula.
        None => {
            let bytes_moved = totals.mem_transactions as f64 * profile.mem_segment_bytes as f64;
            bytes_moved / (profile.global_bandwidth_gbps * 1.0e9)
        }
    };
    let device_seconds = LAUNCH_OVERHEAD_SECONDS + compute_seconds.max(memory_seconds);

    TimingBreakdown {
        device_seconds,
        compute_seconds,
        memory_seconds,
        totals,
        num_groups: groups.len(),
    }
}

/// Modeled host↔device transfer time for `bytes` over the interconnect.
pub fn model_transfer(profile: &DeviceProfile, bytes: usize) -> f64 {
    // fixed submission latency + bandwidth term
    10.0e-6 + bytes as f64 / (profile.transfer_bandwidth_gbps * 1.0e9)
}

/// Modeled device-internal buffer→buffer copy time for `bytes`.
///
/// Runs on the device's copy engine against global memory: each byte is
/// read and written once, so the bandwidth term carries a factor of two,
/// plus the same fixed submission latency as a kernel launch.
pub fn model_copy(profile: &DeviceProfile, bytes: usize) -> f64 {
    LAUNCH_OVERHEAD_SECONDS + 2.0 * bytes as f64 / (profile.global_bandwidth_gbps * 1.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64, tx: u64) -> GroupStats {
        GroupStats {
            cycles,
            mem_transactions: tx,
            ..Default::default()
        }
    }

    #[test]
    fn compute_bound_launch() {
        let p = DeviceProfile::tesla_c2050();
        // many cycles, no memory traffic
        let groups = vec![stats(1_000_000, 0); 28];
        let t = model_launch(&p, &groups);
        assert!(t.compute_seconds > t.memory_seconds);
        assert!(t.device_seconds >= t.compute_seconds);
        // 28 groups over 14 CUs = 2M cost-units makespan
        let expected = 2_000_000.0 / (1.15e9 * p.issue_efficiency * COST_UNITS_PER_CYCLE as f64);
        assert!((t.compute_seconds - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn memory_bound_launch() {
        let p = DeviceProfile::tesla_c2050();
        let groups = vec![stats(100, 1_000_000)];
        let t = model_launch(&p, &groups);
        assert!(t.memory_seconds > t.compute_seconds);
        let bytes = 1_000_000.0 * 128.0;
        assert!((t.memory_seconds - bytes / 144.0e9).abs() < 1e-12);
    }

    #[test]
    fn makespan_reflects_imbalance() {
        let p = DeviceProfile::quadro_fx380(); // 2 CUs
                                               // one giant group and three tiny ones: makespan ~ giant group
        let balanced = model_launch(&p, &[stats(250_000, 0); 4]);
        let skewed = model_launch(
            &p,
            &[stats(1_000_000, 0), stats(0, 0), stats(0, 0), stats(0, 0)],
        );
        assert!(skewed.compute_seconds > balanced.compute_seconds * 1.9);
    }

    #[test]
    fn more_cus_help_parallel_work() {
        let groups = vec![stats(1_000_000, 0); 64];
        let tesla = model_launch(&DeviceProfile::tesla_c2050(), &groups);
        let quadro = model_launch(&DeviceProfile::quadro_fx380(), &groups);
        assert!(quadro.device_seconds > tesla.device_seconds * 3.0);
    }

    #[test]
    fn launch_overhead_floor() {
        let p = DeviceProfile::tesla_c2050();
        let t = model_launch(&p, &[]);
        assert!((t.device_seconds - LAUNCH_OVERHEAD_SECONDS).abs() < 1e-12);
    }

    #[test]
    fn fp64_cost_factor() {
        let cm = CostModel::for_device(&DeviceProfile::tesla_c2050());
        assert_eq!(cm.float_cost(10, ScalarType::F32), 10);
        assert_eq!(cm.float_cost(10, ScalarType::F64), 20);
        // the Quadro has no fp64; the factor is neutralised (the capability
        // gate rejects fp64 kernels before timing matters)
        let cm = CostModel::for_device(&DeviceProfile::quadro_fx380());
        assert_eq!(cm.float_cost(10, ScalarType::F64), 10);
    }

    #[test]
    fn transfer_model_scales_with_bytes() {
        let p = DeviceProfile::tesla_c2050();
        let small = model_transfer(&p, 1024);
        let big = model_transfer(&p, 1 << 30);
        assert!(big > small * 100.0);
        // 1 GiB over 6 GB/s is ~0.18 s
        assert!((big - (1u64 << 30) as f64 / 6.0e9).abs() < 1e-3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = stats(10, 1);
        a.merge(&stats(5, 2));
        assert_eq!(a.cycles, 15);
        assert_eq!(a.mem_transactions, 3);
        let mut c = GroupStats {
            l1_hits: 1,
            l2_misses: 2,
            ..Default::default()
        };
        c.merge(&GroupStats {
            l1_hits: 4,
            l1_misses: 3,
            ..Default::default()
        });
        assert_eq!((c.l1_hits, c.l1_misses, c.l2_misses), (5, 3, 2));
    }

    #[test]
    fn cache_aware_memory_time_prices_levels_separately() {
        let p = DeviceProfile::tesla_c2050_cached();
        let cc = p.cache.unwrap();
        let g = GroupStats {
            mem_transactions: 1000,
            l1_hits: 900,
            l1_misses: 100,
            l2_hits: 60,
            l2_misses: 40,
            ..Default::default()
        };
        let t = model_launch(&p, &[g]);
        let line = cc.line_bytes as f64;
        let expected = 900.0 * line / (cc.l1_gbps * 1.0e9)
            + 60.0 * line / (cc.l2_gbps * 1.0e9)
            + 40.0 * line / (p.global_bandwidth_gbps * 1.0e9);
        assert!((t.memory_seconds - expected).abs() < 1e-18);
        // mostly L1-resident traffic must be far cheaper than all-DRAM
        let dram_only = 1000.0 * p.mem_segment_bytes as f64 / (p.global_bandwidth_gbps * 1.0e9);
        assert!(t.memory_seconds < dram_only / 3.0);
    }

    #[test]
    fn cache_profile_without_observed_traffic_matches_roofline() {
        // atomics (or a cache that saw nothing) leave the transactions
        // unobserved: they are priced exactly like the roofline-only path
        let cached = DeviceProfile::tesla_c2050_cached();
        let plain = DeviceProfile::tesla_c2050();
        let g = stats(100, 5000);
        let tc = model_launch(&cached, &[g]);
        let tp = model_launch(&plain, &[g]);
        assert_eq!(tc.memory_seconds, tp.memory_seconds);
        assert_eq!(tc.device_seconds, tp.device_seconds);
    }

    #[test]
    fn cache_beating_the_stream_cannot_go_negative() {
        // hierarchy claims more observations than transactions were issued
        // (cannot happen by construction; the saturating_sub still holds)
        let p = DeviceProfile::tesla_c2050_cached();
        let g = GroupStats {
            mem_transactions: 10,
            l1_hits: 50,
            l1_misses: 0,
            ..Default::default()
        };
        let t = model_launch(&p, &[g]);
        assert!(t.memory_seconds >= 0.0);
        assert!(t.memory_seconds.is_finite());
    }
}
