//! Lane activity masks for SIMT lock-step execution.
//!
//! A [`Mask`] tracks which work-items of a work-group are active at the
//! current point of execution. Structured control flow (if/loop/return/
//! break/continue) only ever intersects and subtracts masks, which is how
//! real GPUs manage divergence and reconvergence.

/// A fixed-width bitset over the lanes of one work-group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    words: Vec<u64>,
    nlanes: usize,
}

impl Mask {
    /// All `nlanes` lanes active.
    pub fn full(nlanes: usize) -> Mask {
        let nwords = nlanes.div_ceil(64);
        let mut words = vec![u64::MAX; nwords];
        let rem = nlanes % 64;
        if rem != 0 {
            words[nwords - 1] = (1u64 << rem) - 1;
        }
        if nlanes == 0 {
            words.clear();
        }
        Mask { words, nlanes }
    }

    /// No lanes active.
    pub fn none(nlanes: usize) -> Mask {
        Mask {
            words: vec![0; nlanes.div_ceil(64)],
            nlanes,
        }
    }

    /// Number of lanes this mask covers.
    pub fn nlanes(&self) -> usize {
        self.nlanes
    }

    /// Is `lane` active?
    #[inline]
    pub fn get(&self, lane: usize) -> bool {
        (self.words[lane / 64] >> (lane % 64)) & 1 != 0
    }

    /// Activate `lane`.
    #[inline]
    pub fn set(&mut self, lane: usize) {
        self.words[lane / 64] |= 1 << (lane % 64);
    }

    /// Deactivate `lane`.
    #[inline]
    pub fn clear(&mut self, lane: usize) {
        self.words[lane / 64] &= !(1 << (lane % 64));
    }

    /// Any lane active?
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// Number of active lanes.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self &= other`
    pub fn and(&mut self, other: &Mask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other`
    pub fn and_not(&mut self, other: &Mask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self |= other`
    pub fn or(&mut self, other: &Mask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Keep lanes whose entry in `vals` is non-zero (a lowered Bool vector).
    pub fn and_truthy(&mut self, vals: &[u64]) {
        for (lane, &v) in vals.iter().enumerate().take(self.nlanes) {
            if v == 0 && self.get(lane) {
                self.clear(lane);
            }
        }
    }

    /// Keep lanes whose entry in `vals` is zero.
    pub fn and_falsy(&mut self, vals: &[u64]) {
        for (lane, &v) in vals.iter().enumerate().take(self.nlanes) {
            if v != 0 && self.get(lane) {
                self.clear(lane);
            }
        }
    }

    /// Iterate over active lane indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Number of SIMD batches ("warps") of width `simd` that contain at
    /// least one active lane — the unit at which instruction cost and
    /// memory coalescing are charged.
    pub fn active_warps(&self, simd: usize) -> usize {
        if simd == 0 {
            return 0;
        }
        let nwarps = self.nlanes.div_ceil(simd);
        (0..nwarps)
            .filter(|w| {
                let lo = w * simd;
                let hi = ((w + 1) * simd).min(self.nlanes);
                (lo..hi).any(|l| self.get(l))
            })
            .count()
    }

    /// Total lane slots covered by the active warps: every warp with at
    /// least one active lane contributes its full width (clipped at the
    /// group tail). The gap `covered_lanes - count()` is the work-item
    /// slots a SIMT machine issues but masks off — the divergence loss.
    pub fn covered_lanes(&self, simd: usize) -> usize {
        if simd == 0 {
            return 0;
        }
        let nwarps = self.nlanes.div_ceil(simd);
        (0..nwarps)
            .filter_map(|w| {
                let lo = w * simd;
                let hi = ((w + 1) * simd).min(self.nlanes);
                (lo..hi).any(|l| self.get(l)).then_some(hi - lo)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_none() {
        let f = Mask::full(70);
        assert_eq!(f.count(), 70);
        assert!(f.get(0) && f.get(69));
        let n = Mask::none(70);
        assert_eq!(n.count(), 0);
        assert!(!n.any());
    }

    #[test]
    fn full_exact_word_boundary() {
        let f = Mask::full(64);
        assert_eq!(f.count(), 64);
        assert!(f.get(63));
        let f = Mask::full(128);
        assert_eq!(f.count(), 128);
    }

    #[test]
    fn set_clear_get() {
        let mut m = Mask::none(100);
        m.set(3);
        m.set(99);
        assert!(m.get(3) && m.get(99) && !m.get(4));
        m.clear(3);
        assert!(!m.get(3));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn boolean_ops() {
        let mut a = Mask::none(10);
        a.set(1);
        a.set(2);
        let mut b = Mask::none(10);
        b.set(2);
        b.set(3);
        let mut and = a.clone();
        and.and(&b);
        assert_eq!(and.iter().collect::<Vec<_>>(), vec![2]);
        let mut andnot = a.clone();
        andnot.and_not(&b);
        assert_eq!(andnot.iter().collect::<Vec<_>>(), vec![1]);
        let mut or = a;
        or.or(&b);
        assert_eq!(or.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn truthy_filters() {
        let mut m = Mask::full(4);
        m.and_truthy(&[1, 0, 5, 0]);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 2]);
        let mut m = Mask::full(4);
        m.and_falsy(&[1, 0, 5, 0]);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut m = Mask::none(130);
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(129);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn warp_counting() {
        let mut m = Mask::none(64);
        m.set(0); // warp 0
        m.set(33); // warp 1 (width 32)
        assert_eq!(m.active_warps(32), 2);
        assert_eq!(m.active_warps(64), 1);
        assert_eq!(Mask::full(64).active_warps(32), 2);
        assert_eq!(Mask::none(64).active_warps(32), 0);
        // uneven tail: 65 lanes with simd 32 -> 3 warps
        assert_eq!(Mask::full(65).active_warps(32), 3);
        // scalar "warps" (CPU profile)
        assert_eq!(Mask::full(8).active_warps(1), 8);
    }

    #[test]
    fn covered_lanes_measures_divergence_slots() {
        let mut m = Mask::none(64);
        m.set(0); // one active lane still covers its whole warp
        assert_eq!(m.covered_lanes(32), 32);
        m.set(33);
        assert_eq!(m.covered_lanes(32), 64);
        assert_eq!(Mask::full(64).covered_lanes(32), 64);
        assert_eq!(Mask::none(64).covered_lanes(32), 0);
        // tail warp is clipped: 40 lanes, simd 32 -> 32 + 8
        assert_eq!(Mask::full(40).covered_lanes(32), 40);
        // scalar profile: covered == active, no divergence loss possible
        let mut s = Mask::none(8);
        s.set(2);
        assert_eq!(s.covered_lanes(1), 1);
    }
}
