//! The simulated device back-end: executable IR, SIMT lock-step
//! interpreter, divergence masks, scalar operation semantics, and the
//! NDRange launcher that spreads work-groups over host threads.

pub mod interp;
pub mod ir;
pub mod launch;
pub mod mask;
pub mod ops;
pub mod wg;
