//! Scalar operation semantics on canonical 64-bit register values.
//!
//! Canonical representation: signed integers are sign-extended to 64 bits,
//! unsigned integers and `bool` are zero-extended, `float` occupies the low
//! 32 bits, `double` the full word. Every operation takes canonical inputs
//! and produces canonical outputs; the same functions implement both the
//! interpreter and sema's compile-time constant folding, so folding can
//! never diverge from execution.

use crate::error::{Error, Result};
use crate::exec::ir::{BOp, COp, UOp};
use crate::types::ScalarType;

#[inline]
fn canon_i(ty: ScalarType, v: i64) -> u64 {
    match ty {
        ScalarType::I8 => (v as i8) as i64 as u64,
        ScalarType::I16 => (v as i16) as i64 as u64,
        ScalarType::I32 => (v as i32) as i64 as u64,
        ScalarType::I64 => v as u64,
        _ => unreachable!("canon_i on non-signed type"),
    }
}

#[inline]
fn canon_u(ty: ScalarType, v: u64) -> u64 {
    match ty {
        ScalarType::Bool => (v != 0) as u64,
        ScalarType::U8 => v & 0xFF,
        ScalarType::U16 => v & 0xFFFF,
        ScalarType::U32 => v & 0xFFFF_FFFF,
        ScalarType::U64 => v,
        _ => unreachable!("canon_u on non-unsigned type"),
    }
}

/// Convert canonical bits between scalar types (C cast semantics).
pub fn cast_bits(bits: u64, from: ScalarType, to: ScalarType) -> u64 {
    use ScalarType::*;
    if from == to {
        return bits;
    }
    // read the source as the widest faithful representation
    let as_f64 = |b: u64| -> f64 {
        match from {
            F32 => f32::from_bits(b as u32) as f64,
            F64 => f64::from_bits(b),
            I8 | I16 | I32 | I64 => (b as i64) as f64,
            U8 | U16 | U32 | U64 | Bool => b as f64,
        }
    };
    match to {
        F32 => ((as_f64(bits) as f32).to_bits()) as u64,
        F64 => as_f64(bits).to_bits(),
        _ if from.is_float() => {
            let f = as_f64(bits);
            match to {
                Bool => (f != 0.0) as u64,
                I8 => canon_i(I8, f as i8 as i64),
                I16 => canon_i(I16, f as i16 as i64),
                I32 => canon_i(I32, f as i32 as i64),
                I64 => (f as i64) as u64,
                U8 => f as u8 as u64,
                U16 => f as u16 as u64,
                U32 => f as u32 as u64,
                U64 => f as u64,
                F32 | F64 => unreachable!(),
            }
        }
        Bool => (bits != 0) as u64,
        I8 | I16 | I32 | I64 => canon_i(to, bits as i64),
        U8 | U16 | U32 | U64 => canon_u(to, bits),
    }
}

/// Binary arithmetic/bitwise at `ty`.
pub fn bin_op(op: BOp, ty: ScalarType, a: u64, b: u64) -> Result<u64> {
    use ScalarType::*;
    if ty.is_float() {
        let (x, y) = if ty == F32 {
            (
                f32::from_bits(a as u32) as f64,
                f32::from_bits(b as u32) as f64,
            )
        } else {
            (f64::from_bits(a), f64::from_bits(b))
        };
        let r = match op {
            BOp::Add => x + y,
            BOp::Sub => x - y,
            BOp::Mul => x * y,
            BOp::Div => x / y,
            _ => unreachable!("sema rejects {op:?} on floats"),
        };
        return Ok(if ty == F32 {
            // round through f32 to keep single-precision semantics
            ((x_to_f32(x, y, op)).to_bits()) as u64
        } else {
            r.to_bits()
        });

        // helper keeps f32 arithmetic genuinely single-precision
        fn x_to_f32(x: f64, y: f64, op: BOp) -> f32 {
            let (x, y) = (x as f32, y as f32);
            match op {
                BOp::Add => x + y,
                BOp::Sub => x - y,
                BOp::Mul => x * y,
                BOp::Div => x / y,
                _ => unreachable!(),
            }
        }
    }
    if ty.is_signed() {
        let (x, y) = (a as i64, b as i64);
        let r = match op {
            BOp::Add => x.wrapping_add(y),
            BOp::Sub => x.wrapping_sub(y),
            BOp::Mul => x.wrapping_mul(y),
            BOp::Div => {
                if y == 0 {
                    return Err(Error::ArithmeticFault("integer division by zero".into()));
                }
                x.wrapping_div(y)
            }
            BOp::Rem => {
                if y == 0 {
                    return Err(Error::ArithmeticFault("integer remainder by zero".into()));
                }
                x.wrapping_rem(y)
            }
            BOp::And => x & y,
            BOp::Or => x | y,
            BOp::Xor => x ^ y,
            BOp::Shl => x.wrapping_shl(shift_amount(ty, y as u64)),
            BOp::Shr => x.wrapping_shr(shift_amount(ty, y as u64)),
        };
        Ok(canon_i(ty, r))
    } else {
        // unsigned: operate within the type's width
        let (x, y) = (canon_u(ty, a), canon_u(ty, b));
        let r = match op {
            BOp::Add => x.wrapping_add(y),
            BOp::Sub => x.wrapping_sub(y),
            BOp::Mul => x.wrapping_mul(y),
            BOp::Div => {
                if y == 0 {
                    return Err(Error::ArithmeticFault("integer division by zero".into()));
                }
                x / y
            }
            BOp::Rem => {
                if y == 0 {
                    return Err(Error::ArithmeticFault("integer remainder by zero".into()));
                }
                x % y
            }
            BOp::And => x & y,
            BOp::Or => x | y,
            BOp::Xor => x ^ y,
            BOp::Shl => x.wrapping_shl(shift_amount(ty, y)),
            BOp::Shr => x.wrapping_shr(shift_amount(ty, y)),
        };
        Ok(canon_u(ty, r))
    }
}

/// OpenCL shift semantics: the amount is taken modulo the operand width.
fn shift_amount(ty: ScalarType, amount: u64) -> u32 {
    let width = (ty.size() * 8) as u64;
    (amount % width) as u32
}

/// Comparison at `ty`; returns 0 or 1.
pub fn cmp_op(op: COp, ty: ScalarType, a: u64, b: u64) -> u64 {
    use std::cmp::Ordering;
    let ord: Option<Ordering> = if ty.is_float() {
        let (x, y) = if ty == ScalarType::F32 {
            (
                f32::from_bits(a as u32) as f64,
                f32::from_bits(b as u32) as f64,
            )
        } else {
            (f64::from_bits(a), f64::from_bits(b))
        };
        x.partial_cmp(&y)
    } else if ty.is_signed() {
        Some((a as i64).cmp(&(b as i64)))
    } else {
        Some(a.cmp(&b))
    };
    let r = match (op, ord) {
        // any comparison with NaN is false except !=
        (COp::Ne, None) => true,
        (_, None) => false,
        (COp::Lt, Some(o)) => o == Ordering::Less,
        (COp::Gt, Some(o)) => o == Ordering::Greater,
        (COp::Le, Some(o)) => o != Ordering::Greater,
        (COp::Ge, Some(o)) => o != Ordering::Less,
        (COp::Eq, Some(o)) => o == Ordering::Equal,
        (COp::Ne, Some(o)) => o != Ordering::Equal,
    };
    r as u64
}

/// Unary op at `ty`.
pub fn un_op(op: UOp, ty: ScalarType, a: u64) -> u64 {
    match op {
        UOp::Not => (a == 0) as u64,
        UOp::BitNot => {
            if ty.is_signed() {
                canon_i(ty, !(a as i64))
            } else {
                canon_u(ty, !a)
            }
        }
        UOp::Neg => {
            if ty == ScalarType::F32 {
                ((-f32::from_bits(a as u32)).to_bits()) as u64
            } else if ty == ScalarType::F64 {
                (-f64::from_bits(a)).to_bits()
            } else if ty.is_signed() {
                canon_i(ty, (a as i64).wrapping_neg())
            } else {
                canon_u(ty, a.wrapping_neg())
            }
        }
    }
}

/// One-argument float builtins.
pub fn math1(f: impl Fn(f64) -> f64, ty: ScalarType, a: u64) -> u64 {
    if ty == ScalarType::F32 {
        let x = f32::from_bits(a as u32);
        ((f(x as f64) as f32).to_bits()) as u64
    } else {
        f(f64::from_bits(a)).to_bits()
    }
}

/// Two-argument float builtins.
pub fn math2(f: impl Fn(f64, f64) -> f64, ty: ScalarType, a: u64, b: u64) -> u64 {
    if ty == ScalarType::F32 {
        let (x, y) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
        ((f(x as f64, y as f64) as f32).to_bits()) as u64
    } else {
        f(f64::from_bits(a), f64::from_bits(b)).to_bits()
    }
}

/// Three-argument float builtins (mad/fma).
pub fn math3(f: impl Fn(f64, f64, f64) -> f64, ty: ScalarType, a: u64, b: u64, c: u64) -> u64 {
    if ty == ScalarType::F32 {
        let (x, y, z) = (
            f32::from_bits(a as u32),
            f32::from_bits(b as u32),
            f32::from_bits(c as u32),
        );
        ((f(x as f64, y as f64, z as f64) as f32).to_bits()) as u64
    } else {
        f(f64::from_bits(a), f64::from_bits(b), f64::from_bits(c)).to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn b(v: Value) -> u64 {
        v.to_bits()
    }

    #[test]
    fn signed_arithmetic_canonical() {
        let r = bin_op(
            BOp::Sub,
            ScalarType::I32,
            b(Value::I32(1)),
            b(Value::I32(3)),
        )
        .unwrap();
        assert_eq!(Value::from_bits(r, ScalarType::I32), Value::I32(-2));
        assert_eq!(r, u64::MAX - 1, "result must stay sign-extended");
    }

    #[test]
    fn i32_overflow_wraps_at_32_bits() {
        let r = bin_op(
            BOp::Add,
            ScalarType::I32,
            b(Value::I32(i32::MAX)),
            b(Value::I32(1)),
        )
        .unwrap();
        assert_eq!(Value::from_bits(r, ScalarType::I32), Value::I32(i32::MIN));
    }

    #[test]
    fn unsigned_wraps_within_width() {
        let r = bin_op(
            BOp::Add,
            ScalarType::U32,
            b(Value::U32(u32::MAX)),
            b(Value::U32(2)),
        )
        .unwrap();
        assert_eq!(Value::from_bits(r, ScalarType::U32), Value::U32(1));
        let r = bin_op(
            BOp::Sub,
            ScalarType::U32,
            b(Value::U32(0)),
            b(Value::U32(1)),
        )
        .unwrap();
        assert_eq!(Value::from_bits(r, ScalarType::U32), Value::U32(u32::MAX));
    }

    #[test]
    fn division_semantics() {
        let r = bin_op(
            BOp::Div,
            ScalarType::I32,
            b(Value::I32(-7)),
            b(Value::I32(2)),
        )
        .unwrap();
        assert_eq!(
            Value::from_bits(r, ScalarType::I32),
            Value::I32(-3),
            "C truncates toward zero"
        );
        let r = bin_op(
            BOp::Rem,
            ScalarType::I32,
            b(Value::I32(-7)),
            b(Value::I32(2)),
        )
        .unwrap();
        assert_eq!(Value::from_bits(r, ScalarType::I32), Value::I32(-1));
        assert!(bin_op(BOp::Div, ScalarType::I32, 1, 0).is_err());
        assert!(bin_op(BOp::Rem, ScalarType::U64, 1, 0).is_err());
    }

    #[test]
    fn float_div_by_zero_is_inf() {
        let r = bin_op(
            BOp::Div,
            ScalarType::F32,
            b(Value::F32(1.0)),
            b(Value::F32(0.0)),
        )
        .unwrap();
        assert_eq!(
            Value::from_bits(r, ScalarType::F32),
            Value::F32(f32::INFINITY)
        );
    }

    #[test]
    fn f32_arithmetic_is_single_precision() {
        // 1e8 + 1 is not representable in f32
        let r = bin_op(
            BOp::Add,
            ScalarType::F32,
            b(Value::F32(1.0e8)),
            b(Value::F32(1.0)),
        )
        .unwrap();
        assert_eq!(Value::from_bits(r, ScalarType::F32), Value::F32(1.0e8));
        // but is in f64
        let r = bin_op(
            BOp::Add,
            ScalarType::F64,
            b(Value::F64(1.0e8)),
            b(Value::F64(1.0)),
        )
        .unwrap();
        assert_eq!(
            Value::from_bits(r, ScalarType::F64),
            Value::F64(100000001.0)
        );
    }

    #[test]
    fn shifts_mod_width() {
        let r = bin_op(
            BOp::Shl,
            ScalarType::U32,
            b(Value::U32(1)),
            b(Value::U32(33)),
        )
        .unwrap();
        assert_eq!(
            Value::from_bits(r, ScalarType::U32),
            Value::U32(2),
            "33 % 32 == 1"
        );
        let r = bin_op(
            BOp::Shr,
            ScalarType::I32,
            b(Value::I32(-8)),
            b(Value::I32(1)),
        )
        .unwrap();
        assert_eq!(
            Value::from_bits(r, ScalarType::I32),
            Value::I32(-4),
            "arithmetic shift"
        );
        let r = bin_op(
            BOp::Shr,
            ScalarType::U32,
            b(Value::U32(0x8000_0000)),
            b(Value::U32(1)),
        )
        .unwrap();
        assert_eq!(
            Value::from_bits(r, ScalarType::U32),
            Value::U32(0x4000_0000),
            "logical shift"
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            cmp_op(
                COp::Lt,
                ScalarType::I32,
                b(Value::I32(-1)),
                b(Value::I32(1))
            ),
            1
        );
        assert_eq!(
            cmp_op(
                COp::Lt,
                ScalarType::U32,
                b(Value::U32(u32::MAX)),
                b(Value::U32(1))
            ),
            0,
            "unsigned comparison"
        );
        assert_eq!(
            cmp_op(
                COp::Le,
                ScalarType::F64,
                b(Value::F64(1.0)),
                b(Value::F64(1.0))
            ),
            1
        );
        let nan = b(Value::F32(f32::NAN));
        assert_eq!(cmp_op(COp::Eq, ScalarType::F32, nan, nan), 0);
        assert_eq!(cmp_op(COp::Ne, ScalarType::F32, nan, nan), 1);
        assert_eq!(cmp_op(COp::Lt, ScalarType::F32, nan, b(Value::F32(1.0))), 0);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(un_op(UOp::Not, ScalarType::Bool, 0), 1);
        assert_eq!(un_op(UOp::Not, ScalarType::Bool, 1), 0);
        let r = un_op(UOp::Neg, ScalarType::I32, b(Value::I32(5)));
        assert_eq!(Value::from_bits(r, ScalarType::I32), Value::I32(-5));
        let r = un_op(UOp::Neg, ScalarType::F64, b(Value::F64(2.0)));
        assert_eq!(Value::from_bits(r, ScalarType::F64), Value::F64(-2.0));
        let r = un_op(UOp::BitNot, ScalarType::U32, b(Value::U32(0)));
        assert_eq!(Value::from_bits(r, ScalarType::U32), Value::U32(u32::MAX));
    }

    #[test]
    fn casts() {
        let r = cast_bits(b(Value::F64(3.9)), ScalarType::F64, ScalarType::I32);
        assert_eq!(
            Value::from_bits(r, ScalarType::I32),
            Value::I32(3),
            "truncation"
        );
        let r = cast_bits(b(Value::F64(-3.9)), ScalarType::F64, ScalarType::I32);
        assert_eq!(Value::from_bits(r, ScalarType::I32), Value::I32(-3));
        let r = cast_bits(b(Value::I32(-1)), ScalarType::I32, ScalarType::U32);
        assert_eq!(Value::from_bits(r, ScalarType::U32), Value::U32(u32::MAX));
        let r = cast_bits(b(Value::I32(7)), ScalarType::I32, ScalarType::F32);
        assert_eq!(Value::from_bits(r, ScalarType::F32), Value::F32(7.0));
        let r = cast_bits(b(Value::U64(u64::MAX)), ScalarType::U64, ScalarType::F64);
        assert_eq!(
            Value::from_bits(r, ScalarType::F64),
            Value::F64(u64::MAX as f64)
        );
        let r = cast_bits(b(Value::I32(300)), ScalarType::I32, ScalarType::U8);
        assert_eq!(Value::from_bits(r, ScalarType::U8), Value::U8(44));
        let r = cast_bits(b(Value::F32(2.5)), ScalarType::F32, ScalarType::F64);
        assert_eq!(Value::from_bits(r, ScalarType::F64), Value::F64(2.5));
    }

    #[test]
    fn math_builtins_respect_precision() {
        let r = math1(f64::sqrt, ScalarType::F32, b(Value::F32(2.0)));
        assert_eq!(
            Value::from_bits(r, ScalarType::F32),
            Value::F32(2.0f32.sqrt())
        );
        let r = math2(
            |x, y| x.powf(y),
            ScalarType::F64,
            b(Value::F64(2.0)),
            b(Value::F64(10.0)),
        );
        assert_eq!(Value::from_bits(r, ScalarType::F64), Value::F64(1024.0));
        let r = math3(
            |x, y, z| x * y + z,
            ScalarType::F32,
            b(Value::F32(2.0)),
            b(Value::F32(3.0)),
            b(Value::F32(4.0)),
        );
        assert_eq!(Value::from_bits(r, ScalarType::F32), Value::F32(10.0));
    }
}
