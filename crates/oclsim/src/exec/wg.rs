//! Compiled work-group execution backend ("wg").
//!
//! The reference SIMT interpreter ([`super::interp`]) dispatches every IR
//! statement once per work-*item* vector, which is counter-exact but
//! dominates host wall time on large launches. This module adopts the pocl
//! CPU execution strategy: each kernel is rewritten by **barrier-aware loop
//! fission** into *work-item loops* over the local range, the fissioned
//! bodies are lowered to a compact **register bytecode**, and one VM
//! activation executes a whole work-group — warp-sized chunk by warp-sized
//! chunk, so the coalescing / bank-conflict / divergence counter model
//! still sees exactly the warps the reference backend saw.
//!
//! # Equivalence contract
//!
//! Every charge the reference interpreter makes decomposes additively per
//! warp: instruction charges are `cost x active_warps`, memory coalescing
//! and bank conflicts are computed warp-by-warp, and divergence loss is
//! `cost x (covered - active)` per warp. The VM executes one warp at a
//! time with the same warp boundaries and routes every delta through the
//! same accumulate-then-merge chokepoint discipline as
//! [`super::interp::GroupRun::bump`], so [`GroupStats`], launch totals and
//! per-line counter maps are **byte-identical** to the reference backend
//! (this is enforced by `backend_equivalence` tests and a ci.sh gate).
//!
//! The one observable difference is error *ordering* on faulting kernels:
//! the VM runs warp 0 to completion before warp 1 starts, so when two
//! different lanes would trap at different statements the backend may
//! report the other trap first. Racy kernels (undefined behaviour) can
//! also observe a different interleaving; the dynamic race sanitizer
//! depends on statement-major order, so sanitized launches always take the
//! reference backend.
//!
//! # Fallback rules
//!
//! Planning is per kernel and conservative. A kernel falls back to the
//! reference interpreter (with a build-log note and a
//! `oclsim_exec_wg_fallbacks_total` metric) when it uses:
//! * atomics — the per-item *old values* depend on statement-major order;
//! * a barrier together with `return`, or a barrier under divergent
//!   control flow (inside an `if`, in a loop `step`, or in a loop whose
//!   condition the uniformity analysis cannot prove group-uniform);
//! * `break`/`continue` binding to a barrier-carrying loop;
//! * helper functions that contain barriers, recursion, or array
//!   allocations;
//! * statements with no source line (synthetic IR built by tests).
//!
//! At launch time the reference backend is also used when the dynamic
//! race sanitizer is on, or when the device SIMD width is 1 (the scalar
//! segment-cache model is access-order-sensitive) or above 64 (warp
//! execution masks are single `u64` words).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Once, OnceLock};

use crate::clc::ast::AddrSpace;
use crate::clc::dataflow::{for_each_statement, solve, Cfg, Uni, Uniformity};
use crate::error::{Error, Result};
use crate::exec::interp::{
    arg_pointer, bin_cost, lane_priv, load_lane_mem, load_le, local_pointer, math1_fn, math2_fn,
    math_class, math_cost, priv_pointer, ptr_add, store_lane_mem, store_le, LaunchEnv, BASE_SHIFT,
    MAX_CALL_DEPTH, OFF_MASK, TAG_CONST, TAG_GLOBAL, TAG_LOCAL, TAG_SHIFT,
};
use crate::exec::ir::{BOp, Builtin, Ex, FuncIr, Module, St, StKind};
use crate::exec::launch::BoundArg;
use crate::exec::ops;
use crate::prof::cache::{GroupCacheSim, L2Record};
use crate::prof::counters::{GroupCounters, InstrClass};
use crate::timing::GroupStats;
use crate::types::ScalarType;

// ---- backend selection knob -------------------------------------------------

/// Which execution backend a launch uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The statement-major SIMT interpreter (counter-accurate reference).
    Ref,
    /// The compiled work-group bytecode VM (this module).
    Wg,
}

static BACKEND: AtomicU8 = AtomicU8::new(1);
static BACKEND_INIT: Once = Once::new();

/// Seed the backend from `OCLSIM_BACKEND` exactly once (same pattern as
/// `OCLSIM_THREADS`): `ref` or `wg`; anything else keeps the default (`wg`).
fn seed_backend_from_env() {
    BACKEND_INIT.call_once(|| {
        if let Ok(v) = std::env::var("OCLSIM_BACKEND") {
            match v.as_str() {
                "ref" => BACKEND.store(0, Ordering::Relaxed),
                "wg" => BACKEND.store(1, Ordering::Relaxed),
                _ => {}
            }
        }
    });
}

/// The currently selected execution backend.
pub fn backend() -> Backend {
    seed_backend_from_env();
    if BACKEND.load(Ordering::Relaxed) == 0 {
        Backend::Ref
    } else {
        Backend::Wg
    }
}

/// Select the execution backend for subsequent launches (process-global;
/// tests serialise around this the same way they do for the opt level).
pub fn set_backend(b: Backend) {
    seed_backend_from_env();
    BACKEND.store(
        match b {
            Backend::Ref => 0,
            Backend::Wg => 1,
        },
        Ordering::Relaxed,
    );
}

/// Short name of the active backend (`"ref"` / `"wg"`), for reports.
pub fn backend_name() -> &'static str {
    match backend() {
        Backend::Ref => "ref",
        Backend::Wg => "wg",
    }
}

// ---- plan data model --------------------------------------------------------

/// Register index within a frame. Slots `0..nslots` mirror the IR frame
/// slots, `nslots` is the return-value register, temps follow.
type Reg = u16;

/// One bytecode instruction. Registers are frame-relative; every value op
/// reads its operands and writes its destination per lane of the current
/// warp chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Switch per-line counter attribution to `line`.
    SetLine(u32),
    /// `dst = bits` in every lane (constants, pointer bases).
    ConstFill {
        dst: Reg,
        bits: u64,
    },
    /// `dst[lane] = src[lane]` for active lanes (slot assignment, `&&`/`||`
    /// result merge).
    CopyMasked {
        dst: Reg,
        src: Reg,
    },
    /// `dst[lane] = src[lane]` for all lanes of the chunk (call argument
    /// staging; masked-off lanes carry unobservable garbage).
    CopyFull {
        dst: Reg,
        src: Reg,
    },
    /// Geometry builtin; `dim` is a register (the dimension argument is an
    /// arbitrary expression), ignored for `get_work_dim`.
    Geom {
        dst: Reg,
        dim: Reg,
        b: Builtin,
    },
    /// `dst = ptr + off * elem_size` (wrapping, offset-field arithmetic).
    PtrAdd {
        dst: Reg,
        ptr: Reg,
        off: Reg,
        elem_size: u32,
    },
    Load {
        dst: Reg,
        addr: Reg,
        elem: ScalarType,
        space: AddrSpace,
    },
    Store {
        addr: Reg,
        val: Reg,
        elem: ScalarType,
        space: AddrSpace,
    },
    Bin {
        dst: Reg,
        l: Reg,
        r: Reg,
        op: BOp,
        ty: ScalarType,
    },
    Cmp {
        dst: Reg,
        l: Reg,
        r: Reg,
        op: crate::exec::ir::COp,
        ty: ScalarType,
    },
    Un {
        dst: Reg,
        a: Reg,
        op: crate::exec::ir::UOp,
        ty: ScalarType,
    },
    Cast {
        dst: Reg,
        a: Reg,
        from: ScalarType,
        to: ScalarType,
    },
    Math1 {
        dst: Reg,
        a: Reg,
        b: Builtin,
        ty: ScalarType,
    },
    Math2 {
        dst: Reg,
        a: Reg,
        c: Reg,
        b: Builtin,
        ty: ScalarType,
    },
    Math3 {
        dst: Reg,
        x: Reg,
        y: Reg,
        z: Reg,
        b: Builtin,
        ty: ScalarType,
    },
    /// Ternary merge: `dst[lane] = cond[lane] ? t[lane] : f[lane]`, plus
    /// the select's ALU charge under the full pre-divergence mask.
    SelMerge {
        dst: Reg,
        cond: Reg,
        t: Reg,
        f: Reg,
    },
    /// The 1-cycle control charge of an `if`/loop test.
    ChargeBranch,
    /// Enter an `if`: split exec by the truthiness of `cond` (`invert`
    /// enters on falsy — the `||` right-hand side).
    PushIf {
        cond: Reg,
        invert: bool,
    },
    /// Swap to the other side of the innermost `if`.
    ElseSwap,
    /// Leave the innermost `if`, reconverging finished lanes.
    PopIf,
    /// Enter a loop (records the entry mask for reconvergence).
    PushLoop,
    /// End of one loop-body iteration: `continue` lanes rejoin.
    LoopIterEnd,
    /// Leave the innermost loop: entry lanes minus returned lanes resume.
    PopLoop,
    /// `exec &= truthy(cond)` — the loop test.
    AndTruthy {
        cond: Reg,
    },
    /// `exec &= !returned`.
    AndNotRet,
    Break,
    Continue,
    /// Return from the current function. The return *value* (if any) was
    /// already `CopyMasked` into the frame's return register by the
    /// preceding op; this op only retires the active lanes.
    Return,
    /// Helper-function call: `nargs` values staged at `abase..`.
    Call {
        dst: Reg,
        func: u32,
        abase: Reg,
        nargs: u16,
    },
    Jmp(u32),
    /// Jump iff no lane of the chunk is active (skips dead regions and
    /// guards loop back-edges against empty-mask spinning).
    JmpIfEmpty(u32),
}

/// A straight-line bytecode chunk (jump targets are indices into it).
pub type Code = Vec<Op>;

/// One node of the fissioned kernel body. `Region`s are barrier-free and
/// run to completion warp by warp; barriers and barrier-carrying loops
/// become group-level structure, which is exactly the pocl "work-item
/// loop" transformation with the loop inverted to warp chunks.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupOp {
    /// A barrier-free span of the kernel, compiled to bytecode. Executed
    /// once per warp chunk with a full entry mask.
    Region(Code),
    /// A work-group barrier (charged once per group, like the reference).
    Barrier { line: u32 },
    /// A loop that contains barriers. Its condition is proven group-uniform
    /// at plan time; the VM evaluates it for every warp (reproducing the
    /// reference charges) and takes the group-wide decision from lane 0,
    /// verifying at runtime that every lane agreed.
    UniformLoop {
        cond: Code,
        cond_reg: Reg,
        body: Vec<GroupOp>,
        step: Code,
        check_first: bool,
    },
}

/// Compiled bytecode for one helper function.
#[derive(Debug, PartialEq)]
pub struct FuncPlan {
    pub nregs: usize,
    /// Register holding the function's return value (`= nslots`).
    pub ret_reg: Reg,
    pub code: Code,
}

/// Compiled, fissioned plan for one kernel.
#[derive(Debug, PartialEq)]
pub struct KernelPlan {
    pub nregs: usize,
    pub ops: Vec<GroupOp>,
    /// Whether a reused register frame must be zeroed before each run.
    /// `false` when the plan-time scan proves every register is written
    /// before it is read, so stale values from the previous group are
    /// unobservable.
    pub zero_frame: bool,
}

/// Per-module plan table, indexed by [`crate::exec::ir::FuncId`].
#[derive(Debug, Default)]
pub struct ModulePlan {
    /// Helper-function bytecode (entries only for helpers reachable from a
    /// plannable kernel).
    pub funcs: Vec<Option<Arc<FuncPlan>>>,
    /// Per-kernel plan, or the human-readable fallback reason.
    pub kernels: Vec<Option<std::result::Result<Arc<KernelPlan>, String>>>,
}

/// Lazily computed, module-attached plan cache. The cache is *identity*
/// state, not value state: clones start empty and every instance compares
/// equal, so [`Module`] keeps its derived `Clone`/`PartialEq` semantics.
#[derive(Default)]
pub struct PlanCache(OnceLock<Arc<ModulePlan>>);

impl Clone for PlanCache {
    fn clone(&self) -> Self {
        PlanCache(OnceLock::new())
    }
}

impl PartialEq for PlanCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("planned", &self.0.get().is_some())
            .finish()
    }
}

/// The wg execution plan of `module`, computed on first use and cached on
/// the module (device-independent: costs and SIMD width bind at launch).
pub fn module_plan(module: &Module) -> Arc<ModulePlan> {
    module
        .wg_plans
        .0
        .get_or_init(|| Arc::new(plan_module(module)))
        .clone()
}

// ---- planner ---------------------------------------------------------------

type PlanResult<T> = std::result::Result<T, String>;

/// Plan every kernel of `module`: fission + bytecode, or a fallback reason.
pub fn plan_module(module: &Module) -> ModulePlan {
    let _span = crate::telemetry::span("clc", "wg-plan");
    let mut plan = ModulePlan {
        funcs: module.funcs.iter().map(|_| None).collect(),
        kernels: module.funcs.iter().map(|_| None).collect(),
    };
    let mut helper_memo: HashMap<usize, PlanResult<Arc<FuncPlan>>> = HashMap::new();
    for &fid in module.kernels.values() {
        let result = plan_kernel(module, fid, &mut helper_memo);
        plan.kernels[fid] = Some(result.map(Arc::new));
    }
    for (fid, fp) in helper_memo {
        if let Ok(fp) = fp {
            plan.funcs[fid] = Some(fp);
        }
    }
    plan
}

/// Kernels of `module` that the wg backend declines, as
/// `(kernel name, line of the kernel's first statement, reason)` sorted by
/// kernel name. Planning is memoized on the module, so calling this after a
/// launch (or before one) costs nothing extra.
pub fn fallback_reasons(module: &Module) -> Vec<(String, usize, String)> {
    let plan = module_plan(module);
    let mut names: Vec<(&String, usize)> = module.kernels.iter().map(|(n, &f)| (n, f)).collect();
    names.sort();
    let mut out = Vec::new();
    for (name, fid) in names {
        if let Some(Err(reason)) = &plan.kernels[fid] {
            let line = module.funcs[fid]
                .body
                .first()
                .map(|st| st.span.line)
                .unwrap_or(1);
            out.push((name.clone(), line, reason.clone()));
        }
    }
    out
}

/// Compile `source` the way `Program::build` does (preprocess, parse, sema,
/// `-O2`) and report which kernels the wg backend would decline. For
/// lint-style tooling that works from source strings.
pub fn fallback_report(source: &str) -> Result<Vec<(String, usize, String)>> {
    let src = crate::clc::pp::preprocess(source, &HashMap::new())?;
    let tu = crate::clc::parser::parse(&src)?;
    let mut module = crate::clc::sema::analyze(&tu)?;
    crate::clc::opt::optimize(&mut module, crate::clc::opt::OptLevel::O2);
    Ok(fallback_reasons(&module))
}

fn plan_kernel(
    module: &Module,
    fid: usize,
    helper_memo: &mut HashMap<usize, PlanResult<Arc<FuncPlan>>>,
) -> PlanResult<KernelPlan> {
    let kernel = &module.funcs[fid];

    // plan every reachable helper first (memoized across kernels)
    let mut reach = Vec::new();
    let mut seen = HashSet::new();
    let mut stack = HashSet::new();
    collect_callees(module, &kernel.body, &mut reach, &mut seen, &mut stack)?;
    for &callee in &reach {
        let f = &module.funcs[callee];
        if f.has_barrier {
            return Err(format!("helper function `{}` contains a barrier", f.name));
        }
        helper_memo
            .entry(callee)
            .or_insert_with(|| check_fn(f).and_then(|()| compile_helper(f)).map(Arc::new));
        match &helper_memo[&callee] {
            Ok(_) => {}
            Err(e) => return Err(e.clone()),
        }
    }

    check_fn(kernel)?;
    if kernel.has_barrier && block_contains_return(&kernel.body) {
        return Err("kernel mixes barriers with `return`".into());
    }

    // group-uniformity facts for barrier-carrying loop conditions
    let uctx = if kernel.has_barrier {
        let mut un = Uniformity::new(kernel);
        let cfg = Cfg::build(kernel);
        let _ = solve(&cfg, &mut un);
        let mut sid_of = HashMap::new();
        for_each_statement(&kernel.body, &mut |sid, st| {
            sid_of.insert(st as *const St as usize, sid);
        });
        Some((sid_of, un.cond_uniformity().clone()))
    } else {
        None
    };

    let mut c = Compiler::new(kernel)?;
    let ops = fission_block(&kernel.body, &mut c, uctx.as_ref())?;
    let zero_frame = frame_needs_zeroing(&ops, c.nregs, kernel.params.len());
    Ok(KernelPlan {
        nregs: c.nregs,
        ops,
        zero_frame,
    })
}

/// Def-before-use scan over a kernel plan: `false` iff every register read
/// is preceded by a full-width write in program order, starting from the
/// argument slots bound by [`WgGroupRun::run`]. Only fully straight-line
/// plans qualify — under control flow, calls, or barrier loops a write
/// covers just the active lanes, so the scan conservatively keeps the
/// per-group frame zeroing.
fn frame_needs_zeroing(ops: &[GroupOp], nregs: usize, nargs: usize) -> bool {
    let mut defined = vec![false; nregs];
    defined[..nargs.min(nregs)].fill(true);
    for gop in ops {
        let code = match gop {
            GroupOp::Region(code) if code_is_straight(code) => code,
            GroupOp::Barrier { .. } => continue,
            _ => return true,
        };
        for op in code {
            let (uses, def): ([Option<Reg>; 3], Option<Reg>) = match *op {
                Op::SetLine(_) | Op::ChargeBranch => ([None; 3], None),
                Op::ConstFill { dst, .. } => ([None; 3], Some(dst)),
                // straight-line regions run under a full mask, so a masked
                // copy overwrites every lane and never reads its dst
                Op::CopyMasked { dst, src } | Op::CopyFull { dst, src } => {
                    ([Some(src), None, None], Some(dst))
                }
                Op::Geom { dst, dim, .. } => ([Some(dim), None, None], Some(dst)),
                Op::PtrAdd { dst, ptr, off, .. } => ([Some(ptr), Some(off), None], Some(dst)),
                Op::Load { dst, addr, .. } => ([Some(addr), None, None], Some(dst)),
                Op::Store { addr, val, .. } => ([Some(addr), Some(val), None], None),
                Op::Bin { dst, l, r, .. } | Op::Cmp { dst, l, r, .. } => {
                    ([Some(l), Some(r), None], Some(dst))
                }
                Op::Un { dst, a, .. } | Op::Cast { dst, a, .. } | Op::Math1 { dst, a, .. } => {
                    ([Some(a), None, None], Some(dst))
                }
                Op::Math2 { dst, a, c, .. } => ([Some(a), Some(c), None], Some(dst)),
                Op::Math3 { dst, x, y, z, .. } => ([Some(x), Some(y), Some(z)], Some(dst)),
                Op::SelMerge { dst, cond, t, f } => ([Some(cond), Some(t), Some(f)], Some(dst)),
                // control flow and calls cannot appear in straight code
                _ => return true,
            };
            for u in uses.into_iter().flatten() {
                if !defined[u as usize] {
                    return true;
                }
            }
            if let Some(d) = def {
                defined[d as usize] = true;
            }
        }
    }
    false
}

/// Transitively collect helper functions called from `body` (depth-first;
/// a cycle means recursion, which the reference traps at runtime and the
/// planner declines at plan time).
fn collect_callees(
    module: &Module,
    body: &[St],
    out: &mut Vec<usize>,
    seen: &mut HashSet<usize>,
    stack: &mut HashSet<usize>,
) -> PlanResult<()> {
    let mut here = Vec::new();
    for_each_statement(body, &mut |_, st| {
        each_expr_in_stmt(st, &mut |e| {
            if let Ex::CallFunc { func, .. } = e {
                here.push(*func);
            }
        });
    });
    for func in here {
        if stack.contains(&func) {
            return Err(format!(
                "recursive call through `{}`",
                module.funcs[func].name
            ));
        }
        if seen.insert(func) {
            out.push(func);
            stack.insert(func);
            collect_callees(module, &module.funcs[func].body, out, seen, stack)?;
            stack.remove(&func);
        }
    }
    Ok(())
}

/// Plan-time checks shared by kernels and helpers: every statement needs a
/// real source line (per-line attribution has no compile-time join rule
/// for line 0) and atomics are statement-major-order sensitive.
fn check_fn(f: &FuncIr) -> PlanResult<()> {
    let mut err = None;
    for_each_statement(&f.body, &mut |_, st| {
        if err.is_some() {
            return;
        }
        if st.span.line == 0 {
            err = Some(format!(
                "function `{}` has a statement with no source line",
                f.name
            ));
            return;
        }
        each_expr_in_stmt(st, &mut |e| {
            if let Ex::CallBuiltin { b, .. } = e {
                if b.is_atomic() && err.is_none() {
                    err = Some(format!(
                        "function `{}` uses an atomic builtin (old-value ordering is \
                         statement-major)",
                        f.name
                    ));
                }
            }
        });
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Visit the top-level expressions of `st` and, recursively, every nested
/// sub-expression.
fn each_expr_in_stmt<'a>(st: &'a St, f: &mut impl FnMut(&'a Ex)) {
    fn walk<'a>(e: &'a Ex, f: &mut impl FnMut(&'a Ex)) {
        f(e);
        match e {
            Ex::PtrAdd { ptr, offset, .. } => {
                walk(ptr, f);
                walk(offset, f);
            }
            Ex::Load { addr, .. } => walk(addr, f),
            Ex::Bin { l, r, .. }
            | Ex::Cmp { l, r, .. }
            | Ex::LogAnd { l, r }
            | Ex::LogOr { l, r } => {
                walk(l, f);
                walk(r, f);
            }
            Ex::Un { e, .. } | Ex::Cast { e, .. } => walk(e, f),
            Ex::CallBuiltin { args, .. } | Ex::CallFunc { args, .. } => {
                for a in args {
                    walk(a, f);
                }
            }
            Ex::Select { cond, t, f: fe, .. } => {
                walk(cond, f);
                walk(t, f);
                walk(fe, f);
            }
            Ex::Const { .. } | Ex::Slot { .. } | Ex::LocalBase { .. } | Ex::PrivBase { .. } => {}
        }
    }
    match &st.kind {
        StKind::SetSlot { value, .. } => walk(value, f),
        StKind::Store { addr, value, .. } => {
            walk(addr, f);
            walk(value, f);
        }
        StKind::If { cond, .. } | StKind::Loop { cond, .. } => walk(cond, f),
        StKind::Return(Some(e)) | StKind::ExprSt(e) => walk(e, f),
        StKind::Return(None) | StKind::Break | StKind::Continue | StKind::Barrier { .. } => {}
    }
}

fn block_contains_barrier(body: &[St]) -> bool {
    body.iter().any(stmt_contains_barrier)
}

fn stmt_contains_barrier(st: &St) -> bool {
    match &st.kind {
        StKind::Barrier { .. } => true,
        StKind::If {
            then_blk, else_blk, ..
        } => block_contains_barrier(then_blk) || block_contains_barrier(else_blk),
        StKind::Loop { body, step, .. } => {
            block_contains_barrier(body) || block_contains_barrier(step)
        }
        _ => false,
    }
}

fn block_contains_return(body: &[St]) -> bool {
    body.iter().any(|st| match &st.kind {
        StKind::Return(_) => true,
        StKind::If {
            then_blk, else_blk, ..
        } => block_contains_return(then_blk) || block_contains_return(else_blk),
        StKind::Loop { body, step, .. } => {
            block_contains_return(body) || block_contains_return(step)
        }
        _ => false,
    })
}

/// `break`/`continue` statements that would bind to the *enclosing* loop
/// (i.e. not nested inside a deeper loop of `body`).
fn block_breaks_out(body: &[St]) -> bool {
    body.iter().any(|st| match &st.kind {
        StKind::Break | StKind::Continue => true,
        StKind::If {
            then_blk, else_blk, ..
        } => block_breaks_out(then_blk) || block_breaks_out(else_blk),
        // an inner loop captures its own break/continue
        StKind::Loop { .. } => false,
        _ => false,
    })
}

/// Can control *escape* this statement sideways (return/break/continue),
/// leaving the execution mask smaller than it entered? Used to place
/// empty-mask jumps after statements, mirroring the reference
/// interpreter's per-statement `live.any()` check.
fn may_escape(st: &St) -> bool {
    match &st.kind {
        StKind::Return(_) | StKind::Break | StKind::Continue => true,
        StKind::If {
            then_blk, else_blk, ..
        } => then_blk.iter().any(may_escape) || else_blk.iter().any(may_escape),
        // break/continue re-bind inside the nested loop; only return escapes
        StKind::Loop { body, step, .. } => {
            block_contains_return(body) || block_contains_return(step)
        }
        _ => false,
    }
}

type UniformCtx = (HashMap<usize, usize>, BTreeMap<usize, Uni>);

/// Barrier-aware loop fission: split `stmts` into barrier-free regions,
/// group barriers, and uniform loops around barrier-carrying loop bodies.
fn fission_block(
    stmts: &[St],
    c: &mut Compiler<'_>,
    uctx: Option<&UniformCtx>,
) -> PlanResult<Vec<GroupOp>> {
    let mut ops = Vec::new();
    let mut region: Vec<&St> = Vec::new();
    let flush =
        |region: &mut Vec<&St>, ops: &mut Vec<GroupOp>, c: &mut Compiler<'_>| -> PlanResult<()> {
            if region.is_empty() {
                return Ok(());
            }
            let code = c.compile_region(region)?;
            region.clear();
            ops.push(GroupOp::Region(code));
            Ok(())
        };
    for st in stmts {
        match &st.kind {
            StKind::Barrier { .. } => {
                flush(&mut region, &mut ops, c)?;
                ops.push(GroupOp::Barrier {
                    line: st.span.line as u32,
                });
            }
            StKind::Loop {
                cond,
                body,
                step,
                check_first,
            } if block_contains_barrier(body) || block_contains_barrier(step) => {
                flush(&mut region, &mut ops, c)?;
                if block_contains_barrier(step) {
                    return Err("barrier in a loop step".into());
                }
                if block_breaks_out(body) {
                    return Err("`break`/`continue` out of a barrier-carrying loop".into());
                }
                let ctx = uctx.expect("barrier loops only appear in barrier kernels");
                let sid = ctx
                    .0
                    .get(&(st as *const St as usize))
                    .copied()
                    .expect("every statement is numbered");
                // `cond_uni` records only *demoted* conditions; a
                // condition absent from the map stayed `Uni::BOTH` through
                // the fixpoint, i.e. is provably uniform.
                let uni = ctx.1.get(&sid).copied().unwrap_or(Uni::BOTH);
                if !uni.guniform {
                    return Err(
                        "barrier-carrying loop condition is not provably group-uniform".into(),
                    );
                }
                let (cond_code, cond_reg) = c.compile_cond_chunk(cond, st.span.line as u32)?;
                let inner = fission_block(body, c, uctx)?;
                let step_code = c.compile_region(&step.iter().collect::<Vec<_>>())?;
                ops.push(GroupOp::UniformLoop {
                    cond: cond_code,
                    cond_reg,
                    body: inner,
                    step: step_code,
                    check_first: *check_first,
                });
            }
            StKind::If {
                then_blk, else_blk, ..
            } if block_contains_barrier(then_blk) || block_contains_barrier(else_blk) => {
                return Err("barrier under divergent control flow (inside an `if`)".into());
            }
            _ => region.push(st),
        }
    }
    flush(&mut region, &mut ops, c)?;
    Ok(ops)
}

fn compile_helper(f: &FuncIr) -> PlanResult<FuncPlan> {
    // helpers share one plan across every kernel of the module, but the
    // reference interpreter resolves array allocations against the
    // *launched kernel's* tables — decline the ambiguity
    if !f.local_allocs.is_empty() || !f.priv_allocs.is_empty() {
        return Err(format!(
            "helper function `{}` declares an array allocation",
            f.name
        ));
    }
    let mut c = Compiler::new_helper(f)?;
    let code = c.compile_region(&f.body.iter().collect::<Vec<_>>())?;
    Ok(FuncPlan {
        nregs: c.nregs,
        ret_reg: c.ret_reg,
        code,
    })
}

// ---- bytecode compiler ------------------------------------------------------

struct Compiler<'m> {
    /// Allocation tables are resolved against the *kernel* (the reference
    /// semantics); helpers are compiled with `None` and reject bases.
    kernel: Option<&'m FuncIr>,
    nslots: usize,
    /// Register holding the function's return value (`= nslots`).
    ret_reg: Reg,
    /// Next free temp register (reset to `nslots + 1` between statements).
    tmp_top: usize,
    /// High-water register count (frame size).
    nregs: usize,
    code: Code,
    labels: Vec<u32>,
    fixups: Vec<(usize, usize)>,
}

const UNBOUND: u32 = u32::MAX;

impl<'m> Compiler<'m> {
    fn build(kernel: Option<&'m FuncIr>, f: &'m FuncIr) -> PlanResult<Compiler<'m>> {
        let nslots = f.slots.len();
        if nslots + 1 > Reg::MAX as usize {
            return Err("kernel needs more than 65535 registers".into());
        }
        Ok(Compiler {
            kernel,
            nslots,
            ret_reg: nslots as Reg,
            tmp_top: nslots + 1,
            nregs: nslots + 1,
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        })
    }

    fn new(kernel: &'m FuncIr) -> PlanResult<Compiler<'m>> {
        Compiler::build(Some(kernel), kernel)
    }

    fn new_helper(f: &'m FuncIr) -> PlanResult<Compiler<'m>> {
        Compiler::build(None, f)
    }

    fn new_tmp(&mut self) -> PlanResult<Reg> {
        let r = self.tmp_top;
        if r > Reg::MAX as usize {
            return Err("kernel needs more than 65535 registers".into());
        }
        self.tmp_top += 1;
        self.nregs = self.nregs.max(self.tmp_top);
        Ok(r as Reg)
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(UNBOUND);
        self.labels.len() - 1
    }

    fn bind(&mut self, label: usize) {
        self.labels[label] = self.code.len() as u32;
    }

    fn emit_jmp(&mut self, label: usize) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Op::Jmp(UNBOUND));
    }

    fn emit_jmp_if_empty(&mut self, label: usize) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Op::JmpIfEmpty(UNBOUND));
    }

    /// Patch jumps and take the finished chunk, resetting for the next one.
    fn finish_chunk(&mut self) -> Code {
        for &(pos, label) in &self.fixups {
            let target = self.labels[label];
            debug_assert_ne!(target, UNBOUND, "unbound label");
            match &mut self.code[pos] {
                Op::Jmp(t) | Op::JmpIfEmpty(t) => *t = target,
                _ => unreachable!("fixup points at a jump"),
            }
        }
        self.fixups.clear();
        self.labels.clear();
        std::mem::take(&mut self.code)
    }

    /// Compile a barrier-free statement span into one chunk.
    fn compile_region(&mut self, stmts: &[&St]) -> PlanResult<Code> {
        let exit = self.new_label();
        self.compile_block_refs(stmts, exit)?;
        self.bind(exit);
        Ok(self.finish_chunk())
    }

    /// Compile a loop condition into its own chunk: line switch, the
    /// condition value, and the branch charge (the reference order).
    fn compile_cond_chunk(&mut self, cond: &Ex, header_line: u32) -> PlanResult<(Code, Reg)> {
        self.code.push(Op::SetLine(header_line));
        let mark = self.tmp_top;
        let r = self.compile_ex(cond)?;
        self.code.push(Op::ChargeBranch);
        self.tmp_top = mark;
        Ok((self.finish_chunk(), r))
    }

    fn compile_block_refs(&mut self, stmts: &[&St], exit: usize) -> PlanResult<()> {
        for st in stmts {
            self.compile_stmt(st, exit)?;
        }
        Ok(())
    }

    fn compile_block(&mut self, stmts: &[St], exit: usize) -> PlanResult<()> {
        for st in stmts {
            self.compile_stmt(st, exit)?;
        }
        Ok(())
    }

    fn compile_stmt(&mut self, st: &St, block_exit: usize) -> PlanResult<()> {
        self.code.push(Op::SetLine(st.span.line as u32));
        let mark = self.tmp_top;
        match &st.kind {
            StKind::SetSlot { slot, value } => {
                let v = self.compile_ex(value)?;
                self.code.push(Op::CopyMasked {
                    dst: *slot as Reg,
                    src: v,
                });
            }
            StKind::Store {
                addr,
                elem,
                space,
                value,
            } => {
                let a = self.compile_ex(addr)?;
                let v = self.compile_ex(value)?;
                self.code.push(Op::Store {
                    addr: a,
                    val: v,
                    elem: *elem,
                    space: *space,
                });
            }
            StKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.compile_ex(cond)?;
                self.code.push(Op::ChargeBranch);
                self.code.push(Op::PushIf {
                    cond: c,
                    invert: false,
                });
                self.tmp_top = mark;
                let l_else = self.new_label();
                let l_end = self.new_label();
                self.emit_jmp_if_empty(l_else);
                self.compile_block(then_blk, l_else)?;
                self.bind(l_else);
                self.code.push(Op::ElseSwap);
                self.emit_jmp_if_empty(l_end);
                self.compile_block(else_blk, l_end)?;
                self.bind(l_end);
                self.code.push(Op::PopIf);
            }
            StKind::Loop {
                cond,
                body,
                step,
                check_first,
            } => {
                self.code.push(Op::PushLoop);
                let l_top = self.new_label();
                let l_iter_end = self.new_label();
                let l_step_end = self.new_label();
                let l_exit = self.new_label();
                if *check_first {
                    let c = self.compile_ex(cond)?;
                    self.code.push(Op::ChargeBranch);
                    self.code.push(Op::AndTruthy { cond: c });
                    self.tmp_top = mark;
                }
                self.bind(l_top);
                self.emit_jmp_if_empty(l_exit);
                self.compile_block(body, l_iter_end)?;
                self.bind(l_iter_end);
                self.code.push(Op::LoopIterEnd);
                self.emit_jmp_if_empty(l_exit);
                self.compile_block(step, l_step_end)?;
                self.bind(l_step_end);
                self.code.push(Op::AndNotRet);
                self.emit_jmp_if_empty(l_exit);
                // the loop test is charged to the loop-header line
                self.code.push(Op::SetLine(st.span.line as u32));
                let c = self.compile_ex(cond)?;
                self.code.push(Op::ChargeBranch);
                self.code.push(Op::AndTruthy { cond: c });
                self.tmp_top = mark;
                self.emit_jmp(l_top);
                self.bind(l_exit);
                self.code.push(Op::PopLoop);
            }
            StKind::Return(val) => {
                if let Some(e) = val {
                    let v = self.compile_ex(e)?;
                    let ret = self.ret_reg;
                    self.code.push(Op::CopyMasked { dst: ret, src: v });
                }
                self.code.push(Op::Return);
            }
            StKind::Break => self.code.push(Op::Break),
            StKind::Continue => self.code.push(Op::Continue),
            StKind::Barrier { .. } => {
                // fission extracts every kernel barrier; helper barriers
                // fall back at plan time
                return Err("barrier in a non-fissionable position".into());
            }
            StKind::ExprSt(e) => {
                let _ = self.compile_ex(e)?;
            }
        }
        self.tmp_top = mark;
        if may_escape(st) {
            self.emit_jmp_if_empty(block_exit);
        }
        Ok(())
    }

    /// Compile `e`, returning the register holding its per-lane value.
    /// Slot reads return the slot register itself (never written by
    /// expression evaluation); everything else lands in a fresh temp.
    fn compile_ex(&mut self, e: &Ex) -> PlanResult<Reg> {
        match e {
            Ex::Const { bits, .. } => {
                let r = self.new_tmp()?;
                self.code.push(Op::ConstFill {
                    dst: r,
                    bits: *bits,
                });
                Ok(r)
            }
            Ex::Slot { slot, .. } => Ok(*slot as Reg),
            Ex::LocalBase { alloc, .. } => {
                let kernel = self
                    .kernel
                    .ok_or_else(|| "array allocation referenced from a helper".to_string())?;
                let off = kernel.local_allocs[*alloc].byte_offset;
                let r = self.new_tmp()?;
                self.code.push(Op::ConstFill {
                    dst: r,
                    bits: local_pointer(off),
                });
                Ok(r)
            }
            Ex::PrivBase { alloc, .. } => {
                let kernel = self
                    .kernel
                    .ok_or_else(|| "array allocation referenced from a helper".to_string())?;
                let off = kernel.priv_allocs[*alloc].byte_offset;
                let r = self.new_tmp()?;
                self.code.push(Op::ConstFill {
                    dst: r,
                    bits: priv_pointer(off),
                });
                Ok(r)
            }
            Ex::PtrAdd {
                ptr,
                offset,
                elem_size,
            } => {
                let p = self.compile_ex(ptr)?;
                let o = self.compile_ex(offset)?;
                let r = self.new_tmp()?;
                self.code.push(Op::PtrAdd {
                    dst: r,
                    ptr: p,
                    off: o,
                    elem_size: *elem_size as u32,
                });
                Ok(r)
            }
            Ex::Load { addr, elem, space } => {
                let a = self.compile_ex(addr)?;
                let r = self.new_tmp()?;
                self.code.push(Op::Load {
                    dst: r,
                    addr: a,
                    elem: *elem,
                    space: *space,
                });
                Ok(r)
            }
            Ex::Bin { op, ty, l, r } => {
                let a = self.compile_ex(l)?;
                let b = self.compile_ex(r)?;
                let d = self.new_tmp()?;
                self.code.push(Op::Bin {
                    dst: d,
                    l: a,
                    r: b,
                    op: *op,
                    ty: *ty,
                });
                Ok(d)
            }
            Ex::Cmp { op, ty, l, r } => {
                let a = self.compile_ex(l)?;
                let b = self.compile_ex(r)?;
                let d = self.new_tmp()?;
                self.code.push(Op::Cmp {
                    dst: d,
                    l: a,
                    r: b,
                    op: *op,
                    ty: *ty,
                });
                Ok(d)
            }
            Ex::LogAnd { l, r } | Ex::LogOr { l, r } => {
                let invert = matches!(e, Ex::LogOr { .. });
                let a = self.compile_ex(l)?;
                // merge into a temp we own, never into a slot register
                let res = if (a as usize) > self.nslots {
                    a
                } else {
                    let t = self.new_tmp()?;
                    self.code.push(Op::CopyFull { dst: t, src: a });
                    t
                };
                self.code.push(Op::PushIf { cond: res, invert });
                let l_join = self.new_label();
                self.emit_jmp_if_empty(l_join);
                let b = self.compile_ex(r)?;
                self.code.push(Op::CopyMasked { dst: res, src: b });
                self.bind(l_join);
                self.code.push(Op::ElseSwap);
                self.code.push(Op::PopIf);
                Ok(res)
            }
            Ex::Un { op, ty, e } => {
                let a = self.compile_ex(e)?;
                let d = self.new_tmp()?;
                self.code.push(Op::Un {
                    dst: d,
                    a,
                    op: *op,
                    ty: *ty,
                });
                Ok(d)
            }
            Ex::Cast { from, to, e } => {
                let a = self.compile_ex(e)?;
                let d = self.new_tmp()?;
                self.code.push(Op::Cast {
                    dst: d,
                    a,
                    from: *from,
                    to: *to,
                });
                Ok(d)
            }
            Ex::Select { cond, t, f, .. } => {
                let c = self.compile_ex(cond)?;
                self.code.push(Op::PushIf {
                    cond: c,
                    invert: false,
                });
                let l_else = self.new_label();
                let l_end = self.new_label();
                self.emit_jmp_if_empty(l_else);
                let tv = self.compile_ex(t)?;
                self.bind(l_else);
                self.code.push(Op::ElseSwap);
                self.emit_jmp_if_empty(l_end);
                let fv = self.compile_ex(f)?;
                self.bind(l_end);
                self.code.push(Op::PopIf);
                let d = self.new_tmp()?;
                self.code.push(Op::SelMerge {
                    dst: d,
                    cond: c,
                    t: tv,
                    f: fv,
                });
                Ok(d)
            }
            Ex::CallBuiltin { b, ty, args } => self.compile_builtin(*b, *ty, args),
            Ex::CallFunc { func, args, .. } => {
                let mut arg_regs = Vec::with_capacity(args.len());
                for a in args {
                    arg_regs.push(self.compile_ex(a)?);
                }
                // stage arguments in consecutive registers
                let abase = self.tmp_top as Reg;
                for _ in 0..args.len() {
                    self.new_tmp()?;
                }
                for (i, &src) in arg_regs.iter().enumerate() {
                    self.code.push(Op::CopyFull {
                        dst: abase + i as Reg,
                        src,
                    });
                }
                let d = self.new_tmp()?;
                self.code.push(Op::Call {
                    dst: d,
                    func: *func as u32,
                    abase,
                    nargs: args.len() as u16,
                });
                Ok(d)
            }
        }
    }

    fn compile_builtin(&mut self, b: Builtin, ty: ScalarType, args: &[Ex]) -> PlanResult<Reg> {
        if b.is_geometry() {
            let dim = if b == Builtin::GetWorkDim {
                0
            } else {
                self.compile_ex(&args[0])?
            };
            let r = self.new_tmp()?;
            self.code.push(Op::Geom { dst: r, dim, b });
            return Ok(r);
        }
        if b.is_atomic() {
            return Err("atomic builtin".into());
        }
        match args.len() {
            1 => {
                let a = self.compile_ex(&args[0])?;
                let d = self.new_tmp()?;
                self.code.push(Op::Math1 { dst: d, a, b, ty });
                Ok(d)
            }
            2 => {
                let a = self.compile_ex(&args[0])?;
                let c = self.compile_ex(&args[1])?;
                let d = self.new_tmp()?;
                self.code.push(Op::Math2 {
                    dst: d,
                    a,
                    c,
                    b,
                    ty,
                });
                Ok(d)
            }
            3 => {
                let x = self.compile_ex(&args[0])?;
                let y = self.compile_ex(&args[1])?;
                let z = self.compile_ex(&args[2])?;
                let d = self.new_tmp()?;
                self.code.push(Op::Math3 {
                    dst: d,
                    x,
                    y,
                    z,
                    b,
                    ty,
                });
                Ok(d)
            }
            _ => unreachable!("sema checks builtin arities"),
        }
    }
}

// ---- the VM ----------------------------------------------------------------

// ---- specialized lane loops -------------------------------------------------
//
// The generic scalar helpers in [`ops`] re-dispatch on `(op, ty)` for every
// lane, which costs more than the arithmetic itself. The fills below hoist
// that dispatch out of the lane loop for the types that dominate kernel
// inner loops and run one tight (autovectorizable) loop per arm. Every arm
// is a transcription of the corresponding `ops` arm with the type fixed, so
// the results are bit-identical; narrow or rare types keep the generic
// helper as the fallback arm.

/// `regs[d+k] = regs[l+k] (op) regs[r+k]` for the non-trapping binaries
/// (`Div`/`Rem` stay on the per-lane path that can fault).
fn bin_fill(op: BOp, ty: ScalarType, regs: &mut [u64], d: usize, l: usize, r: usize, ww: usize) {
    use ScalarType::*;
    assert!(d + ww <= regs.len() && l + ww <= regs.len() && r + ww <= regs.len());
    macro_rules! lanes {
        (|$x:ident, $y:ident| $body:expr) => {
            for k in 0..ww {
                let $x = regs[l + k];
                let $y = regs[r + k];
                regs[d + k] = $body;
            }
        };
    }
    // canonical signed values are sign-extended `i64`s, so truncating to the
    // width, operating, and re-sign-extending matches `canon_i` exactly; the
    // unsigned twins match `canon_u`'s masking. Shift amounts are taken
    // modulo the width of the *canonical* operand, like `shift_amount`.
    macro_rules! i32_arm {
        (|$x:ident, $y:ident| $body:expr) => {
            lanes!(|a, b| {
                let $x = a as i32;
                let $y = b as i32;
                ($body) as i64 as u64
            })
        };
    }
    macro_rules! u32_arm {
        (|$x:ident, $y:ident| $body:expr) => {
            lanes!(|a, b| {
                let $x = a as u32;
                let $y = b as u32;
                ($body) as u64
            })
        };
    }
    macro_rules! f32_arm {
        (|$x:ident, $y:ident| $body:expr) => {
            lanes!(|a, b| {
                let $x = f32::from_bits(a as u32);
                let $y = f32::from_bits(b as u32);
                ($body).to_bits() as u64
            })
        };
    }
    macro_rules! f64_arm {
        (|$x:ident, $y:ident| $body:expr) => {
            lanes!(|a, b| {
                let $x = f64::from_bits(a);
                let $y = f64::from_bits(b);
                ($body).to_bits()
            })
        };
    }
    match (ty, op) {
        (I32, BOp::Add) => i32_arm!(|x, y| x.wrapping_add(y)),
        (I32, BOp::Sub) => i32_arm!(|x, y| x.wrapping_sub(y)),
        (I32, BOp::Mul) => i32_arm!(|x, y| x.wrapping_mul(y)),
        (I32, BOp::And) => i32_arm!(|x, y| x & y),
        (I32, BOp::Or) => i32_arm!(|x, y| x | y),
        (I32, BOp::Xor) => i32_arm!(|x, y| x ^ y),
        (I32, BOp::Shl) => lanes!(|a, b| ((a as i32).wrapping_shl((b % 32) as u32)) as i64 as u64),
        (I32, BOp::Shr) => lanes!(|a, b| ((a as i32).wrapping_shr((b % 32) as u32)) as i64 as u64),
        (I64, BOp::Add) => lanes!(|a, b| (a as i64).wrapping_add(b as i64) as u64),
        (I64, BOp::Sub) => lanes!(|a, b| (a as i64).wrapping_sub(b as i64) as u64),
        (I64, BOp::Mul) => lanes!(|a, b| (a as i64).wrapping_mul(b as i64) as u64),
        (I64, BOp::And) | (U64, BOp::And) => lanes!(|a, b| a & b),
        (I64, BOp::Or) | (U64, BOp::Or) => lanes!(|a, b| a | b),
        (I64, BOp::Xor) | (U64, BOp::Xor) => lanes!(|a, b| a ^ b),
        (I64, BOp::Shl) => lanes!(|a, b| ((a as i64).wrapping_shl((b % 64) as u32)) as u64),
        (I64, BOp::Shr) => lanes!(|a, b| ((a as i64).wrapping_shr((b % 64) as u32)) as u64),
        (U32, BOp::Add) => u32_arm!(|x, y| x.wrapping_add(y)),
        (U32, BOp::Sub) => u32_arm!(|x, y| x.wrapping_sub(y)),
        (U32, BOp::Mul) => u32_arm!(|x, y| x.wrapping_mul(y)),
        (U32, BOp::And) => u32_arm!(|x, y| x & y),
        (U32, BOp::Or) => u32_arm!(|x, y| x | y),
        (U32, BOp::Xor) => u32_arm!(|x, y| x ^ y),
        (U32, BOp::Shl) => u32_arm!(|x, y| x.wrapping_shl(y % 32)),
        (U32, BOp::Shr) => u32_arm!(|x, y| x.wrapping_shr(y % 32)),
        (U64, BOp::Add) => lanes!(|a, b| a.wrapping_add(b)),
        (U64, BOp::Sub) => lanes!(|a, b| a.wrapping_sub(b)),
        (U64, BOp::Mul) => lanes!(|a, b| a.wrapping_mul(b)),
        (U64, BOp::Shl) => lanes!(|a, b| a.wrapping_shl((b % 64) as u32)),
        (U64, BOp::Shr) => lanes!(|a, b| a.wrapping_shr((b % 64) as u32)),
        (F32, BOp::Add) => f32_arm!(|x, y| x + y),
        (F32, BOp::Sub) => f32_arm!(|x, y| x - y),
        (F32, BOp::Mul) => f32_arm!(|x, y| x * y),
        (F32, BOp::Div) => f32_arm!(|x, y| x / y),
        (F64, BOp::Add) => f64_arm!(|x, y| x + y),
        (F64, BOp::Sub) => f64_arm!(|x, y| x - y),
        (F64, BOp::Mul) => f64_arm!(|x, y| x * y),
        (F64, BOp::Div) => f64_arm!(|x, y| x / y),
        _ => lanes!(|a, b| ops::bin_op(op, ty, a, b).expect("only div/rem trap")),
    }
}

/// `regs[d+k] = regs[l+k] (cmp) regs[r+k]` with the type dispatch hoisted.
/// Canonical signed values compare correctly at `i64`, canonical unsigned
/// at `u64`; float arms reproduce `cmp_op`'s NaN table (every comparison
/// with NaN is false except `!=`).
fn cmp_fill(
    op: crate::exec::ir::COp,
    ty: ScalarType,
    regs: &mut [u64],
    d: usize,
    l: usize,
    r: usize,
    ww: usize,
) {
    use crate::exec::ir::COp;
    assert!(d + ww <= regs.len() && l + ww <= regs.len() && r + ww <= regs.len());
    macro_rules! lanes {
        (|$x:ident, $y:ident| $body:expr) => {
            for k in 0..ww {
                let $x = regs[l + k];
                let $y = regs[r + k];
                regs[d + k] = ($body) as u64;
            }
        };
    }
    macro_rules! typed {
        ($cv:expr) => {{
            let cv = $cv;
            match op {
                COp::Lt => lanes!(|a, b| cv(a) < cv(b)),
                COp::Gt => lanes!(|a, b| cv(a) > cv(b)),
                COp::Le => lanes!(|a, b| cv(a) <= cv(b)),
                COp::Ge => lanes!(|a, b| cv(a) >= cv(b)),
                COp::Eq => lanes!(|a, b| cv(a) == cv(b)),
                COp::Ne => lanes!(|a, b| cv(a) != cv(b)),
            }
        }};
    }
    if ty == ScalarType::F32 {
        typed!(|v: u64| f32::from_bits(v as u32));
    } else if ty == ScalarType::F64 {
        typed!(f64::from_bits);
    } else if ty.is_signed() {
        typed!(|v: u64| v as i64);
    } else {
        typed!(|v: u64| v);
    }
}

/// `regs[d+k] = cast(regs[a+k])` with the `(from, to)` dispatch hoisted for
/// the conversions kernels actually emit (`size_t` geometry into `int`
/// indexes, `int`/`uint` widening, float conversions).
fn cast_fill(from: ScalarType, to: ScalarType, regs: &mut [u64], d: usize, a: usize, ww: usize) {
    use ScalarType::*;
    assert!(d + ww <= regs.len() && a + ww <= regs.len());
    macro_rules! lanes {
        (|$x:ident| $body:expr) => {
            for k in 0..ww {
                let $x = regs[a + k];
                regs[d + k] = $body;
            }
        };
    }
    match (from, to) {
        (U64 | U32 | I64, I32) => lanes!(|x| (x as i32) as i64 as u64),
        (I32 | I64 | U64, U32) => lanes!(|x| x & 0xFFFF_FFFF),
        (I32 | U32, I64) | (I32 | U32, U64) => lanes!(|x| x),
        (I32 | I64, F32) => lanes!(|x| ((((x as i64) as f64) as f32).to_bits()) as u64),
        (U32 | U64, F32) => lanes!(|x| (((x as f64) as f32).to_bits()) as u64),
        (I32 | I64, F64) => lanes!(|x| ((x as i64) as f64).to_bits()),
        (U32 | U64, F64) => lanes!(|x| (x as f64).to_bits()),
        (F32, I32) => lanes!(|x| ((f32::from_bits(x as u32) as f64) as i32) as i64 as u64),
        (F32, U32) => lanes!(|x| ((f32::from_bits(x as u32) as f64) as u32) as u64),
        (F32, F64) => lanes!(|x| (f32::from_bits(x as u32) as f64).to_bits()),
        (F64, F32) => lanes!(|x| ((f64::from_bits(x) as f32).to_bits()) as u64),
        _ => lanes!(|x| ops::cast_bits(x, from, to)),
    }
}

/// Per-warp divergence state while executing one chunk.
struct WarpState {
    /// Active-lane bitmask over the chunk's `0..ww` lanes.
    exec: u64,
    /// Lanes that executed `return` in the current function.
    ret: u64,
    /// First lane of this warp within the group.
    lo: usize,
    /// Warp width (clipped at the group tail; `<= 64`).
    ww: usize,
    if_stack: Vec<IfFrame>,
    loop_stack: Vec<LoopFrame>,
}

struct IfFrame {
    /// Lanes waiting to run the other side.
    other: u64,
    /// Lanes that finished their side.
    done: u64,
}

struct LoopFrame {
    /// Exec mask at loop entry (reconvergence target).
    entry: u64,
    /// Lanes parked by `continue` until the end of the iteration.
    cont: u64,
}

fn warp_full(ww: usize) -> u64 {
    if ww >= 64 {
        u64::MAX
    } else {
        (1u64 << ww) - 1
    }
}

/// True when `code` contains only straight-line value ops — no control
/// flow, no calls, nothing that writes the exec mask. Such a region is
/// order-insensitive between warps: every mask stays full, so executing
/// it warp-outer (one warp through the whole chunk at a time) and
/// op-outer (each op across every warp, the reference interpreter's
/// lock-step order) produce the same values, the same counter sums, and
/// the same first fault.
fn code_is_straight(code: &[Op]) -> bool {
    code.iter().all(|op| {
        matches!(
            op,
            Op::SetLine(_)
                | Op::ConstFill { .. }
                | Op::CopyMasked { .. }
                | Op::CopyFull { .. }
                | Op::Geom { .. }
                | Op::PtrAdd { .. }
                | Op::Load { .. }
                | Op::Store { .. }
                | Op::Bin { .. }
                | Op::Cmp { .. }
                | Op::Un { .. }
                | Op::Cast { .. }
                | Op::Math1 { .. }
                | Op::Math2 { .. }
                | Op::Math3 { .. }
                | Op::SelMerge { .. }
                | Op::ChargeBranch
        )
    })
}

/// Bytecode VM state for one work-group (the wg counterpart of
/// [`super::interp::GroupRun`], with the same public result fields).
pub struct WgGroupRun<'a> {
    env: &'a LaunchEnv<'a>,
    plan: &'a ModulePlan,
    kplan: &'a KernelPlan,
    nlanes: usize,
    lid: [Vec<u64>; 3],
    gid: [Vec<u64>; 3],
    group_id: [u64; 3],
    local_mem: Vec<u8>,
    priv_mem: Vec<u8>,
    priv_stride: usize,
    pub stats: GroupStats,
    pub counters: Option<GroupCounters>,
    pub line_counters: Option<BTreeMap<usize, GroupCounters>>,
    collect: bool,
    cur_line: usize,
    /// Pending counter deltas for `cur_line`, merged into the totals and
    /// the per-line map when the line changes (the batched equivalent of
    /// the reference `bump()` chokepoint — a line gets an entry exactly
    /// when some delta landed while it was current).
    acc: GroupCounters,
    acc_dirty: bool,
    /// Kernel register frame: `nregs x nlanes`, register-major.
    regs: Vec<u64>,
    frame_pool: Vec<Vec<u64>>,
    seg_buf: Vec<u64>,
    bank_buf: Vec<(u64, u64)>,
    call_depth: usize,
    /// Per-group L1 tag-array simulation (present when the device profile
    /// has the `cache` capability). Transactions are buffered per warp and
    /// replayed in warp-index order at every barrier and at the end of the
    /// group run, so the hit/miss stream is byte-identical to the
    /// statement-major reference backend.
    cache: Option<GroupCacheSim>,
}

impl<'a> WgGroupRun<'a> {
    /// Prepare the VM for work-group `group` (per-dimension index).
    pub fn new(
        env: &'a LaunchEnv<'a>,
        plan: &'a ModulePlan,
        kplan: &'a KernelPlan,
        group: [usize; 3],
    ) -> WgGroupRun<'a> {
        let l = env.geom.local;
        let nlanes = l[0] * l[1] * l[2];
        let mut lid = [vec![0u64; nlanes], vec![0u64; nlanes], vec![0u64; nlanes]];
        let mut gid = [vec![0u64; nlanes], vec![0u64; nlanes], vec![0u64; nlanes]];
        for lane in 0..nlanes {
            let lx = lane % l[0];
            let ly = (lane / l[0]) % l[1];
            let lz = lane / (l[0] * l[1]);
            let lids = [lx, ly, lz];
            for d in 0..3 {
                lid[d][lane] = lids[d] as u64;
                gid[d][lane] = (group[d] * l[d] + lids[d]) as u64;
            }
        }
        WgGroupRun {
            env,
            plan,
            kplan,
            nlanes,
            lid,
            gid,
            group_id: [group[0] as u64, group[1] as u64, group[2] as u64],
            local_mem: vec![0u8; env.kernel.local_bytes()],
            priv_mem: vec![0u8; env.kernel.priv_bytes_per_lane() * nlanes],
            priv_stride: env.kernel.priv_bytes_per_lane(),
            stats: GroupStats::default(),
            counters: env.collect.then(GroupCounters::default),
            line_counters: env.collect.then(BTreeMap::new),
            collect: env.collect,
            cur_line: 0,
            acc: GroupCounters::default(),
            acc_dirty: false,
            regs: vec![0u64; kplan.nregs * nlanes],
            frame_pool: Vec::new(),
            seg_buf: Vec::new(),
            bank_buf: Vec::new(),
            call_depth: 0,
            cache: env
                .cache
                .as_ref()
                .map(|cc| GroupCacheSim::new(cc, env.cost.segment_bytes as u64)),
        }
    }

    /// Re-arm this VM for another group of the same launch, reusing every
    /// allocation (register frame, lane-id tables, scratch buffers, frame
    /// pool). Dimensions whose group index is unchanged keep their
    /// global-id table; plans whose def-before-use scan passed keep the
    /// stale register frame. `counters`/`line_counters` are deliberately
    /// *not* cleared — they accumulate across every group this VM runs
    /// (launch counters are commutative sums, so per-VM accumulation is
    /// indistinguishable from per-group harvesting) and are taken once by
    /// the launch worker at the end of its claim loop.
    pub fn reset(&mut self, group: [usize; 3]) {
        let l = self.env.geom.local;
        for d in 0..3 {
            if self.group_id[d] != group[d] as u64 {
                self.group_id[d] = group[d] as u64;
                let g0 = (group[d] * l[d]) as u64;
                for (g, lid) in self.gid[d].iter_mut().zip(&self.lid[d]) {
                    *g = g0 + lid;
                }
            }
        }
        self.local_mem.fill(0);
        self.priv_mem.fill(0);
        self.stats = GroupStats::default();
        self.cur_line = 0;
        if self.kplan.zero_frame {
            self.regs.fill(0);
        }
        self.call_depth = 0;
        if let Some(sim) = &mut self.cache {
            sim.reset_group();
        }
    }

    /// Run the fissioned kernel for every lane of this group.
    pub fn run(&mut self) -> Result<()> {
        // bind parameters into the slot registers of every lane
        let nlanes = self.nlanes;
        for (i, arg) in self.env.args.iter().enumerate() {
            let v = match arg {
                BoundArg::Buffer { space, .. } => arg_pointer(i, *space),
                BoundArg::Scalar { bits, .. } => *bits,
            };
            self.regs[i * nlanes..(i + 1) * nlanes].fill(v);
        }
        let mut regs = std::mem::take(&mut self.regs);
        let kplan = self.kplan;
        let result = self.run_group_ops(&kplan.ops, &mut regs);
        self.regs = regs;
        self.flush_cache();
        self.flush_lines();
        result
    }

    /// Take the ordered stream of L1 misses this group produced; the
    /// launch layer replays it through the shared L2 tag array in linear
    /// group-id order (mirrors [`super::interp::GroupRun::take_l2_stream`]).
    pub fn take_l2_stream(&mut self) -> Vec<L2Record> {
        self.cache
            .as_mut()
            .map(|sim| std::mem::take(&mut sim.l2_stream))
            .unwrap_or_default()
    }

    /// Replay the buffered per-warp transaction stream through the L1 tag
    /// array in warp-index order — the canonical order both backends share.
    /// Hit/miss deltas land directly on the totals and the per-line map
    /// (each record carries its own source line, so the `acc` batching for
    /// `cur_line` does not apply).
    fn flush_cache(&mut self) {
        let Some(mut sim) = self.cache.take() else {
            return;
        };
        sim.flush(|dsl, hit| {
            if hit {
                self.stats.l1_hits += 1;
            } else {
                self.stats.l1_misses += 1;
            }
            if let Some(c) = &mut self.counters {
                let lc = self
                    .line_counters
                    .as_mut()
                    .expect("line_counters allocated together with counters")
                    .entry(dsl as usize)
                    .or_default();
                if hit {
                    c.l1_hits += 1;
                    lc.l1_hits += 1;
                } else {
                    c.l1_misses += 1;
                    lc.l1_misses += 1;
                }
            }
        });
        self.cache = Some(sim);
    }

    // ---- counter chokepoints -----------------------------------------------

    /// Merge the pending per-line deltas into the totals and the current
    /// line's entry. Every counter delta flows through `acc`, so per-line
    /// sums equal the group totals by construction — same invariant, same
    /// chokepoint shape as the reference `bump()`.
    fn flush_lines(&mut self) {
        if !self.acc_dirty {
            return;
        }
        let acc = std::mem::take(&mut self.acc);
        self.acc_dirty = false;
        if let Some(c) = &mut self.counters {
            c.merge(&acc);
            self.line_counters
                .as_mut()
                .expect("line_counters allocated together with counters")
                .entry(self.cur_line)
                .or_default()
                .merge(&acc);
        }
    }

    #[inline]
    fn set_line(&mut self, line: usize) {
        if line != self.cur_line {
            self.flush_lines();
            self.cur_line = line;
        }
    }

    /// Warp-granular instruction charge — the per-warp decomposition of the
    /// reference `charge()`: one warp's worth of cycles/instructions, lane
    /// slots covered equal to the (clipped) warp width. Empty warps charge
    /// nothing, exactly like a warp with no active lanes in the reference.
    #[inline]
    fn charge_warp(&mut self, cost: u32, class: InstrClass, exec: u64, ww: usize) {
        if exec == 0 {
            return;
        }
        self.stats.cycles += cost as u64;
        self.stats.instructions += 1;
        if self.collect {
            let covered = ww as u64;
            let active = exec.count_ones() as u64;
            self.acc.instr.add(class, 1);
            self.acc.lane_cycles_issued += cost as u64 * covered;
            self.acc.divergence_lost_cycles += cost as u64 * (covered - active);
            self.acc_dirty = true;
        }
    }

    #[inline]
    fn count_ops_warp(&mut self, exec: u64, is_float: bool, per_lane: u64) {
        if self.collect && exec != 0 {
            let n = exec.count_ones() as u64 * per_lane;
            self.acc.arith_ops += n;
            if is_float {
                self.acc.flops += n;
            }
            self.acc_dirty = true;
        }
    }

    /// The whole-group equivalent of one [`Self::charge_warp`] per warp
    /// with a full mask: `nwarps` instructions issue, every lane slot is
    /// both covered and active, so the divergence term is zero. The sums
    /// are byte-identical to the per-warp calls it replaces.
    #[inline]
    fn charge_group(&mut self, cost: u32, class: InstrClass) {
        let nwarps = self.nlanes.div_ceil(self.env.simd) as u64;
        self.stats.cycles += cost as u64 * nwarps;
        self.stats.instructions += nwarps;
        if self.collect {
            self.acc.instr.add(class, nwarps);
            self.acc.lane_cycles_issued += cost as u64 * self.nlanes as u64;
            self.acc_dirty = true;
        }
    }

    /// Whole-group [`Self::count_ops_warp`] under full masks.
    #[inline]
    fn count_ops_group(&mut self, is_float: bool, per_lane: u64) {
        if self.collect {
            let n = self.nlanes as u64 * per_lane;
            self.acc.arith_ops += n;
            if is_float {
                self.acc.flops += n;
            }
            self.acc_dirty = true;
        }
    }

    /// Per-warp global-memory coalescing — the single-warp body of the
    /// reference `charge_global` loop (identical segment math). `warp` is
    /// the group-relative warp index (lane offset / SIMD width), used to
    /// key the cache simulation's per-warp record buffers.
    #[allow(clippy::too_many_arguments)]
    fn charge_global_warp(
        &mut self,
        regs: &[u64],
        stride: usize,
        base: usize,
        addr: Reg,
        size: usize,
        exec: u64,
        ww: usize,
        warp: usize,
    ) {
        debug_assert_ne!(exec, 0);
        let seg = self.env.cost.segment_bytes as u64;
        let mut warp_segs = std::mem::take(&mut self.seg_buf);
        warp_segs.clear();
        let a0 = addr as usize * stride + base;
        let mut active = 0u64;
        // Device segment sizes are powers of two, so the per-lane segment
        // number is a shift, not a hardware division. Skipping a push that
        // equals the previous element drops only consecutive duplicates —
        // exactly what the `dedup` below would remove anyway.
        if seg.is_power_of_two() {
            let sh = seg.trailing_zeros();
            for k in 0..ww {
                if exec >> k & 1 != 0 {
                    active += 1;
                    let a = regs[a0 + k];
                    // an access may straddle two segments
                    let first = a >> sh;
                    let last = (a + size as u64 - 1) >> sh;
                    if warp_segs.last() != Some(&first) {
                        warp_segs.push(first);
                    }
                    if last != first {
                        warp_segs.push(last);
                    }
                }
            }
        } else {
            for k in 0..ww {
                if exec >> k & 1 != 0 {
                    active += 1;
                    let a = regs[a0 + k];
                    // an access may straddle two segments
                    warp_segs.push(a / seg);
                    let last = (a + size as u64 - 1) / seg;
                    if last != a / seg {
                        warp_segs.push(last);
                    }
                }
            }
        }
        let min_tx = (active * size as u64).div_ceil(seg).max(1);
        // warp access patterns are overwhelmingly ascending (lane k touches
        // element base+k); skip the sort when the segments already are
        if !warp_segs.is_sorted() {
            warp_segs.sort_unstable();
        }
        warp_segs.dedup();
        let tx = warp_segs.len() as u64;
        if let Some(sim) = &mut self.cache {
            let line = self.cur_line as u32;
            for (i, &s) in warp_segs.iter().enumerate() {
                sim.record(warp, s, line, i == 0);
            }
        }
        self.seg_buf = warp_segs;
        self.stats.mem_transactions += tx;
        if self.collect {
            self.acc.mem_transactions += tx;
            self.acc.mem_transactions_min += min_tx;
            self.acc.global_bytes += active * size as u64;
            self.acc_dirty = true;
        }
        self.charge_warp(self.env.cost.mem_issue, InstrClass::Mem, exec, ww);
    }

    /// Per-warp local-access + bank-conflict accounting (the single-warp
    /// body of the reference `charge_local_counters`).
    fn charge_local_warp(
        &mut self,
        regs: &[u64],
        stride: usize,
        base: usize,
        addr: Reg,
        exec: u64,
        ww: usize,
    ) {
        if !self.collect {
            return;
        }
        const BANKS: u64 = 32;
        const OFF_MASK: u64 = super::interp::OFF_MASK;
        let mut words = std::mem::take(&mut self.bank_buf);
        words.clear();
        for k in 0..ww {
            if exec >> k & 1 != 0 {
                let word = (regs[addr as usize * stride + base + k] & OFF_MASK) / 4;
                words.push((word % BANKS, word));
            }
        }
        let accesses = words.len() as u64;
        words.sort_unstable();
        words.dedup();
        let mut conflicts = 0u64;
        let mut i = 0;
        while i < words.len() {
            let bank = words[i].0;
            let mut in_bank = 0u64;
            while i < words.len() && words[i].0 == bank {
                in_bank += 1;
                i += 1;
            }
            conflicts += in_bank - 1;
        }
        self.bank_buf = words;
        self.acc.local_accesses += accesses;
        self.acc.bank_conflicts += conflicts;
        self.acc_dirty = true;
    }

    // ---- fast-path warp memory ---------------------------------------------

    /// Gather for a warp whose active lanes all dereference one global /
    /// constant buffer or the local arena — the overwhelmingly common case,
    /// which lets the tag dispatch, buffer lookup and signedness fixup run
    /// once per warp instead of once per lane. Returns `false` (nothing
    /// written) for mixed, private or malformed pointers; the caller's
    /// generic per-lane loop then owns both the semantics and the error
    /// reporting. Loaded bits, fault payloads and fault order are identical
    /// to [`load_lane_mem`].
    #[allow(clippy::too_many_arguments)]
    fn load_warp_fast(
        &self,
        regs: &mut [u64],
        stride: usize,
        base: usize,
        addr: Reg,
        dst: Reg,
        elem: ScalarType,
        exec: u64,
    ) -> Result<bool> {
        let a0 = addr as usize * stride + base;
        let d0 = dst as usize * stride + base;
        let proto = regs[a0 + exec.trailing_zeros() as usize] & !OFF_MASK;
        let mut e = exec;
        let mut mixed = 0u64;
        while e != 0 {
            let k = e.trailing_zeros() as usize;
            e &= e - 1;
            mixed |= (regs[a0 + k] & !OFF_MASK) ^ proto;
        }
        if mixed != 0 {
            return Ok(false);
        }
        let size = elem.size();
        // hoist the per-element canonicalisation (`load_lane_mem`'s
        // sign-extension of signed loads) out of the lane loop
        macro_rules! dispatch {
            ($go:ident) => {
                match elem {
                    ScalarType::I8 => $go!(|r| (r as i8) as i64 as u64),
                    ScalarType::I16 => $go!(|r| (r as i16) as i64 as u64),
                    ScalarType::I32 => $go!(|r| (r as i32) as i64 as u64),
                    ScalarType::F32 => $go!(|r| r & 0xFFFF_FFFF),
                    _ => $go!(|r| r),
                }
            };
        }
        match proto >> TAG_SHIFT {
            TAG_GLOBAL | TAG_CONST => {
                let Some(BoundArg::Buffer { buffer, .. }) =
                    self.env.args.get(((proto >> BASE_SHIFT) & 0xFFF) as usize)
                else {
                    return Ok(false);
                };
                // element sizes are powers of two: alignment is a mask
                // test and the bounds test cannot overflow (offsets are 48
                // bits) -- same verdicts as `Buffer::device_access_ok`
                let lim = buffer.len_bytes() as u64;
                let szm1 = size as u64 - 1;
                macro_rules! gather {
                    (|$raw:ident| $fix:expr) => {{
                        let mut e = exec;
                        while e != 0 {
                            let k = e.trailing_zeros() as usize;
                            e &= e - 1;
                            let off = regs[a0 + k] & OFF_MASK;
                            if off & szm1 != 0 || off + size as u64 > lim {
                                return Err(Error::MemoryFault {
                                    space: "global",
                                    offset: off,
                                    len: size as u64,
                                    detail: format!("buffer is {} bytes", buffer.len_bytes()),
                                });
                            }
                            let $raw = buffer.device_load(off, size);
                            regs[d0 + k] = $fix;
                        }
                    }};
                }
                dispatch!(gather);
            }
            TAG_LOCAL => {
                let lm = &self.local_mem;
                let szm1 = size - 1;
                macro_rules! gather {
                    (|$raw:ident| $fix:expr) => {{
                        let mut e = exec;
                        while e != 0 {
                            let k = e.trailing_zeros() as usize;
                            e &= e - 1;
                            let off = (regs[a0 + k] & OFF_MASK) as usize;
                            if off & szm1 != 0 || off + size > lm.len() {
                                return Err(Error::MemoryFault {
                                    space: "local",
                                    offset: off as u64,
                                    len: size as u64,
                                    detail: format!("local memory is {} bytes", lm.len()),
                                });
                            }
                            let $raw = load_le(&lm[off..off + size]);
                            regs[d0 + k] = $fix;
                        }
                    }};
                }
                dispatch!(gather);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Scatter counterpart of [`Self::load_warp_fast`]: one global buffer or
    /// the local arena for the whole warp. `__constant` stores fall back to
    /// the generic path, which reports the proper fault.
    #[allow(clippy::too_many_arguments)]
    fn store_warp_fast(
        &mut self,
        regs: &mut [u64],
        stride: usize,
        base: usize,
        addr: Reg,
        val: Reg,
        elem: ScalarType,
        exec: u64,
    ) -> Result<bool> {
        let a0 = addr as usize * stride + base;
        let v0 = val as usize * stride + base;
        let proto = regs[a0 + exec.trailing_zeros() as usize] & !OFF_MASK;
        let mut e = exec;
        let mut mixed = 0u64;
        while e != 0 {
            let k = e.trailing_zeros() as usize;
            e &= e - 1;
            mixed |= (regs[a0 + k] & !OFF_MASK) ^ proto;
        }
        if mixed != 0 {
            return Ok(false);
        }
        let size = elem.size();
        match proto >> TAG_SHIFT {
            TAG_GLOBAL => {
                let Some(BoundArg::Buffer { buffer, .. }) =
                    self.env.args.get(((proto >> BASE_SHIFT) & 0xFFF) as usize)
                else {
                    return Ok(false);
                };
                let lim = buffer.len_bytes() as u64;
                let szm1 = size as u64 - 1;
                let mut e = exec;
                while e != 0 {
                    let k = e.trailing_zeros() as usize;
                    e &= e - 1;
                    let off = regs[a0 + k] & OFF_MASK;
                    if off & szm1 != 0 || off + size as u64 > lim {
                        return Err(Error::MemoryFault {
                            space: "global",
                            offset: off,
                            len: size as u64,
                            detail: format!("buffer is {} bytes", buffer.len_bytes()),
                        });
                    }
                    buffer.device_store(off, size, regs[v0 + k]);
                }
            }
            TAG_LOCAL => {
                let lm = &mut self.local_mem;
                let szm1 = size - 1;
                let mut e = exec;
                while e != 0 {
                    let k = e.trailing_zeros() as usize;
                    e &= e - 1;
                    let off = (regs[a0 + k] & OFF_MASK) as usize;
                    if off & szm1 != 0 || off + size > lm.len() {
                        return Err(Error::MemoryFault {
                            space: "local",
                            offset: off as u64,
                            len: size as u64,
                            detail: format!("local memory is {} bytes", lm.len()),
                        });
                    }
                    store_le(&mut lm[off..off + size], regs[v0 + k]);
                }
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    // ---- fused group memory (op-outer straight-line regions) ---------------

    /// Group-wide fused gather for an op-outer global/constant load: one
    /// meta-uniformity pass, one validity pass and one size-specialised
    /// copy pass over all lanes, with the buffer lookup and signedness
    /// fixup hoisted out of every loop. Returns `false` with *nothing
    /// written* when any lane disagrees on the buffer, the pointer is
    /// malformed, the element is sub-word, or any access would fault — the
    /// caller's per-warp path then reproduces the exact charge/fault
    /// interleaving. On success the loaded bits equal `load_lane_mem`'s in
    /// every lane (ascending-lane order, same relaxed atomics).
    fn load_group_global_fast(
        &self,
        regs: &mut [u64],
        stride: usize,
        addr: Reg,
        dst: Reg,
        elem: ScalarType,
    ) -> bool {
        let size = elem.size();
        if size < 4 {
            return false;
        }
        let nlanes = self.nlanes;
        let a0 = addr as usize * stride;
        let d0 = dst as usize * stride;
        let proto = regs[a0] & !OFF_MASK;
        let mut mixed = 0u64;
        for k in 0..nlanes {
            mixed |= (regs[a0 + k] & !OFF_MASK) ^ proto;
        }
        let tag = proto >> TAG_SHIFT;
        if mixed != 0 || (tag != TAG_GLOBAL && tag != TAG_CONST) {
            return false;
        }
        let Some(BoundArg::Buffer { buffer, .. }) =
            self.env.args.get(((proto >> BASE_SHIFT) & 0xFFF) as usize)
        else {
            return false;
        };
        let lim = buffer.len_bytes() as u64;
        let szm1 = size as u64 - 1;
        let mut bad = false;
        for k in 0..nlanes {
            let off = regs[a0 + k] & OFF_MASK;
            // offsets are 48 bits, so `off + size` cannot overflow — the
            // same verdicts as `Buffer::device_access_ok`
            bad |= (off & szm1 != 0) | (off + size as u64 > lim);
        }
        if bad {
            return false;
        }
        let words = buffer.device_words();
        match (size, elem) {
            (4, ScalarType::I32) => {
                for k in 0..nlanes {
                    let wi = ((regs[a0 + k] & OFF_MASK) >> 2) as usize;
                    let r = words[wi].load(Ordering::Relaxed);
                    regs[d0 + k] = (r as i32) as i64 as u64;
                }
            }
            (4, _) => {
                for k in 0..nlanes {
                    let wi = ((regs[a0 + k] & OFF_MASK) >> 2) as usize;
                    regs[d0 + k] = words[wi].load(Ordering::Relaxed) as u64;
                }
            }
            (8, _) => {
                for k in 0..nlanes {
                    let wi = ((regs[a0 + k] & OFF_MASK) >> 2) as usize;
                    let lo = words[wi].load(Ordering::Relaxed) as u64;
                    let hi = words[wi + 1].load(Ordering::Relaxed) as u64;
                    regs[d0 + k] = lo | (hi << 32);
                }
            }
            _ => return false,
        }
        true
    }

    /// Scatter counterpart of [`Self::load_group_global_fast`] for global
    /// stores. Pre-validates every lane before writing anything, so a
    /// `false` return leaves the buffer untouched and the caller's per-warp
    /// path owns the fault; on success the ascending-lane write order
    /// matches the per-warp path (warps ascending, lanes ascending), so
    /// overlapping stores land identically.
    fn store_group_global_fast(
        &self,
        regs: &[u64],
        stride: usize,
        addr: Reg,
        val: Reg,
        elem: ScalarType,
    ) -> bool {
        let size = elem.size();
        if size < 4 {
            return false;
        }
        let nlanes = self.nlanes;
        let a0 = addr as usize * stride;
        let v0 = val as usize * stride;
        let proto = regs[a0] & !OFF_MASK;
        let mut mixed = 0u64;
        for k in 0..nlanes {
            mixed |= (regs[a0 + k] & !OFF_MASK) ^ proto;
        }
        if mixed != 0 || proto >> TAG_SHIFT != TAG_GLOBAL {
            return false;
        }
        let Some(BoundArg::Buffer { buffer, .. }) =
            self.env.args.get(((proto >> BASE_SHIFT) & 0xFFF) as usize)
        else {
            return false;
        };
        let lim = buffer.len_bytes() as u64;
        let szm1 = size as u64 - 1;
        let mut bad = false;
        for k in 0..nlanes {
            let off = regs[a0 + k] & OFF_MASK;
            bad |= (off & szm1 != 0) | (off + size as u64 > lim);
        }
        if bad {
            return false;
        }
        let words = buffer.device_words();
        match size {
            4 => {
                for k in 0..nlanes {
                    let wi = ((regs[a0 + k] & OFF_MASK) >> 2) as usize;
                    words[wi].store(regs[v0 + k] as u32, Ordering::Relaxed);
                }
            }
            8 => {
                for k in 0..nlanes {
                    let wi = ((regs[a0 + k] & OFF_MASK) >> 2) as usize;
                    let bits = regs[v0 + k];
                    words[wi].store(bits as u32, Ordering::Relaxed);
                    words[wi + 1].store((bits >> 32) as u32, Ordering::Relaxed);
                }
            }
            _ => return false,
        }
        true
    }

    // ---- group-level structure ---------------------------------------------

    fn run_group_ops(&mut self, ops: &[GroupOp], regs: &mut Vec<u64>) -> Result<()> {
        for op in ops {
            match op {
                GroupOp::Region(code) => self.run_region(code, regs)?,
                GroupOp::Barrier { line } => {
                    // by construction every lane reaches the barrier: the
                    // preceding regions ran every warp to completion and
                    // barrier kernels contain no `return`
                    //
                    // the barrier is also the canonical cache replay point:
                    // both backends flush the buffered per-warp transaction
                    // stream here, so the tag-array probe order is identical
                    self.flush_cache();
                    self.set_line(*line as usize);
                    self.stats.barriers += 1;
                    self.stats.cycles += self.env.cost.barrier as u64;
                    self.stats.instructions += 1;
                    if self.collect {
                        self.acc.barriers += 1;
                        self.acc.barrier_stall_cycles += self.env.cost.barrier as u64;
                        self.acc.instr.add(InstrClass::Control, 1);
                        self.acc_dirty = true;
                    }
                }
                GroupOp::UniformLoop {
                    cond,
                    cond_reg,
                    body,
                    step,
                    check_first,
                } => {
                    let mut taken = if *check_first {
                        self.uniform_cond(cond, *cond_reg, regs)?
                    } else {
                        true
                    };
                    while taken {
                        self.run_group_ops(body, regs)?;
                        self.run_region(step, regs)?;
                        taken = self.uniform_cond(cond, *cond_reg, regs)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluate a barrier-loop condition for every warp (full reference
    /// charges) and take the group decision, verifying uniformity.
    fn uniform_cond(&mut self, cond: &Code, cond_reg: Reg, regs: &mut [u64]) -> Result<bool> {
        self.run_region(cond, regs)?;
        let base = cond_reg as usize * self.nlanes;
        let taken = regs[base] != 0;
        let agreeing = regs[base..base + self.nlanes]
            .iter()
            .filter(|&&v| (v != 0) == taken)
            .count();
        if agreeing != self.nlanes {
            // lanes that keep looping hit the barrier without the rest —
            // the same divergence the reference traps at the barrier itself
            let looping = regs[base..base + self.nlanes]
                .iter()
                .filter(|&&v| v != 0)
                .count();
            return Err(Error::BarrierDivergence(format!(
                "barrier reached by {}/{} work-items of the group",
                looping, self.nlanes
            )));
        }
        Ok(taken)
    }

    /// Run one barrier-free bytecode chunk for every lane of the group.
    /// Straight-line chunks take the lock-step fast path; anything with
    /// control flow runs warp-outer through the general interpreter.
    fn run_region(&mut self, code: &[Op], regs: &mut [u64]) -> Result<()> {
        if code_is_straight(code) {
            return self.run_code_group(code, regs);
        }
        let simd = self.env.simd;
        let nwarps = self.nlanes.div_ceil(simd);
        for w in 0..nwarps {
            let lo = w * simd;
            let ww = ((w + 1) * simd).min(self.nlanes) - lo;
            let mut ws = WarpState {
                exec: warp_full(ww),
                ret: 0,
                lo,
                ww,
                if_stack: Vec::new(),
                loop_stack: Vec::new(),
            };
            self.run_code(code, regs, self.nlanes, lo, &mut ws)?;
        }
        Ok(())
    }

    /// Execute a straight-line region lock-step: each op is decoded once
    /// for the whole group and its lane loop spans every warp at once —
    /// the reference interpreter's statement-outer order. Only regions
    /// accepted by [`code_is_straight`] come here: with no control flow
    /// every exec mask stays full, so this produces exactly the values,
    /// counter sums, and first fault of the warp-outer path while the op
    /// decode and charge bookkeeping amortize over the group instead of
    /// repeating per warp. Memory ops still walk warp by warp because
    /// coalescing and bank-conflict charges are per-warp quantities.
    fn run_code_group(&mut self, code: &[Op], regs: &mut [u64]) -> Result<()> {
        let nlanes = self.nlanes;
        let stride = nlanes;
        let simd = self.env.simd;
        let nwarps = nlanes.div_ceil(simd);
        for op in code {
            match op {
                Op::SetLine(line) => self.set_line(*line as usize),
                Op::ConstFill { dst, bits } => {
                    let d = *dst as usize * stride;
                    regs[d..d + nlanes].fill(*bits);
                }
                Op::CopyMasked { dst, src } | Op::CopyFull { dst, src } => {
                    let so = *src as usize * stride;
                    regs.copy_within(so..so + nlanes, *dst as usize * stride);
                }
                Op::Geom { dst, dim, b } => {
                    use Builtin::*;
                    self.charge_group(self.env.cost.int_alu, InstrClass::Int);
                    if *b == GetWorkDim {
                        let v = self.env.geom.work_dim as u64;
                        let d = *dst as usize * stride;
                        regs[d..d + nlanes].fill(v);
                    } else {
                        let d0 = *dst as usize * stride;
                        let m0 = *dim as usize * stride;
                        macro_rules! per_dim {
                            (|$d:ident, $k:ident| $e:expr) => {
                                for k in 0..nlanes {
                                    let $d = (regs[m0 + k] as u32).min(2) as usize;
                                    let $k = k;
                                    regs[d0 + k] = $e;
                                }
                            };
                        }
                        match b {
                            GetGlobalId => per_dim!(|d, k| self.gid[d][k]),
                            GetLocalId => per_dim!(|d, k| self.lid[d][k]),
                            GetGroupId => per_dim!(|d, _k| self.group_id[d]),
                            GetGlobalSize => per_dim!(|d, _k| self.env.geom.global[d] as u64),
                            GetLocalSize => per_dim!(|d, _k| self.env.geom.local[d] as u64),
                            GetNumGroups => {
                                let ng = self.env.geom.num_groups();
                                per_dim!(|d, _k| ng[d] as u64)
                            }
                            _ => unreachable!(),
                        }
                    }
                }
                Op::PtrAdd {
                    dst,
                    ptr,
                    off,
                    elem_size,
                } => {
                    self.charge_group(self.env.cost.int_alu, InstrClass::Int);
                    let d0 = *dst as usize * stride;
                    let p0 = *ptr as usize * stride;
                    let o0 = *off as usize * stride;
                    let es = *elem_size as usize;
                    for k in 0..nlanes {
                        regs[d0 + k] = ptr_add(regs[p0 + k], regs[o0 + k] as i64, es);
                    }
                }
                Op::Load {
                    dst,
                    addr,
                    elem,
                    space,
                } => {
                    // data first, charges second: the two touch disjoint
                    // state (`dst != addr` keeps the address registers the
                    // coalescing charges read intact), and a `false` here
                    // has written nothing, so the per-warp path below keeps
                    // the exact charge/fault interleaving of the reference
                    let fused = matches!(space, AddrSpace::Global | AddrSpace::Constant)
                        && dst != addr
                        && self.load_group_global_fast(regs, stride, *addr, *dst, *elem);
                    for w in 0..nwarps {
                        let lo = w * simd;
                        let ww = ((w + 1) * simd).min(nlanes) - lo;
                        let exec = warp_full(ww);
                        match space {
                            AddrSpace::Global | AddrSpace::Constant => {
                                self.charge_global_warp(
                                    regs,
                                    stride,
                                    lo,
                                    *addr,
                                    elem.size(),
                                    exec,
                                    ww,
                                    w,
                                );
                            }
                            AddrSpace::Local => {
                                self.charge_warp(
                                    self.env.cost.local_access,
                                    InstrClass::Local,
                                    exec,
                                    ww,
                                );
                                self.stats.local_accesses += exec.count_ones() as u64;
                                self.charge_local_warp(regs, stride, lo, *addr, exec, ww);
                            }
                            AddrSpace::Private => {
                                self.charge_warp(
                                    self.env.cost.int_alu,
                                    InstrClass::Other,
                                    exec,
                                    ww,
                                );
                            }
                        }
                        if fused {
                            continue;
                        }
                        let fast = *space != AddrSpace::Private
                            && self.load_warp_fast(regs, stride, lo, *addr, *dst, *elem, exec)?;
                        if !fast {
                            for k in 0..ww {
                                let mut ptr = regs[*addr as usize * stride + lo + k];
                                if *space == AddrSpace::Private {
                                    ptr = lane_priv(ptr, lo + k, self.priv_stride);
                                }
                                let v = load_lane_mem(
                                    self.env.args,
                                    &self.local_mem,
                                    &self.priv_mem,
                                    ptr,
                                    *elem,
                                )?;
                                regs[*dst as usize * stride + lo + k] = v;
                            }
                        }
                    }
                }
                Op::Store {
                    addr,
                    val,
                    elem,
                    space,
                } => {
                    // pre-validated: a `false` has stored nothing, so the
                    // per-warp path below owns the charge/fault interleaving
                    let fused = *space == AddrSpace::Global
                        && self.store_group_global_fast(regs, stride, *addr, *val, *elem);
                    for w in 0..nwarps {
                        let lo = w * simd;
                        let ww = ((w + 1) * simd).min(nlanes) - lo;
                        let exec = warp_full(ww);
                        match space {
                            AddrSpace::Global | AddrSpace::Constant => {
                                self.charge_global_warp(
                                    regs,
                                    stride,
                                    lo,
                                    *addr,
                                    elem.size(),
                                    exec,
                                    ww,
                                    w,
                                );
                            }
                            AddrSpace::Local => {
                                self.charge_warp(
                                    self.env.cost.local_access,
                                    InstrClass::Local,
                                    exec,
                                    ww,
                                );
                                self.stats.local_accesses += exec.count_ones() as u64;
                                self.charge_local_warp(regs, stride, lo, *addr, exec, ww);
                            }
                            AddrSpace::Private => {
                                self.charge_warp(
                                    self.env.cost.int_alu,
                                    InstrClass::Other,
                                    exec,
                                    ww,
                                );
                            }
                        }
                        if fused {
                            continue;
                        }
                        let fast = *space != AddrSpace::Private
                            && self.store_warp_fast(regs, stride, lo, *addr, *val, *elem, exec)?;
                        if !fast {
                            for k in 0..ww {
                                let mut ptr = regs[*addr as usize * stride + lo + k];
                                if *space == AddrSpace::Private {
                                    ptr = lane_priv(ptr, lo + k, self.priv_stride);
                                }
                                let v = regs[*val as usize * stride + lo + k];
                                store_lane_mem(
                                    self.env.args,
                                    &mut self.local_mem,
                                    &mut self.priv_mem,
                                    ptr,
                                    *elem,
                                    v,
                                )?;
                            }
                        }
                    }
                }
                Op::Bin { dst, l, r, op, ty } => {
                    let class = if ty.is_float() {
                        InstrClass::Float
                    } else {
                        InstrClass::Int
                    };
                    self.charge_group(bin_cost(&self.env.cost, *op, *ty), class);
                    self.count_ops_group(ty.is_float(), 1);
                    if matches!(op, BOp::Div | BOp::Rem) {
                        let d0 = *dst as usize * stride;
                        let l0 = *l as usize * stride;
                        let r0 = *r as usize * stride;
                        for k in 0..nlanes {
                            regs[d0 + k] = ops::bin_op(*op, *ty, regs[l0 + k], regs[r0 + k])?;
                        }
                    } else {
                        bin_fill(
                            *op,
                            *ty,
                            regs,
                            *dst as usize * stride,
                            *l as usize * stride,
                            *r as usize * stride,
                            nlanes,
                        );
                    }
                }
                Op::Cmp { dst, l, r, op, ty } => {
                    self.charge_group(self.env.cost.int_alu, InstrClass::Int);
                    cmp_fill(
                        *op,
                        *ty,
                        regs,
                        *dst as usize * stride,
                        *l as usize * stride,
                        *r as usize * stride,
                        nlanes,
                    );
                }
                Op::Un { dst, a, op, ty } => {
                    let class = if ty.is_float() {
                        InstrClass::Float
                    } else {
                        InstrClass::Int
                    };
                    self.charge_group(self.env.cost.int_alu, class);
                    self.count_ops_group(ty.is_float(), 1);
                    let d0 = *dst as usize * stride;
                    let a0 = *a as usize * stride;
                    for k in 0..nlanes {
                        regs[d0 + k] = ops::un_op(*op, *ty, regs[a0 + k]);
                    }
                }
                Op::Cast { dst, a, from, to } => {
                    self.charge_group(self.env.cost.cast, InstrClass::Other);
                    cast_fill(
                        *from,
                        *to,
                        regs,
                        *dst as usize * stride,
                        *a as usize * stride,
                        nlanes,
                    );
                }
                Op::Math1 { dst, a, b, ty } => {
                    self.charge_group(math_cost(&self.env.cost, *b, *ty), math_class(*b));
                    self.count_ops_group(ty.is_float(), 1);
                    let d0 = *dst as usize * stride;
                    let a0 = *a as usize * stride;
                    if *b == Builtin::AbsI {
                        for k in 0..nlanes {
                            let v = regs[a0 + k];
                            regs[d0 + k] = if ty.is_signed() {
                                ops::cast_bits(
                                    (v as i64).wrapping_abs() as u64,
                                    ScalarType::I64,
                                    *ty,
                                )
                            } else {
                                v
                            };
                        }
                    } else {
                        let f = math1_fn(*b);
                        for k in 0..nlanes {
                            regs[d0 + k] = ops::math1(f, *ty, regs[a0 + k]);
                        }
                    }
                }
                Op::Math2 { dst, a, c, b, ty } => {
                    self.charge_group(math_cost(&self.env.cost, *b, *ty), math_class(*b));
                    self.count_ops_group(ty.is_float(), 1);
                    let d0 = *dst as usize * stride;
                    let a0 = *a as usize * stride;
                    let c0 = *c as usize * stride;
                    if matches!(b, Builtin::MaxI | Builtin::MinI) {
                        macro_rules! minmax {
                            (|$x:ident, $y:ident| $take_a:expr) => {
                                for k in 0..nlanes {
                                    let av = regs[a0 + k];
                                    let cv = regs[c0 + k];
                                    let $x = av;
                                    let $y = cv;
                                    regs[d0 + k] = if $take_a { av } else { cv };
                                }
                            };
                        }
                        match (*b, ty.is_signed()) {
                            (Builtin::MaxI, true) => minmax!(|x, y| (x as i64) >= (y as i64)),
                            (Builtin::MaxI, false) => minmax!(|x, y| x >= y),
                            (_, true) => minmax!(|x, y| (x as i64) <= (y as i64)),
                            (_, false) => minmax!(|x, y| x <= y),
                        }
                    } else {
                        let f = math2_fn(*b);
                        for k in 0..nlanes {
                            regs[d0 + k] = ops::math2(&f, *ty, regs[a0 + k], regs[c0 + k]);
                        }
                    }
                }
                Op::Math3 {
                    dst,
                    x,
                    y,
                    z,
                    b,
                    ty,
                } => {
                    self.charge_group(math_cost(&self.env.cost, *b, *ty), math_class(*b));
                    // fused multiply-add: two flops per lane
                    self.count_ops_group(ty.is_float(), 2);
                    let d0 = *dst as usize * stride;
                    let x0 = *x as usize * stride;
                    let y0 = *y as usize * stride;
                    let z0 = *z as usize * stride;
                    for k in 0..nlanes {
                        regs[d0 + k] = ops::math3(
                            |a, b, c| a * b + c,
                            *ty,
                            regs[x0 + k],
                            regs[y0 + k],
                            regs[z0 + k],
                        );
                    }
                }
                Op::SelMerge { dst, cond, t, f } => {
                    let d0 = *dst as usize * stride;
                    let c0 = *cond as usize * stride;
                    let t0 = *t as usize * stride;
                    let f0 = *f as usize * stride;
                    for k in 0..nlanes {
                        regs[d0 + k] = if regs[c0 + k] != 0 {
                            regs[t0 + k]
                        } else {
                            regs[f0 + k]
                        };
                    }
                    self.charge_group(self.env.cost.int_alu, InstrClass::Int);
                }
                Op::ChargeBranch => self.charge_group(1, InstrClass::Control),
                _ => unreachable!("code_is_straight admits only straight-line ops"),
            }
        }
        Ok(())
    }

    // ---- frame pool ---------------------------------------------------------

    fn take_frame(&mut self, len: usize) -> Vec<u64> {
        match self.frame_pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, 0);
                v
            }
            None => vec![0u64; len],
        }
    }

    fn give_frame(&mut self, v: Vec<u64>) {
        if self.frame_pool.len() < MAX_CALL_DEPTH {
            self.frame_pool.push(v);
        }
    }

    // ---- bytecode interpreter ----------------------------------------------

    /// Execute one chunk for one warp. `stride`/`base` locate register
    /// lanes: register `r`, lane `k` lives at `regs[r * stride + base + k]`
    /// (the kernel frame is register-major over the whole group; callee
    /// frames are register-major over one warp).
    fn run_code(
        &mut self,
        code: &[Op],
        regs: &mut [u64],
        stride: usize,
        base: usize,
        w: &mut WarpState,
    ) -> Result<()> {
        let ww = w.ww;
        let mut pc = 0usize;
        macro_rules! lane {
            ($r:expr, $k:expr) => {
                regs[$r as usize * stride + base + $k]
            };
        }
        while pc < code.len() {
            match &code[pc] {
                Op::SetLine(line) => self.set_line(*line as usize),
                Op::ConstFill { dst, bits } => {
                    let d = *dst as usize * stride + base;
                    regs[d..d + ww].fill(*bits);
                }
                Op::CopyMasked { dst, src } => {
                    let mut e = w.exec;
                    while e != 0 {
                        let k = e.trailing_zeros() as usize;
                        e &= e - 1;
                        lane!(*dst, k) = lane!(*src, k);
                    }
                }
                Op::CopyFull { dst, src } => {
                    let s = *src as usize * stride + base;
                    regs.copy_within(s..s + ww, *dst as usize * stride + base);
                }
                Op::Geom { dst, dim, b } => {
                    use Builtin::*;
                    self.charge_warp(self.env.cost.int_alu, InstrClass::Int, w.exec, ww);
                    if *b == GetWorkDim {
                        let v = self.env.geom.work_dim as u64;
                        let d = *dst as usize * stride + base;
                        regs[d..d + ww].fill(v);
                    } else {
                        let d0 = *dst as usize * stride + base;
                        let m0 = *dim as usize * stride + base;
                        macro_rules! per_dim {
                            (|$d:ident, $k:ident| $e:expr) => {
                                for k in 0..ww {
                                    let $d = (regs[m0 + k] as u32).min(2) as usize;
                                    let $k = k;
                                    regs[d0 + k] = $e;
                                }
                            };
                        }
                        match b {
                            GetGlobalId => per_dim!(|d, k| self.gid[d][w.lo + k]),
                            GetLocalId => per_dim!(|d, k| self.lid[d][w.lo + k]),
                            GetGroupId => per_dim!(|d, _k| self.group_id[d]),
                            GetGlobalSize => per_dim!(|d, _k| self.env.geom.global[d] as u64),
                            GetLocalSize => per_dim!(|d, _k| self.env.geom.local[d] as u64),
                            GetNumGroups => {
                                let ng = self.env.geom.num_groups();
                                per_dim!(|d, _k| ng[d] as u64)
                            }
                            _ => unreachable!(),
                        }
                    }
                }
                Op::PtrAdd {
                    dst,
                    ptr,
                    off,
                    elem_size,
                } => {
                    self.charge_warp(self.env.cost.int_alu, InstrClass::Int, w.exec, ww);
                    let d0 = *dst as usize * stride + base;
                    let p0 = *ptr as usize * stride + base;
                    let o0 = *off as usize * stride + base;
                    let es = *elem_size as usize;
                    for k in 0..ww {
                        regs[d0 + k] = ptr_add(regs[p0 + k], regs[o0 + k] as i64, es);
                    }
                }
                Op::Load {
                    dst,
                    addr,
                    elem,
                    space,
                } => {
                    if w.exec != 0 {
                        match space {
                            AddrSpace::Global | AddrSpace::Constant => {
                                // `w.lo` is the true lane offset even inside
                                // callee frames (Op::Call preserves it), so it
                                // recovers the group-relative warp index
                                self.charge_global_warp(
                                    regs,
                                    stride,
                                    base,
                                    *addr,
                                    elem.size(),
                                    w.exec,
                                    ww,
                                    w.lo / self.env.simd,
                                );
                            }
                            AddrSpace::Local => {
                                self.charge_warp(
                                    self.env.cost.local_access,
                                    InstrClass::Local,
                                    w.exec,
                                    ww,
                                );
                                self.stats.local_accesses += w.exec.count_ones() as u64;
                                self.charge_local_warp(regs, stride, base, *addr, w.exec, ww);
                            }
                            AddrSpace::Private => {
                                self.charge_warp(
                                    self.env.cost.int_alu,
                                    InstrClass::Other,
                                    w.exec,
                                    ww,
                                );
                            }
                        }
                        let fast = *space != AddrSpace::Private
                            && self
                                .load_warp_fast(regs, stride, base, *addr, *dst, *elem, w.exec)?;
                        if !fast {
                            let mut e = w.exec;
                            while e != 0 {
                                let k = e.trailing_zeros() as usize;
                                e &= e - 1;
                                let mut ptr = lane!(*addr, k);
                                if *space == AddrSpace::Private {
                                    ptr = lane_priv(ptr, w.lo + k, self.priv_stride);
                                }
                                let v = load_lane_mem(
                                    self.env.args,
                                    &self.local_mem,
                                    &self.priv_mem,
                                    ptr,
                                    *elem,
                                )?;
                                lane!(*dst, k) = v;
                            }
                        }
                    }
                }
                Op::Store {
                    addr,
                    val,
                    elem,
                    space,
                } => {
                    if w.exec != 0 {
                        match space {
                            AddrSpace::Global | AddrSpace::Constant => {
                                self.charge_global_warp(
                                    regs,
                                    stride,
                                    base,
                                    *addr,
                                    elem.size(),
                                    w.exec,
                                    ww,
                                    w.lo / self.env.simd,
                                );
                            }
                            AddrSpace::Local => {
                                self.charge_warp(
                                    self.env.cost.local_access,
                                    InstrClass::Local,
                                    w.exec,
                                    ww,
                                );
                                self.stats.local_accesses += w.exec.count_ones() as u64;
                                self.charge_local_warp(regs, stride, base, *addr, w.exec, ww);
                            }
                            AddrSpace::Private => {
                                self.charge_warp(
                                    self.env.cost.int_alu,
                                    InstrClass::Other,
                                    w.exec,
                                    ww,
                                );
                            }
                        }
                        let fast = *space != AddrSpace::Private
                            && self
                                .store_warp_fast(regs, stride, base, *addr, *val, *elem, w.exec)?;
                        if !fast {
                            let mut e = w.exec;
                            while e != 0 {
                                let k = e.trailing_zeros() as usize;
                                e &= e - 1;
                                let mut ptr = lane!(*addr, k);
                                if *space == AddrSpace::Private {
                                    ptr = lane_priv(ptr, w.lo + k, self.priv_stride);
                                }
                                let v = lane!(*val, k);
                                store_lane_mem(
                                    self.env.args,
                                    &mut self.local_mem,
                                    &mut self.priv_mem,
                                    ptr,
                                    *elem,
                                    v,
                                )?;
                            }
                        }
                    }
                }
                Op::Bin { dst, l, r, op, ty } => {
                    let class = if ty.is_float() {
                        InstrClass::Float
                    } else {
                        InstrClass::Int
                    };
                    self.charge_warp(bin_cost(&self.env.cost, *op, *ty), class, w.exec, ww);
                    self.count_ops_warp(w.exec, ty.is_float(), 1);
                    if matches!(op, BOp::Div | BOp::Rem) {
                        // may trap: evaluate only live lanes
                        let mut e = w.exec;
                        while e != 0 {
                            let k = e.trailing_zeros() as usize;
                            e &= e - 1;
                            lane!(*dst, k) = ops::bin_op(*op, *ty, lane!(*l, k), lane!(*r, k))?;
                        }
                    } else {
                        bin_fill(
                            *op,
                            *ty,
                            regs,
                            *dst as usize * stride + base,
                            *l as usize * stride + base,
                            *r as usize * stride + base,
                            ww,
                        );
                    }
                }
                Op::Cmp { dst, l, r, op, ty } => {
                    self.charge_warp(self.env.cost.int_alu, InstrClass::Int, w.exec, ww);
                    cmp_fill(
                        *op,
                        *ty,
                        regs,
                        *dst as usize * stride + base,
                        *l as usize * stride + base,
                        *r as usize * stride + base,
                        ww,
                    );
                }
                Op::Un { dst, a, op, ty } => {
                    let class = if ty.is_float() {
                        InstrClass::Float
                    } else {
                        InstrClass::Int
                    };
                    self.charge_warp(self.env.cost.int_alu, class, w.exec, ww);
                    self.count_ops_warp(w.exec, ty.is_float(), 1);
                    for k in 0..ww {
                        lane!(*dst, k) = ops::un_op(*op, *ty, lane!(*a, k));
                    }
                }
                Op::Cast { dst, a, from, to } => {
                    self.charge_warp(self.env.cost.cast, InstrClass::Other, w.exec, ww);
                    cast_fill(
                        *from,
                        *to,
                        regs,
                        *dst as usize * stride + base,
                        *a as usize * stride + base,
                        ww,
                    );
                }
                Op::Math1 { dst, a, b, ty } => {
                    self.charge_warp(
                        math_cost(&self.env.cost, *b, *ty),
                        math_class(*b),
                        w.exec,
                        ww,
                    );
                    self.count_ops_warp(w.exec, ty.is_float(), 1);
                    if *b == Builtin::AbsI {
                        for k in 0..ww {
                            let v = lane!(*a, k);
                            lane!(*dst, k) = if ty.is_signed() {
                                ops::cast_bits(
                                    (v as i64).wrapping_abs() as u64,
                                    ScalarType::I64,
                                    *ty,
                                )
                            } else {
                                v
                            };
                        }
                    } else {
                        let f = math1_fn(*b);
                        for k in 0..ww {
                            lane!(*dst, k) = ops::math1(f, *ty, lane!(*a, k));
                        }
                    }
                }
                Op::Math2 { dst, a, c, b, ty } => {
                    self.charge_warp(
                        math_cost(&self.env.cost, *b, *ty),
                        math_class(*b),
                        w.exec,
                        ww,
                    );
                    self.count_ops_warp(w.exec, ty.is_float(), 1);
                    if matches!(b, Builtin::MaxI | Builtin::MinI) {
                        let d0 = *dst as usize * stride + base;
                        let a0 = *a as usize * stride + base;
                        let c0 = *c as usize * stride + base;
                        macro_rules! minmax {
                            (|$x:ident, $y:ident| $take_a:expr) => {
                                for k in 0..ww {
                                    let av = regs[a0 + k];
                                    let cv = regs[c0 + k];
                                    let $x = av;
                                    let $y = cv;
                                    regs[d0 + k] = if $take_a { av } else { cv };
                                }
                            };
                        }
                        match (*b, ty.is_signed()) {
                            (Builtin::MaxI, true) => minmax!(|x, y| (x as i64) >= (y as i64)),
                            (Builtin::MaxI, false) => minmax!(|x, y| x >= y),
                            (_, true) => minmax!(|x, y| (x as i64) <= (y as i64)),
                            (_, false) => minmax!(|x, y| x <= y),
                        }
                    } else {
                        let f = math2_fn(*b);
                        for k in 0..ww {
                            lane!(*dst, k) = ops::math2(&f, *ty, lane!(*a, k), lane!(*c, k));
                        }
                    }
                }
                Op::Math3 {
                    dst,
                    x,
                    y,
                    z,
                    b,
                    ty,
                } => {
                    self.charge_warp(
                        math_cost(&self.env.cost, *b, *ty),
                        math_class(*b),
                        w.exec,
                        ww,
                    );
                    // fused multiply-add: two flops per lane
                    self.count_ops_warp(w.exec, ty.is_float(), 2);
                    for k in 0..ww {
                        lane!(*dst, k) = ops::math3(
                            |a, b, c| a * b + c,
                            *ty,
                            lane!(*x, k),
                            lane!(*y, k),
                            lane!(*z, k),
                        );
                    }
                }
                Op::SelMerge { dst, cond, t, f } => {
                    let d0 = *dst as usize * stride + base;
                    let c0 = *cond as usize * stride + base;
                    let t0 = *t as usize * stride + base;
                    let f0 = *f as usize * stride + base;
                    for k in 0..ww {
                        regs[d0 + k] = if regs[c0 + k] != 0 {
                            regs[t0 + k]
                        } else {
                            regs[f0 + k]
                        };
                    }
                    self.charge_warp(self.env.cost.int_alu, InstrClass::Int, w.exec, ww);
                }
                Op::ChargeBranch => self.charge_warp(1, InstrClass::Control, w.exec, ww),
                Op::PushIf { cond, invert } => {
                    let mut truthy = 0u64;
                    let mut e = w.exec;
                    while e != 0 {
                        let k = e.trailing_zeros() as usize;
                        e &= e - 1;
                        if lane!(*cond, k) != 0 {
                            truthy |= 1 << k;
                        }
                    }
                    let (now, later) = if *invert {
                        (w.exec & !truthy, truthy)
                    } else {
                        (truthy, w.exec & !truthy)
                    };
                    w.if_stack.push(IfFrame {
                        other: later,
                        done: 0,
                    });
                    w.exec = now;
                }
                Op::ElseSwap => {
                    let frame = w.if_stack.last_mut().expect("balanced if stack");
                    frame.done |= w.exec;
                    w.exec = frame.other;
                    frame.other = 0;
                }
                Op::PopIf => {
                    let frame = w.if_stack.pop().expect("balanced if stack");
                    w.exec |= frame.done | frame.other;
                }
                Op::PushLoop => w.loop_stack.push(LoopFrame {
                    entry: w.exec,
                    cont: 0,
                }),
                Op::LoopIterEnd => {
                    let frame = w.loop_stack.last_mut().expect("balanced loop stack");
                    w.exec |= frame.cont;
                    frame.cont = 0;
                    w.exec &= !w.ret;
                }
                Op::PopLoop => {
                    let frame = w.loop_stack.pop().expect("balanced loop stack");
                    w.exec = frame.entry & !w.ret;
                }
                Op::AndTruthy { cond } => {
                    let mut e = w.exec;
                    while e != 0 {
                        let k = e.trailing_zeros() as usize;
                        e &= e - 1;
                        if lane!(*cond, k) == 0 {
                            w.exec &= !(1 << k);
                        }
                    }
                }
                Op::AndNotRet => w.exec &= !w.ret,
                Op::Break => w.exec = 0,
                Op::Continue => {
                    let frame = w.loop_stack.last_mut().expect("continue inside a loop");
                    frame.cont |= w.exec;
                    w.exec = 0;
                }
                Op::Return => {
                    w.ret |= w.exec;
                    w.exec = 0;
                }
                Op::Call {
                    dst,
                    func,
                    abase,
                    nargs,
                } => {
                    if w.exec != 0 {
                        if self.call_depth >= MAX_CALL_DEPTH {
                            return Err(Error::InvalidOperation(
                                "device call stack overflow (recursion is not supported in \
                                 OpenCL C)"
                                    .into(),
                            ));
                        }
                        let fplan = self.plan.funcs[*func as usize]
                            .as_ref()
                            .expect("planner compiled every reachable helper")
                            .clone();
                        let mut frame = self.take_frame(fplan.nregs * ww);
                        for i in 0..*nargs as usize {
                            let src = (*abase as usize + i) * stride + base;
                            frame[i * ww..(i + 1) * ww].copy_from_slice(&regs[src..src + ww]);
                        }
                        self.charge_warp(2, InstrClass::Control, w.exec, ww); // call overhead
                        let mut cw = WarpState {
                            exec: w.exec,
                            ret: 0,
                            lo: w.lo,
                            ww,
                            if_stack: Vec::new(),
                            loop_stack: Vec::new(),
                        };
                        self.call_depth += 1;
                        // callee statements attribute to their own lines;
                        // charges after the call fall back to the call site
                        let saved_line = self.cur_line;
                        let result = self.run_code(&fplan.code, &mut frame, ww, 0, &mut cw);
                        self.set_line(saved_line);
                        self.call_depth -= 1;
                        result?;
                        // copy the callee's return register back as a whole
                        // chunk (masked-off lanes carry unobservable
                        // garbage, like the reference's full ret_val copy)
                        let src = fplan.ret_reg as usize * ww;
                        let d = *dst as usize * stride + base;
                        regs[d..d + ww].copy_from_slice(&frame[src..src + ww]);
                        self.give_frame(frame);
                    }
                }
                Op::Jmp(t) => {
                    pc = *t as usize;
                    continue;
                }
                Op::JmpIfEmpty(t) => {
                    if w.exec == 0 {
                        pc = *t as usize;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, MemAccess};
    use crate::clc::opt::{self, OptLevel};
    use crate::clc::{parser, sema};
    use crate::device::DeviceProfile;
    use crate::exec::interp::GroupRun;
    use crate::exec::launch::Geometry;
    use crate::timing::{CostModel, GroupStats};

    fn compile(src: &str, level: OptLevel) -> Module {
        let tu = parser::parse(src).expect("parse");
        let mut m = sema::analyze(&tu).expect("sema");
        opt::optimize(&mut m, level);
        m
    }

    /// Argument template, re-materialised per backend so the two runs never
    /// share buffer storage (Buffer clones alias the same bytes).
    enum ArgSpec {
        F32(Vec<f32>),
        I32(Vec<i32>),
        ScalarI32(i32),
    }

    fn bind(spec: &[ArgSpec]) -> Vec<BoundArg> {
        spec.iter()
            .map(|s| match s {
                ArgSpec::F32(v) => {
                    let buf = Buffer::new(v.len() * 4, MemAccess::ReadWrite);
                    let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
                    buf.write_bytes(0, &bytes).unwrap();
                    BoundArg::Buffer {
                        buffer: buf,
                        space: AddrSpace::Global,
                    }
                }
                ArgSpec::I32(v) => {
                    let buf = Buffer::new(v.len() * 4, MemAccess::ReadWrite);
                    let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
                    buf.write_bytes(0, &bytes).unwrap();
                    BoundArg::Buffer {
                        buffer: buf,
                        space: AddrSpace::Global,
                    }
                }
                ArgSpec::ScalarI32(x) => BoundArg::Scalar {
                    bits: *x as i64 as u64,
                    ty: ScalarType::I32,
                },
            })
            .collect()
    }

    /// Everything one backend produced for a launch, in a comparable form.
    #[derive(Debug, PartialEq)]
    struct RunOut {
        stats: Vec<GroupStats>,
        counters: GroupCounters,
        lines: BTreeMap<usize, GroupCounters>,
        err: Option<String>,
        bytes: Vec<Vec<u8>>,
    }

    fn read_arg_bytes(args: &[BoundArg]) -> Vec<Vec<u8>> {
        args.iter()
            .filter_map(|a| match a {
                BoundArg::Buffer { buffer, .. } => {
                    let mut out = vec![0u8; buffer.len_bytes()];
                    buffer.read_bytes(0, &mut out).unwrap();
                    Some(out)
                }
                BoundArg::Scalar { .. } => None,
            })
            .collect()
    }

    /// Run every work-group sequentially through one backend and merge the
    /// results the way `run_ndrange_profiled` does.
    fn run_groups(
        module: &Module,
        kernel: &str,
        args: &[BoundArg],
        geom: Geometry,
        simd: usize,
        plan: Option<&ModulePlan>,
    ) -> RunOut {
        let fid = module.kernels[kernel];
        let env = LaunchEnv {
            module,
            kernel: &module.funcs[fid],
            args,
            geom,
            cost: CostModel::for_device(&DeviceProfile::tesla_c2050()),
            simd,
            sanitize: false,
            collect: true,
            cache: DeviceProfile::tesla_c2050_cached().cache,
        };
        let mut out = RunOut {
            stats: Vec::new(),
            counters: GroupCounters::default(),
            lines: BTreeMap::new(),
            err: None,
            bytes: Vec::new(),
        };
        let kplan = plan.map(|p| match &p.kernels[fid] {
            Some(Ok(k)) => k.clone(),
            Some(Err(e)) => panic!("kernel `{kernel}` unexpectedly fell back: {e}"),
            None => panic!("kernel `{kernel}` has no plan entry"),
        });
        let ng = geom.num_groups();
        'groups: for gz in 0..ng[2] {
            for gy in 0..ng[1] {
                for gx in 0..ng[0] {
                    let g = [gx, gy, gz];
                    let result = if let Some(kplan) = &kplan {
                        let mut run = WgGroupRun::new(&env, plan.unwrap(), kplan, g);
                        run.run()
                            .map(|()| (run.stats, run.counters, run.line_counters))
                    } else {
                        let mut run = GroupRun::new(&env, g);
                        run.run()
                            .map(|()| (run.stats, run.counters, run.line_counters))
                    };
                    match result {
                        Ok((stats, counters, lines)) => {
                            out.stats.push(stats);
                            if let Some(c) = counters {
                                out.counters.merge(&c);
                            }
                            for (line, c) in lines.into_iter().flatten() {
                                out.lines.entry(line).or_default().merge(&c);
                            }
                        }
                        Err(e) => {
                            out.err = Some(e.to_string());
                            break 'groups;
                        }
                    }
                }
            }
        }
        out.bytes = read_arg_bytes(args);
        out
    }

    fn geometry(global: &[usize], local: &[usize]) -> Geometry {
        let mut g = [1usize; 3];
        let mut l = [1usize; 3];
        g[..global.len()].copy_from_slice(global);
        l[..local.len()].copy_from_slice(local);
        Geometry {
            global: g,
            local: l,
            work_dim: global.len() as u32,
        }
    }

    /// Run `kernel` under both backends at the given SIMD width and assert
    /// the outputs, per-group stats, merged counters, and per-line counters
    /// are all identical.
    fn check_pair_simd(
        src: &str,
        kernel: &str,
        global: &[usize],
        local: &[usize],
        spec: &[ArgSpec],
        simd: usize,
        level: OptLevel,
    ) {
        let module = compile(src, level);
        let geom = geometry(global, local);
        let ref_args = bind(spec);
        let wg_args = bind(spec);
        let ref_out = run_groups(&module, kernel, &ref_args, geom, simd, None);
        let plan = module_plan(&module);
        let wg_out = run_groups(&module, kernel, &wg_args, geom, simd, Some(&plan));
        assert_eq!(
            ref_out.err, wg_out.err,
            "error mismatch for `{kernel}` at simd={simd}"
        );
        assert_eq!(
            ref_out.stats, wg_out.stats,
            "per-group stats mismatch for `{kernel}` at simd={simd}"
        );
        assert_eq!(
            ref_out.counters, wg_out.counters,
            "merged counters mismatch for `{kernel}` at simd={simd}"
        );
        assert_eq!(
            ref_out.lines, wg_out.lines,
            "per-line counters mismatch for `{kernel}` at simd={simd}"
        );
        assert_eq!(
            ref_out.bytes, wg_out.bytes,
            "output bytes mismatch for `{kernel}` at simd={simd}"
        );
    }

    fn check_pair(src: &str, kernel: &str, global: &[usize], local: &[usize], spec: &[ArgSpec]) {
        for simd in [4, 32] {
            for level in [OptLevel::O0, OptLevel::O2] {
                check_pair_simd(src, kernel, global, local, spec, simd, level);
            }
        }
    }

    fn seq_f32(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32) * 0.5 - 3.0).collect()
    }

    fn seq_i32(n: usize) -> Vec<i32> {
        (0..n).map(|i| (i as i32 * 7) % 23 - 5).collect()
    }

    #[test]
    fn vadd_matches_ref() {
        let src = r#"
            __kernel void vadd(__global float* out, __global const float* a,
                               __global const float* b) {
                int i = get_global_id(0);
                out[i] = a[i] + b[i];
            }
        "#;
        check_pair(
            src,
            "vadd",
            &[64],
            &[16],
            &[
                ArgSpec::F32(vec![0.0; 64]),
                ArgSpec::F32(seq_f32(64)),
                ArgSpec::F32(seq_f32(64)),
            ],
        );
    }

    #[test]
    fn divergent_branches_match_ref() {
        let src = r#"
            __kernel void div2(__global int* out, __global const int* a) {
                int i = get_global_id(0);
                int v = a[i];
                if (v > 0) {
                    if (v % 2 == 0) { v = v * 3; } else { v = v + 7; }
                } else {
                    v = -v;
                }
                out[i] = v;
            }
        "#;
        check_pair(
            src,
            "div2",
            &[48],
            &[24],
            &[ArgSpec::I32(vec![0; 48]), ArgSpec::I32(seq_i32(48))],
        );
    }

    #[test]
    fn loop_break_continue_match_ref() {
        let src = r#"
            __kernel void lbc(__global int* out, int n) {
                int i = get_global_id(0);
                int acc = 0;
                for (int k = 0; k < n; k = k + 1) {
                    if (k == i) { continue; }
                    if (k > i + 5) { break; }
                    acc = acc + k;
                }
                out[i] = acc;
            }
        "#;
        check_pair(
            src,
            "lbc",
            &[32],
            &[8],
            &[ArgSpec::I32(vec![0; 32]), ArgSpec::ScalarI32(40)],
        );
    }

    #[test]
    fn do_while_matches_ref() {
        let src = r#"
            __kernel void dw(__global int* out) {
                int i = get_global_id(0);
                int k = 0;
                int acc = 0;
                do {
                    acc = acc + k;
                    k = k + 1;
                } while (k < i);
                out[i] = acc;
            }
        "#;
        check_pair(src, "dw", &[24], &[12], &[ArgSpec::I32(vec![0; 24])]);
    }

    #[test]
    fn early_return_matches_ref() {
        let src = r#"
            __kernel void ret(__global int* out, int n) {
                int i = get_global_id(0);
                if (i >= n) { return; }
                out[i] = i * 2;
            }
        "#;
        check_pair(
            src,
            "ret",
            &[32],
            &[16],
            &[ArgSpec::I32(vec![-1; 32]), ArgSpec::ScalarI32(20)],
        );
    }

    #[test]
    fn barrier_local_reduction_matches_ref() {
        let src = r#"
            __kernel void reduce(__global const float* in, __global float* out) {
                __local float sm[64];
                int l = get_local_id(0);
                sm[l] = in[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                for (int s = 32; s > 0; s = s / 2) {
                    if (l < s) { sm[l] = sm[l] + sm[l + s]; }
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (l == 0) { out[get_group_id(0)] = sm[0]; }
            }
        "#;
        check_pair(
            src,
            "reduce",
            &[128],
            &[64],
            &[ArgSpec::F32(seq_f32(128)), ArgSpec::F32(vec![0.0; 2])],
        );
    }

    #[test]
    fn top_level_barrier_matches_ref() {
        let src = r#"
            __kernel void tile(__global const float* in, __global float* out) {
                __local float sm[16];
                int l = get_local_id(0);
                int g = get_global_id(0);
                sm[l] = in[g] * 2.0f;
                barrier(CLK_LOCAL_MEM_FENCE);
                out[g] = sm[15 - l];
            }
        "#;
        check_pair(
            src,
            "tile",
            &[64],
            &[16],
            &[ArgSpec::F32(seq_f32(64)), ArgSpec::F32(vec![0.0; 64])],
        );
    }

    #[test]
    fn helper_call_matches_ref() {
        let src = r#"
            float sq(float x) { return x * x; }
            int clampz(int v, int hi) {
                if (v < 0) { return 0; }
                if (v > hi) { return hi; }
                return v;
            }
            __kernel void hc(__global float* out, __global int* iout,
                             __global const int* a) {
                int i = get_global_id(0);
                out[i] = sq((float)i) + sq(2.0f);
                iout[i] = clampz(a[i], 10);
            }
        "#;
        check_pair(
            src,
            "hc",
            &[32],
            &[8],
            &[
                ArgSpec::F32(vec![0.0; 32]),
                ArgSpec::I32(vec![0; 32]),
                ArgSpec::I32(seq_i32(32)),
            ],
        );
    }

    #[test]
    fn nested_helper_call_matches_ref() {
        // regression: calls inside `if`/loop bodies must still be planned
        let src = r#"
            int triple(int v) { return v * 3; }
            __kernel void nhc(__global int* out, __global const int* a) {
                int i = get_global_id(0);
                int v = a[i];
                for (int k = 0; k < 3; k = k + 1) {
                    if (v > 0) { v = triple(v) - 1; }
                }
                out[i] = v;
            }
        "#;
        check_pair(
            src,
            "nhc",
            &[32],
            &[8],
            &[ArgSpec::I32(vec![0; 32]), ArgSpec::I32(seq_i32(32))],
        );
    }

    #[test]
    fn select_and_shortcircuit_match_ref() {
        let src = r#"
            __kernel void sel(__global int* out, __global const int* a) {
                int i = get_global_id(0);
                int v = a[i];
                int r = (v > 3 && v < 10) ? v * 2 : v - 1;
                if (v > 0 || i == 0) { r = r + 100; }
                out[i] = r;
            }
        "#;
        check_pair(
            src,
            "sel",
            &[40],
            &[8],
            &[ArgSpec::I32(vec![0; 40]), ArgSpec::I32(seq_i32(40))],
        );
    }

    #[test]
    fn private_array_matches_ref() {
        let src = r#"
            __kernel void pa(__global int* out) {
                int i = get_global_id(0);
                int tmp[4];
                for (int k = 0; k < 4; k = k + 1) { tmp[k] = i * k + 1; }
                out[i] = tmp[1] + tmp[3];
            }
        "#;
        check_pair(src, "pa", &[32], &[16], &[ArgSpec::I32(vec![0; 32])]);
    }

    #[test]
    fn math_builtins_match_ref() {
        let src = r#"
            __kernel void mb(__global float* out, __global const float* a) {
                int i = get_global_id(0);
                float x = a[i];
                out[i] = sqrt(fabs(x)) + fmax(x, 0.25f) + mad(x, 2.0f, 1.0f);
            }
        "#;
        check_pair(
            src,
            "mb",
            &[32],
            &[16],
            &[ArgSpec::F32(vec![0.0; 32]), ArgSpec::F32(seq_f32(32))],
        );
    }

    #[test]
    fn div_by_zero_traps_identically() {
        let src = r#"
            __kernel void dz(__global int* out, int d) {
                int i = get_global_id(0);
                out[i] = i / d;
            }
        "#;
        let module = compile(src, OptLevel::O2);
        let geom = geometry(&[16], &[16]);
        let ref_args = bind(&[ArgSpec::I32(vec![0; 16]), ArgSpec::ScalarI32(0)]);
        let wg_args = bind(&[ArgSpec::I32(vec![0; 16]), ArgSpec::ScalarI32(0)]);
        let ref_out = run_groups(&module, "dz", &ref_args, geom, 32, None);
        let plan = module_plan(&module);
        let wg_out = run_groups(&module, "dz", &wg_args, geom, 32, Some(&plan));
        assert!(ref_out.err.is_some(), "reference backend should trap");
        assert_eq!(ref_out.err, wg_out.err);
    }

    // --- planner fallback decisions ---------------------------------------

    fn plan_err(src: &str, kernel: &str) -> String {
        let module = compile(src, OptLevel::O2);
        let plan = module_plan(&module);
        let fid = module.kernels[kernel];
        match &plan.kernels[fid] {
            Some(Err(e)) => e.clone(),
            Some(Ok(_)) => panic!("kernel `{kernel}` unexpectedly compiled"),
            None => panic!("kernel `{kernel}` has no plan entry"),
        }
    }

    #[test]
    fn atomic_kernel_falls_back() {
        let err = plan_err(
            r#"
            __kernel void at(__global int* c) {
                atomic_add(&c[0], 1);
            }
            "#,
            "at",
        );
        assert!(err.contains("atomic"), "got: {err}");
    }

    #[test]
    fn barrier_under_divergent_if_falls_back() {
        let err = plan_err(
            r#"
            __kernel void bif(__global int* out) {
                int i = get_global_id(0);
                if (i < 4) {
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                out[i] = i;
            }
            "#,
            "bif",
        );
        assert!(err.contains("barrier"), "got: {err}");
    }

    #[test]
    fn barrier_plus_return_falls_back() {
        let err = plan_err(
            r#"
            __kernel void br(__global int* out, int n) {
                int i = get_global_id(0);
                if (i >= n) { return; }
                barrier(CLK_LOCAL_MEM_FENCE);
                out[i] = i;
            }
            "#,
            "br",
        );
        assert!(err.contains("return"), "got: {err}");
    }

    #[test]
    fn helper_with_barrier_falls_back() {
        let err = plan_err(
            r#"
            void sync() { barrier(CLK_LOCAL_MEM_FENCE); }
            __kernel void hb(__global int* out) {
                int i = get_global_id(0);
                sync();
                out[i] = i;
            }
            "#,
            "hb",
        );
        assert!(err.contains("barrier"), "got: {err}");
    }

    #[test]
    fn non_uniform_barrier_loop_falls_back() {
        let err = plan_err(
            r#"
            __kernel void nu(__global int* out) {
                int i = get_local_id(0);
                for (int k = 0; k < i; k = k + 1) {
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                out[get_global_id(0)] = i;
            }
            "#,
            "nu",
        );
        assert!(err.contains("uniform"), "got: {err}");
    }

    #[test]
    fn uniform_barrier_loop_compiles() {
        let src = r#"
            __kernel void ub(__global float* data, int steps) {
                __local float sm[16];
                int l = get_local_id(0);
                for (int k = 0; k < steps; k = k + 1) {
                    sm[l] = data[get_global_id(0)] + (float)k;
                    barrier(CLK_LOCAL_MEM_FENCE);
                    data[get_global_id(0)] = sm[(l + 1) % 16];
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
            }
        "#;
        check_pair(
            src,
            "ub",
            &[32],
            &[16],
            &[ArgSpec::F32(seq_f32(32)), ArgSpec::ScalarI32(3)],
        );
    }

    #[test]
    fn backend_knob_round_trips() {
        let before = backend();
        set_backend(Backend::Ref);
        assert_eq!(backend(), Backend::Ref);
        assert_eq!(backend_name(), "ref");
        set_backend(Backend::Wg);
        assert_eq!(backend(), Backend::Wg);
        assert_eq!(backend_name(), "wg");
        set_backend(before);
    }
}
