//! Typed executable IR produced by semantic analysis.
//!
//! The IR is a structured statement tree (not a flat CFG): the SIMT
//! interpreter relies on structured control flow to manage divergence masks
//! and to re-converge lanes, exactly like real GPU hardware relies on
//! structured reconvergence points. Every expression node carries its
//! resolved [`ScalarType`], so the interpreter never inspects types at
//! runtime beyond matching on the opcode.

use std::collections::HashMap;

use crate::clc::ast::AddrSpace;
use crate::types::ScalarType;

/// Index of a variable slot within a function frame.
pub type SlotId = usize;
/// Index of a function within a [`Module`].
pub type FuncId = usize;

/// What a frame slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// A per-lane scalar register.
    Scalar(ScalarType),
    /// A per-lane pointer register.
    Ptr { space: AddrSpace, elem: ScalarType },
}

/// A statically-sized array allocation (local scratchpad or private).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayAlloc {
    pub elem: ScalarType,
    pub len: usize,
    /// Byte offset of the allocation within its arena (assigned by sema).
    pub byte_offset: usize,
}

impl ArrayAlloc {
    /// Size of one copy of the array in bytes.
    pub fn byte_len(&self) -> usize {
        self.elem.size() * self.len
    }
}

/// Binary arithmetic / bitwise opcodes. The operand type is carried by the
/// enclosing [`Ex::Bin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Comparison opcodes; result is `Bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum COp {
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
}

/// Unary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UOp {
    Neg,
    Not,
    BitNot,
}

/// Built-in functions known to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    // work-item identification; the dimension argument is an IR expression
    GetGlobalId,
    GetLocalId,
    GetGroupId,
    GetGlobalSize,
    GetLocalSize,
    GetNumGroups,
    GetWorkDim,
    // float math (operate at the type of the enclosing node)
    Sqrt,
    Rsqrt,
    Fabs,
    Exp,
    Log,
    Log2,
    Pow,
    Sin,
    Cos,
    Tan,
    Floor,
    Ceil,
    Trunc,
    Round,
    Fmod,
    Fmax,
    Fmin,
    Mad,
    Fma,
    // integer
    MaxI,
    MinI,
    AbsI,
    // atomics on 32-bit global/local integers; return the old value
    AtomicAdd,
    AtomicSub,
    AtomicInc,
    AtomicDec,
    AtomicXchg,
    AtomicMin,
    AtomicMax,
}

impl Builtin {
    /// True for the work-item geometry queries.
    pub fn is_geometry(self) -> bool {
        matches!(
            self,
            Builtin::GetGlobalId
                | Builtin::GetLocalId
                | Builtin::GetGroupId
                | Builtin::GetGlobalSize
                | Builtin::GetLocalSize
                | Builtin::GetNumGroups
                | Builtin::GetWorkDim
        )
    }

    /// True for atomics (side-effecting; never reordered or masked out).
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            Builtin::AtomicAdd
                | Builtin::AtomicSub
                | Builtin::AtomicInc
                | Builtin::AtomicDec
                | Builtin::AtomicXchg
                | Builtin::AtomicMin
                | Builtin::AtomicMax
        )
    }
}

/// Typed expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Ex {
    /// A literal; bits are the canonical register representation.
    Const { bits: u64, ty: ScalarType },
    /// Read a scalar or pointer slot.
    Slot { slot: SlotId, ty: ScalarType },
    /// Pointer value of a local-array allocation.
    LocalBase { alloc: usize, elem: ScalarType },
    /// Pointer value of a private-array allocation (per-lane copy).
    PrivBase { alloc: usize, elem: ScalarType },
    /// Pointer + element offset.
    PtrAdd {
        ptr: Box<Ex>,
        offset: Box<Ex>,
        elem_size: usize,
    },
    /// Load `elem` through a pointer.
    Load {
        addr: Box<Ex>,
        elem: ScalarType,
        space: AddrSpace,
    },
    /// Binary arithmetic at `ty`.
    Bin {
        op: BOp,
        ty: ScalarType,
        l: Box<Ex>,
        r: Box<Ex>,
    },
    /// Comparison of operands at `ty`; yields Bool.
    Cmp {
        op: COp,
        ty: ScalarType,
        l: Box<Ex>,
        r: Box<Ex>,
    },
    /// Short-circuit `&&` (RHS evaluated only for lanes where LHS holds).
    LogAnd { l: Box<Ex>, r: Box<Ex> },
    /// Short-circuit `||`.
    LogOr { l: Box<Ex>, r: Box<Ex> },
    /// Unary op at `ty`.
    Un { op: UOp, ty: ScalarType, e: Box<Ex> },
    /// Numeric conversion.
    Cast {
        from: ScalarType,
        to: ScalarType,
        e: Box<Ex>,
    },
    /// Built-in call. `ty` is the result type.
    CallBuiltin {
        b: Builtin,
        ty: ScalarType,
        args: Vec<Ex>,
    },
    /// User helper-function call.
    CallFunc {
        func: FuncId,
        ret: ScalarType,
        args: Vec<Ex>,
    },
    /// `cond ? t : f` evaluated with per-lane masking.
    Select {
        cond: Box<Ex>,
        t: Box<Ex>,
        f: Box<Ex>,
        ty: ScalarType,
    },
}

impl Ex {
    /// Result type of this expression.
    pub fn ty(&self) -> ScalarType {
        match self {
            Ex::Const { ty, .. }
            | Ex::Slot { ty, .. }
            | Ex::Bin { ty, .. }
            | Ex::Un { ty, .. }
            | Ex::CallBuiltin { ty, .. }
            | Ex::CallFunc { ret: ty, .. }
            | Ex::Select { ty, .. } => *ty,
            Ex::Load { elem, .. } => *elem,
            Ex::Cast { to, .. } => *to,
            Ex::Cmp { .. } | Ex::LogAnd { .. } | Ex::LogOr { .. } => ScalarType::Bool,
            // pointers evaluate to U64 pointer bits
            Ex::LocalBase { .. } | Ex::PrivBase { .. } | Ex::PtrAdd { .. } => ScalarType::U64,
        }
    }
}

/// A typed statement plus the source line it was lowered from.
///
/// The span survives all the way from the `clc` parser into the
/// interpreter, where it attributes per-line hardware counters back to
/// the OpenCL C source (and, through HPL's line map, to the DSL
/// recording site that generated that source).
#[derive(Debug, Clone, PartialEq)]
pub struct St {
    pub kind: StKind,
    /// 1-based source line/column of the statement; line 0 = unknown
    /// (synthetic statements built by tests or desugaring helpers).
    pub span: crate::clc::ast::Span,
}

impl St {
    /// A statement carrying its source span.
    pub fn new(kind: StKind, span: crate::clc::ast::Span) -> St {
        St { kind, span }
    }
}

impl From<StKind> for St {
    /// A synthetic statement with no source location.
    fn from(kind: StKind) -> St {
        St {
            kind,
            span: crate::clc::ast::Span { line: 0, col: 0 },
        }
    }
}

/// Typed statements.
#[derive(Debug, Clone, PartialEq)]
pub enum StKind {
    /// Write a slot.
    SetSlot {
        slot: SlotId,
        value: Ex,
    },
    /// Store through a pointer.
    Store {
        addr: Ex,
        elem: ScalarType,
        space: AddrSpace,
        value: Ex,
    },
    If {
        cond: Ex,
        then_blk: Vec<St>,
        else_blk: Vec<St>,
    },
    /// Unified loop: `while` / `for` (`check_first = true`) and `do..while`
    /// (`check_first = false`). `step` runs after the body each iteration,
    /// including on `continue`.
    Loop {
        cond: Ex,
        body: Vec<St>,
        step: Vec<St>,
        check_first: bool,
    },
    Return(Option<Ex>),
    Break,
    Continue,
    /// Work-group barrier with memory-fence flags.
    Barrier {
        local_fence: bool,
        global_fence: bool,
    },
    /// Expression evaluated for side effects (atomics, void helper calls).
    ExprSt(Ex),
}

/// How a kernel parameter is bound at launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// `__global T*`
    GlobalPtr { elem: ScalarType },
    /// `__constant T*`
    ConstantPtr { elem: ScalarType },
    /// `__local T*` (size provided at launch; not yet supported by the
    /// public API, kept for IR completeness)
    LocalPtr { elem: ScalarType },
    /// Scalar passed by value.
    Scalar(ScalarType),
}

/// A kernel/helper parameter with access summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamInfo {
    pub name: String,
    pub kind: ParamKind,
    /// Whether the function (transitively) reads through this parameter.
    pub reads: bool,
    /// Whether the function (transitively) writes through this parameter.
    pub writes: bool,
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncIr {
    pub name: String,
    pub is_kernel: bool,
    pub ret: Option<ScalarType>,
    pub params: Vec<ParamInfo>,
    /// Slot table; slots `0..params.len()` hold the parameters.
    pub slots: Vec<SlotKind>,
    /// Work-group scratchpad allocations (kernels only).
    pub local_allocs: Vec<ArrayAlloc>,
    /// Per-lane private array allocations.
    pub priv_allocs: Vec<ArrayAlloc>,
    pub body: Vec<St>,
    /// True if any instruction operates on `double` (fp64 capability gate).
    pub uses_fp64: bool,
    /// Whether the function contains a barrier (directly or transitively).
    pub has_barrier: bool,
}

impl FuncIr {
    /// Total scratchpad bytes needed per work-group.
    pub fn local_bytes(&self) -> usize {
        self.local_allocs.iter().map(|a| a.byte_len()).sum()
    }

    /// Private arena bytes needed per lane.
    pub fn priv_bytes_per_lane(&self) -> usize {
        self.priv_allocs.iter().map(|a| a.byte_len()).sum()
    }
}

/// A compiled translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    pub funcs: Vec<FuncIr>,
    /// Kernel name → function index.
    pub kernels: HashMap<String, FuncId>,
    /// Lazily computed wg-backend execution plan (identity state: clones
    /// start empty and every instance compares equal, so the derives above
    /// keep their value semantics).
    pub wg_plans: crate::exec::wg::PlanCache,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_types() {
        let c = Ex::Const {
            bits: 1,
            ty: ScalarType::I32,
        };
        assert_eq!(c.ty(), ScalarType::I32);
        let cmp = Ex::Cmp {
            op: COp::Lt,
            ty: ScalarType::I32,
            l: Box::new(c.clone()),
            r: Box::new(c.clone()),
        };
        assert_eq!(cmp.ty(), ScalarType::Bool);
        let p = Ex::PtrAdd {
            ptr: Box::new(Ex::Slot {
                slot: 0,
                ty: ScalarType::U64,
            }),
            offset: Box::new(c),
            elem_size: 4,
        };
        assert_eq!(p.ty(), ScalarType::U64);
    }

    #[test]
    fn alloc_sizes() {
        let a = ArrayAlloc {
            elem: ScalarType::F64,
            len: 10,
            byte_offset: 0,
        };
        assert_eq!(a.byte_len(), 80);
    }

    #[test]
    fn builtin_classification() {
        assert!(Builtin::GetGlobalId.is_geometry());
        assert!(!Builtin::Sqrt.is_geometry());
        assert!(Builtin::AtomicAdd.is_atomic());
        assert!(!Builtin::Fmax.is_atomic());
    }
}
