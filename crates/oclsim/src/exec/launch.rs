//! NDRange launch: geometry validation and parallel execution of
//! work-groups over a host worker pool.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::buffer::{Buffer, MemAccess};
use crate::clc::ast::AddrSpace;
use crate::device::Device;
use crate::error::{Error, Result};
use crate::exec::interp::{GroupRun, LaunchEnv};
use crate::exec::ir::{FuncIr, Module, ParamKind};
use crate::exec::wg;
use crate::prof::cache::{L2Record, TagArray};
use crate::prof::counters::{GroupCounters, LaunchCounters};
use crate::timing::{cu_loads, model_launch, CostModel, GroupStats, TimingBreakdown};
use crate::types::ScalarType;

/// A kernel argument bound for a launch.
#[derive(Debug, Clone)]
pub enum BoundArg {
    /// A device buffer bound to a `__global` or `__constant` pointer.
    Buffer { buffer: Buffer, space: AddrSpace },
    /// A scalar passed by value (canonical bits).
    Scalar { bits: u64, ty: ScalarType },
}

/// Launch geometry (global domain, local domain, dimensionality).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    pub global: [usize; 3],
    pub local: [usize; 3],
    pub work_dim: u32,
}

impl Geometry {
    /// Construct and validate a geometry; `local = None` lets the runtime
    /// pick a local size (mirroring passing NULL to clEnqueueNDRangeKernel).
    pub fn new(global: &[usize], local: Option<&[usize]>, device: &Device) -> Result<Geometry> {
        if global.is_empty() || global.len() > 3 {
            return Err(Error::InvalidLaunch(format!(
                "global domain must have 1-3 dimensions, got {}",
                global.len()
            )));
        }
        if global.contains(&0) {
            return Err(Error::InvalidLaunch(
                "global domain has a zero-sized dimension".into(),
            ));
        }
        let work_dim = global.len() as u32;
        let mut g = [1usize; 3];
        g[..global.len()].copy_from_slice(global);

        let max_wg = device.profile().max_work_group_size;
        let l = match local {
            Some(local) => {
                if local.len() != global.len() {
                    return Err(Error::InvalidLaunch(
                        "local domain must have the same number of dimensions as the global domain"
                            .into(),
                    ));
                }
                let mut l = [1usize; 3];
                l[..local.len()].copy_from_slice(local);
                for d in 0..3 {
                    if l[d] == 0 {
                        return Err(Error::InvalidLaunch("zero-sized local dimension".into()));
                    }
                    if g[d] % l[d] != 0 {
                        return Err(Error::InvalidLaunch(format!(
                            "local size {} does not divide global size {} in dimension {d}",
                            l[d], g[d]
                        )));
                    }
                }
                l
            }
            None => Self::default_local(g, max_wg),
        };
        let group_items: usize = l.iter().product();
        if group_items > max_wg {
            return Err(Error::InvalidLaunch(format!(
                "work-group of {group_items} work-items exceeds the device maximum of {max_wg}"
            )));
        }
        Ok(Geometry {
            global: g,
            local: l,
            work_dim,
        })
    }

    /// The library's default local-domain choice: the largest power of two
    /// ≤ min(max_wg, global) that divides the global size in dimension 0,
    /// 1 elsewhere. (This is HPL's "the local domain is chosen by the
    /// library" behaviour.)
    fn default_local(global: [usize; 3], max_wg: usize) -> [usize; 3] {
        let mut l0 = 1usize;
        let mut candidate = 1usize;
        while candidate * 2 <= max_wg.min(global[0]) {
            candidate *= 2;
            if global[0].is_multiple_of(candidate) {
                l0 = candidate;
            }
        }
        [l0, 1, 1]
    }

    /// Work-groups per dimension.
    pub fn num_groups(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Total number of work-groups.
    pub fn total_groups(&self) -> usize {
        self.num_groups().iter().product()
    }

    /// Total number of work-items.
    pub fn total_items(&self) -> usize {
        self.global.iter().product()
    }
}

/// Validate that bound arguments match the kernel signature and the device
/// can run the kernel.
pub fn validate_launch(
    kernel: &FuncIr,
    args: &[BoundArg],
    geom: &Geometry,
    device: &Device,
) -> Result<()> {
    let profile = device.profile();
    if kernel.uses_fp64 && !profile.fp64 {
        return Err(Error::UnsupportedCapability(format!(
            "kernel `{}` uses double precision, which `{}` does not support",
            kernel.name, profile.name
        )));
    }
    if kernel.local_bytes() > profile.local_mem_bytes as usize {
        return Err(Error::OutOfResources(format!(
            "kernel `{}` needs {} bytes of local memory; device `{}` has {}",
            kernel.name,
            kernel.local_bytes(),
            profile.name,
            profile.local_mem_bytes
        )));
    }
    if args.len() != kernel.params.len() {
        return Err(Error::InvalidArg {
            kernel: kernel.name.clone(),
            index: args.len().min(kernel.params.len()),
            reason: format!(
                "kernel has {} parameters but {} arguments are bound",
                kernel.params.len(),
                args.len()
            ),
        });
    }
    for (i, (arg, param)) in args.iter().zip(&kernel.params).enumerate() {
        let fail = |reason: String| Error::InvalidArg {
            kernel: kernel.name.clone(),
            index: i,
            reason,
        };
        match (&param.kind, arg) {
            (
                ParamKind::GlobalPtr { .. },
                BoundArg::Buffer {
                    buffer,
                    space: AddrSpace::Global,
                },
            ) => {
                if param.writes && buffer.access() == MemAccess::ReadOnly {
                    return Err(fail(
                        "kernel writes through this parameter but the buffer is read-only".into(),
                    ));
                }
                if param.reads && buffer.access() == MemAccess::WriteOnly {
                    return Err(fail(
                        "kernel reads through this parameter but the buffer is write-only".into(),
                    ));
                }
            }
            (
                ParamKind::ConstantPtr { .. },
                BoundArg::Buffer {
                    buffer,
                    space: AddrSpace::Constant,
                },
            ) => {
                if buffer.len_bytes() > profile.constant_mem_bytes as usize {
                    return Err(fail(format!(
                        "constant buffer of {} bytes exceeds the device's {}-byte constant memory",
                        buffer.len_bytes(),
                        profile.constant_mem_bytes
                    )));
                }
            }
            (ParamKind::Scalar(want), BoundArg::Scalar { ty, .. }) => {
                if want != ty {
                    return Err(fail(format!(
                        "scalar argument has type {}, kernel expects {}",
                        ty.cl_name(),
                        want.cl_name()
                    )));
                }
            }
            _ => {
                return Err(fail("argument kind does not match the parameter".into()));
            }
        }
    }
    // barriers synchronise within a group; a 1-item group is always fine,
    // but groups must fit (already checked in Geometry::new against device)
    let _ = geom;
    Ok(())
}

/// Interpret an `OCLSIM_THREADS` value: a parseable count is clamped to at
/// least 1; an unset or unparseable value defers to the host default.
fn parse_worker_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.parse::<usize>().ok()).map(|n| n.max(1))
}

/// Number of host worker threads used to execute work-groups.
///
/// Reads the `OCLSIM_THREADS` environment variable **once** (first launch)
/// and caches the result for the life of the process, so per-launch cost is
/// a single atomic load and the pool size cannot change mid-run. Invalid or
/// unset values fall back to `std::thread::available_parallelism`.
pub fn worker_threads() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        parse_worker_threads(std::env::var("OCLSIM_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Execute a validated launch and return the modeled timing.
pub fn run_ndrange(
    module: &Module,
    kernel: &FuncIr,
    args: &[BoundArg],
    geom: Geometry,
    device: &Device,
    sanitize: bool,
) -> Result<TimingBreakdown> {
    run_ndrange_profiled(
        module, kernel, args, geom, device, sanitize, false, None, None,
    )
    .map(|(timing, _)| timing)
}

/// Execute a validated launch; optionally collect profiling counters.
///
/// With `collect = false` this is exactly [`run_ndrange`] (the interpreter
/// skips every counter hook). With `collect = true` each worker keeps a
/// thread-local [`GroupCounters`] and folds it into the shared total with a
/// purely additive merge, so the result is independent of worker count and
/// group completion order. `workers` overrides the process-wide
/// `OCLSIM_THREADS` pool size (used by determinism tests, which cannot
/// re-read the cached environment variable mid-process).
///
/// `group_span = Some((start, end))` executes only the linearized
/// work-groups in `[start, end)` while **keeping the full geometry**: every
/// builtin (`get_global_id`, `get_num_groups`, `get_global_size`, group
/// ids) reports full-launch values, so a kernel cannot tell it is running
/// as one chunk of a partitioned launch. This is what lets the
/// [`crate::serve`] partitioner split an NDRange across devices with
/// bit-identical results. The modeled timing covers only the span.
#[allow(clippy::too_many_arguments)]
pub fn run_ndrange_profiled(
    module: &Module,
    kernel: &FuncIr,
    args: &[BoundArg],
    geom: Geometry,
    device: &Device,
    sanitize: bool,
    collect: bool,
    workers: Option<usize>,
    group_span: Option<(usize, usize)>,
) -> Result<(TimingBreakdown, Option<LaunchCounters>)> {
    let env = LaunchEnv {
        module,
        kernel,
        args,
        geom,
        cost: CostModel::for_device(device.profile()),
        simd: device.profile().simd_width.max(1) as usize,
        sanitize,
        collect,
        cache: device.profile().cache,
    };
    // Resolve the compiled work-group plan. The wg backend needs whole
    // warps it can mask with one `u64` (2 <= simd <= 64), no dynamic race
    // sanitizer (statement-major order), and a kernel the planner accepted;
    // anything else runs on the reference interpreter.
    let wg_plan = if wg::backend() == wg::Backend::Wg && !sanitize && (2..=64).contains(&env.simd) {
        let mplan = wg::module_plan(module);
        module
            .kernels
            .get(&kernel.name)
            .and_then(|&fid| mplan.kernels.get(fid).cloned().flatten())
            .and_then(|r| r.ok())
            .map(|kplan| (mplan, kplan))
    } else {
        None
    };
    {
        let m = crate::telemetry::metrics();
        if wg_plan.is_some() {
            m.exec_wg_launches.add(1);
        } else {
            m.exec_ref_launches.add(1);
            if wg::backend() == wg::Backend::Wg {
                m.exec_wg_fallbacks.add(1);
            }
        }
    }
    let _exec_span = crate::telemetry::span("exec", if wg_plan.is_some() { "wg" } else { "ref" });
    let ngroups = geom.num_groups();
    let full_total = geom.total_groups();
    let (start, total) = match group_span {
        Some((s, e)) => {
            if s >= e || e > full_total {
                return Err(Error::InvalidLaunch(format!(
                    "group span {s}..{e} is not a non-empty subrange of 0..{full_total}"
                )));
            }
            (s, e)
        }
        None => (0, full_total),
    };
    let span_groups = total - start;

    let nthreads = workers
        .unwrap_or_else(worker_threads)
        .min(span_groups)
        .max(1);
    let next = AtomicUsize::new(start);
    let failed = AtomicBool::new(false);
    let first_error: Mutex<Option<Error>> = Mutex::new(None);
    let all_stats: Mutex<Vec<(usize, GroupStats, Vec<L2Record>)>> =
        Mutex::new(Vec::with_capacity(span_groups));
    let all_counters: Mutex<GroupCounters> = Mutex::new(GroupCounters::default());
    let all_lines: Mutex<BTreeMap<usize, GroupCounters>> = Mutex::new(BTreeMap::new());

    let run_worker = || {
        let mut local_stats: Vec<(usize, GroupStats, Vec<L2Record>)> = Vec::new();
        let mut local_counters = GroupCounters::default();
        let mut local_lines: BTreeMap<usize, GroupCounters> = BTreeMap::new();
        // one VM per worker, reset per group: the register frame, lane-id
        // tables and scratch buffers are reused across every group this
        // worker claims instead of reallocated per group
        let mut wg_run: Option<wg::WgGroupRun> = None;
        loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let g = next.fetch_add(1, Ordering::Relaxed);
            if g >= total {
                break;
            }
            let gx = g % ngroups[0];
            let gy = (g / ngroups[0]) % ngroups[1];
            let gz = g / (ngroups[0] * ngroups[1]);
            let result = if let Some((mplan, kplan)) = &wg_plan {
                let run = wg_run
                    .get_or_insert_with(|| wg::WgGroupRun::new(&env, mplan, kplan, [gx, gy, gz]));
                run.reset([gx, gy, gz]);
                // counters stay inside the VM, accumulating across every
                // group this worker claims; harvested once after the loop
                run.run().map(|()| {
                    let l2 = run.take_l2_stream();
                    (std::mem::take(&mut run.stats), l2, None, None)
                })
            } else {
                let mut run = GroupRun::new(&env, [gx, gy, gz]);
                run.run().map(|()| {
                    let l2 = run.take_l2_stream();
                    (run.stats, l2, run.counters, run.line_counters)
                })
            };
            match result {
                Ok((stats, l2_stream, counters, line_counters)) => {
                    local_stats.push((g, stats, l2_stream));
                    if let Some(c) = &counters {
                        local_counters.merge(c);
                    }
                    if let Some(lines) = &line_counters {
                        for (&line, c) in lines {
                            local_lines.entry(line).or_default().merge(c);
                        }
                    }
                }
                Err(e) => {
                    failed.store(true, Ordering::Relaxed);
                    let mut slot = first_error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            }
        }
        if let Some(run) = &mut wg_run {
            if let Some(c) = run.counters.take() {
                local_counters.merge(&c);
            }
            if let Some(lines) = run.line_counters.take() {
                for (line, c) in lines {
                    local_lines.entry(line).or_default().merge(&c);
                }
            }
        }
        all_stats.lock().extend(local_stats);
        if collect {
            all_counters.lock().merge(&local_counters);
            // per-line deltas are plain sums too, so this merge is as
            // order-independent as the totals merge above
            let mut lines = all_lines.lock();
            for (line, c) in &local_lines {
                lines.entry(*line).or_default().merge(c);
            }
        }
    };

    if nthreads <= 1 {
        run_worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..nthreads {
                scope.spawn(run_worker);
            }
        });
    }

    if let Some(e) = first_error.lock().take() {
        return Err(e);
    }
    // Re-establish linear group order before modeling: float accumulation
    // over the stats is order-sensitive in the last ulp, and the modeled
    // time must be a pure function of the workload, not of which worker
    // finished first.
    let mut stats_by_group = all_stats.into_inner();
    stats_by_group.sort_unstable_by_key(|&(g, _, _)| g);
    let mut totals = all_counters.into_inner();
    let mut lines = all_lines.into_inner();
    // Replay every group's L1-miss stream through the one shared L2 tag
    // array in linear group-id order: cross-group reuse is modeled, while
    // the result stays independent of the worker pool, the claim order and
    // the execution backend.
    if let Some(cc) = &device.profile().cache {
        let mut l2 = TagArray::new(cc.l2_sets(), cc.l2_ways as usize);
        let (mut h1, mut m1, mut h2, mut m2) = (0u64, 0u64, 0u64, 0u64);
        for (_, stats, stream) in &mut stats_by_group {
            h1 += stats.l1_hits;
            m1 += stats.l1_misses;
            for &(line, dsl) in stream.iter() {
                let hit = l2.access(line);
                if hit {
                    stats.l2_hits += 1;
                    h2 += 1;
                } else {
                    stats.l2_misses += 1;
                    m2 += 1;
                }
                if collect {
                    let lc = lines.entry(dsl as usize).or_default();
                    if hit {
                        totals.l2_hits += 1;
                        lc.l2_hits += 1;
                    } else {
                        totals.l2_misses += 1;
                        lc.l2_misses += 1;
                    }
                }
            }
        }
        let m = crate::telemetry::metrics();
        m.prof_cache_l1_hits.add(h1);
        m.prof_cache_l1_misses.add(m1);
        m.prof_cache_l2_hits.add(h2);
        m.prof_cache_l2_misses.add(m2);
    }
    let stats: Vec<GroupStats> = stats_by_group.into_iter().map(|(_, s, _)| s).collect();
    let timing = model_launch(device.profile(), &stats);
    let counters = collect.then(|| {
        let load = cu_loads(device.profile(), &stats);
        let makespan = load.iter().copied().max().unwrap_or(0);
        let cu_occupancy = load
            .iter()
            .map(|&l| {
                if makespan == 0 {
                    0.0
                } else {
                    l as f64 / makespan as f64
                }
            })
            .collect();
        LaunchCounters {
            totals,
            lines,
            num_groups: stats.len(),
            total_cycles: timing.totals.cycles,
            cu_occupancy,
        }
    });
    Ok((timing, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::tesla_c2050())
    }

    #[test]
    fn geometry_defaults() {
        let g = Geometry::new(&[1000], None, &dev()).unwrap();
        assert_eq!(g.work_dim, 1);
        assert_eq!(g.global, [1000, 1, 1]);
        // largest power of two dividing 1000 under 1024 is 8
        assert_eq!(g.local, [8, 1, 1]);
        assert_eq!(g.total_groups(), 125);
    }

    #[test]
    fn geometry_pow2_default_local() {
        let g = Geometry::new(&[4096], None, &dev()).unwrap();
        assert_eq!(g.local, [1024, 1, 1]);
        let g = Geometry::new(&[512], None, &dev()).unwrap();
        assert_eq!(g.local, [512, 1, 1]);
    }

    #[test]
    fn geometry_2d() {
        let g = Geometry::new(&[4, 8], Some(&[2, 4]), &dev()).unwrap();
        assert_eq!(g.work_dim, 2);
        assert_eq!(g.global, [4, 8, 1]);
        assert_eq!(g.local, [2, 4, 1]);
        assert_eq!(g.num_groups(), [2, 2, 1]);
        assert_eq!(g.total_items(), 32);
    }

    #[test]
    fn geometry_validation_errors() {
        assert!(Geometry::new(&[], None, &dev()).is_err());
        assert!(Geometry::new(&[0], None, &dev()).is_err());
        assert!(
            Geometry::new(&[10], Some(&[3]), &dev()).is_err(),
            "3 does not divide 10"
        );
        assert!(
            Geometry::new(&[8, 8], Some(&[8]), &dev()).is_err(),
            "dim mismatch"
        );
        assert!(
            Geometry::new(&[2048, 2048], Some(&[2048, 1]), &dev()).is_err(),
            "group too large"
        );
        assert!(Geometry::new(&[1, 2, 3, 4], None, &dev()).is_err());
    }

    #[test]
    fn prime_global_gets_local_1() {
        let g = Geometry::new(&[997], None, &dev()).unwrap();
        assert_eq!(g.local, [1, 1, 1]);
    }

    #[test]
    fn worker_thread_override_parses_and_clamps() {
        assert_eq!(parse_worker_threads(Some("6")), Some(6));
        assert_eq!(parse_worker_threads(Some("1")), Some(1));
        // zero would deadlock the pool; clamp to one worker
        assert_eq!(parse_worker_threads(Some("0")), Some(1));
    }

    #[test]
    fn worker_thread_invalid_values_fall_back() {
        assert_eq!(parse_worker_threads(None), None);
        assert_eq!(parse_worker_threads(Some("")), None);
        assert_eq!(parse_worker_threads(Some("lots")), None);
        assert_eq!(parse_worker_threads(Some("-2")), None);
        assert_eq!(parse_worker_threads(Some("3.5")), None);
    }

    #[test]
    fn worker_threads_is_stable_across_calls() {
        // the first read is cached process-wide; later env changes must not
        // resize the pool mid-run
        let first = worker_threads();
        assert!(first >= 1);
        assert_eq!(worker_threads(), first);
    }

    /// Cache counters are byte-identical across host worker counts: L1
    /// state is group-private (each group replays its own transaction
    /// stream), and the shared L2 is replayed single-threaded in linear
    /// group-id order after the workers join, so the pool size can never
    /// reorder a probe.
    #[test]
    fn cache_counters_identical_across_worker_counts() {
        let device = Device::new(DeviceProfile::tesla_c2050_cached());
        let ctx = crate::Context::new(std::slice::from_ref(&device)).unwrap();
        // strided gather (intra-warp line reuse + cross-group L2 reuse),
        // a barrier (mid-group canonical flush point), then a streaming
        // read — enough shape to catch any ordering bug
        let src = "__kernel void stride(__global float* a, __global float* b) {
            int i = (int)get_global_id(0);
            float x = a[(i * 7) % 4096];
            barrier(CLK_GLOBAL_MEM_FENCE);
            b[i] = x + a[i];
        }";
        let p = crate::Program::from_source(&ctx, src);
        p.build("").unwrap();
        let k = p.kernel("stride").unwrap();
        let a = ctx
            .create_buffer(4 * 4096, crate::MemAccess::ReadOnly)
            .unwrap();
        let b = ctx
            .create_buffer(4 * 4096, crate::MemAccess::ReadWrite)
            .unwrap();
        k.set_arg_buffer(0, &a).unwrap();
        k.set_arg_buffer(1, &b).unwrap();
        let args = k.bound_args().unwrap();
        let geom = Geometry::new(&[4096], Some(&[64]), &device).unwrap();
        let run = |workers: usize| {
            let (_, counters) = run_ndrange_profiled(
                k.module(),
                k.func_ir(),
                &args,
                geom,
                &device,
                false,
                true,
                Some(workers),
                None,
            )
            .unwrap();
            counters.expect("collect=true yields counters")
        };
        let w1 = run(1);
        let w4 = run(4);
        assert!(
            w1.totals.l1_hits + w1.totals.l1_misses > 0,
            "cached device must record cache traffic"
        );
        assert_eq!(
            w1.totals.l2_hits + w1.totals.l2_misses,
            w1.totals.l1_misses,
            "L2 sees exactly the L1 misses"
        );
        assert_eq!(w1, w4, "cache counters must not depend on the pool size");
    }
}
