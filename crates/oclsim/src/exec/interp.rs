//! SIMT lock-step interpreter: executes one work-group of a kernel.
//!
//! All work-items ("lanes") of the group advance through the statement tree
//! together; per-lane control flow is realised with divergence masks
//! ([`super::mask::Mask`]). This gives OpenCL work-group semantics exactly:
//! `barrier()` is well-defined iff all lanes reach it with the same control
//! history (enforced — divergence is a trapped error, where real hardware
//! would deadlock or corrupt), and local memory is coherent within the
//! group because the group runs on one host thread.
//!
//! While executing, the interpreter charges architectural events to
//! [`GroupStats`]: instruction cycles per active warp and global-memory
//! transactions per warp after coalescing — the inputs of the timing model.

use std::collections::{BTreeMap, HashMap};

use crate::clc::ast::AddrSpace;
use crate::error::{Error, Result};
use crate::exec::ir::{Builtin, Ex, FuncIr, Module, St, StKind};
use crate::exec::launch::{BoundArg, Geometry};
use crate::exec::mask::Mask;
use crate::exec::ops;
use crate::prof::cache::{CacheConfig, GroupCacheSim, L2Record};
use crate::prof::counters::{GroupCounters, InstrClass};
use crate::timing::{CostModel, GroupStats};
use crate::types::ScalarType;

// ---- pointer encoding --------------------------------------------------------
// [63:60] tag, [59:48] base (arg index), [47:0] byte offset

pub(crate) const OFF_MASK: u64 = (1 << 48) - 1;
pub(crate) const BASE_SHIFT: u32 = 48;
pub(crate) const TAG_SHIFT: u32 = 60;
pub(crate) const TAG_GLOBAL: u64 = 1;
pub(crate) const TAG_CONST: u64 = 2;
pub(crate) const TAG_LOCAL: u64 = 3;
pub(crate) const TAG_PRIV: u64 = 4;

/// Build the pointer value for kernel argument `arg_idx` in `space`.
pub fn arg_pointer(arg_idx: usize, space: AddrSpace) -> u64 {
    let tag = match space {
        AddrSpace::Global => TAG_GLOBAL,
        AddrSpace::Constant => TAG_CONST,
        _ => unreachable!("kernel buffer args are global or constant"),
    };
    (tag << TAG_SHIFT) | ((arg_idx as u64) << BASE_SHIFT)
}

pub(crate) fn local_pointer(byte_offset: usize) -> u64 {
    (TAG_LOCAL << TAG_SHIFT) | byte_offset as u64
}

pub(crate) fn priv_pointer(byte_offset: usize) -> u64 {
    (TAG_PRIV << TAG_SHIFT) | byte_offset as u64
}

#[inline]
pub(crate) fn ptr_add(ptr: u64, delta_elems: i64, elem_size: usize) -> u64 {
    let off = ptr & OFF_MASK;
    let new =
        (off as i64).wrapping_add(delta_elems.wrapping_mul(elem_size as i64)) as u64 & OFF_MASK;
    (ptr & !OFF_MASK) | new
}

/// Execution environment shared by every work-group of a launch.
pub struct LaunchEnv<'a> {
    pub module: &'a Module,
    pub kernel: &'a FuncIr,
    pub args: &'a [BoundArg],
    pub geom: Geometry,
    pub cost: CostModel,
    pub simd: usize,
    /// Run the shadow-memory dynamic race sanitizer (tracks the last writer
    /// work-item and barrier epoch of every touched global/local cell).
    pub sanitize: bool,
    /// Collect per-group profiling counters ([`GroupCounters`]). Off by
    /// default: every counter hook is behind this flag, so a non-profiled
    /// launch pays nothing beyond the [`GroupStats`] it always kept.
    pub collect: bool,
    /// Cache-hierarchy capability of the launch device
    /// (`DeviceProfile::cache`). When present, both backends feed the
    /// charged transaction stream through a per-group L1 tag array and
    /// emit an L1-miss stream for the launch layer's shared L2 —
    /// independent of `collect`, because the cache-aware timing path needs
    /// the [`GroupStats`] hit/miss totals even without profiling.
    pub cache: Option<CacheConfig>,
}

/// One function activation record.
struct Frame {
    slots: Vec<Vec<u64>>,
    ret_mask: Mask,
    ret_val: Vec<u64>,
    brk_stack: Vec<Mask>,
    cont_stack: Vec<Mask>,
}

impl Frame {
    fn new(func: &FuncIr, nlanes: usize) -> Frame {
        Frame {
            slots: func.slots.iter().map(|_| vec![0u64; nlanes]).collect(),
            ret_mask: Mask::none(nlanes),
            ret_val: vec![0u64; nlanes],
            brk_stack: Vec::new(),
            cont_stack: Vec::new(),
        }
    }

    /// Lanes of `active` that are still running (no return/break/continue).
    fn live(&self, active: &Mask) -> Mask {
        let mut m = active.clone();
        m.and_not(&self.ret_mask);
        if let Some(b) = self.brk_stack.last() {
            m.and_not(b);
        }
        if let Some(c) = self.cont_stack.last() {
            m.and_not(c);
        }
        m
    }
}

/// Interpreter state for one work-group.
pub struct GroupRun<'a> {
    env: &'a LaunchEnv<'a>,
    nlanes: usize,
    /// Per-lane local (within group) ids per dimension.
    lid: [Vec<u64>; 3],
    /// Per-lane global ids per dimension.
    gid: [Vec<u64>; 3],
    group_id: [u64; 3],
    local_mem: Vec<u8>,
    priv_mem: Vec<u8>,
    priv_stride: usize,
    pub stats: GroupStats,
    /// Profiling counters, present iff `env.collect`.
    pub counters: Option<GroupCounters>,
    /// Per-source-line counters, present iff `env.collect`. Every delta
    /// applied to `counters` is also applied to the entry of the line
    /// currently executing (see [`Self::bump`]), so summing the map
    /// reproduces `counters` exactly.
    pub line_counters: Option<BTreeMap<usize, GroupCounters>>,
    /// 1-based source line of the statement being executed (0 = unknown).
    cur_line: usize,
    scratch: Vec<Vec<u64>>,
    call_depth: usize,
    /// Direct-mapped cache of recently touched memory segments, used for
    /// CPU-profile devices (SIMD width 1): a scalar core's caches make
    /// consecutive accesses to one line cost one memory transaction, where
    /// a GPU's coalescer needs the accesses to be simultaneous within a
    /// warp. `None` on wide-SIMT devices.
    seg_cache: Option<Vec<u64>>,
    /// Per-group L1 cache simulation, present iff the launch device has a
    /// cache capability. Charged transactions are buffered per warp and
    /// replayed through the tag array at every barrier and at the end of
    /// the run (see [`crate::prof::cache`] for why that order is the
    /// canonical, backend-independent one).
    cache: Option<GroupCacheSim>,
    /// Barrier epoch of this group (counts executed barriers), used by the
    /// shadow-memory race sanitizer.
    epoch: u32,
    /// Shadow memory for the dynamic race sanitizer: encoded pointer of
    /// every global/local cell written → (epoch, writer lane). `None` when
    /// the sanitizer is off. Intra-group only: cross-group races on global
    /// memory are the static checker's job.
    shadow: Option<HashMap<u64, (u32, u32)>>,
}

/// Lines in the CPU segment cache (x 64-byte segments = a 32 KiB L1).
const SEG_CACHE_LINES: usize = 512;

pub(crate) const MAX_CALL_DEPTH: usize = 64;

impl<'a> GroupRun<'a> {
    /// Prepare the interpreter for work-group `group` (per-dimension index).
    pub fn new(env: &'a LaunchEnv<'a>, group: [usize; 3]) -> GroupRun<'a> {
        let l = env.geom.local;
        let nlanes = l[0] * l[1] * l[2];
        let mut lid = [vec![0u64; nlanes], vec![0u64; nlanes], vec![0u64; nlanes]];
        let mut gid = [vec![0u64; nlanes], vec![0u64; nlanes], vec![0u64; nlanes]];
        for lane in 0..nlanes {
            // OpenCL linearisation: dimension 0 fastest
            let lx = lane % l[0];
            let ly = (lane / l[0]) % l[1];
            let lz = lane / (l[0] * l[1]);
            let lids = [lx, ly, lz];
            for d in 0..3 {
                lid[d][lane] = lids[d] as u64;
                gid[d][lane] = (group[d] * l[d] + lids[d]) as u64;
            }
        }
        GroupRun {
            env,
            nlanes,
            lid,
            gid,
            group_id: [group[0] as u64, group[1] as u64, group[2] as u64],
            local_mem: vec![0u8; env.kernel.local_bytes()],
            priv_mem: vec![0u8; env.kernel.priv_bytes_per_lane() * nlanes],
            priv_stride: env.kernel.priv_bytes_per_lane(),
            stats: GroupStats::default(),
            counters: env.collect.then(GroupCounters::default),
            line_counters: env.collect.then(BTreeMap::new),
            cur_line: 0,
            scratch: Vec::new(),
            call_depth: 0,
            seg_cache: if env.simd == 1 {
                Some(vec![u64::MAX; SEG_CACHE_LINES])
            } else {
                None
            },
            cache: env
                .cache
                .as_ref()
                .map(|cc| GroupCacheSim::new(cc, env.cost.segment_bytes as u64)),
            epoch: 0,
            shadow: env.sanitize.then(HashMap::new),
        }
    }

    /// Shadow-memory write hook: a cell written by two different work-items
    /// in the same barrier epoch is a write-write race.
    fn shadow_write(&mut self, ptr: u64, lane: usize, space: &'static str) -> Result<()> {
        let epoch = self.epoch;
        let Some(shadow) = &mut self.shadow else {
            return Ok(());
        };
        if let Some(&(e, l)) = shadow.get(&ptr) {
            if e == epoch && l != lane as u32 {
                return Err(Error::DataRace {
                    space,
                    offset: ptr & OFF_MASK,
                    detail: format!(
                        "work-items {l} and {lane} of one group both wrote this cell \
                         with no barrier in between"
                    ),
                });
            }
        }
        shadow.insert(ptr, (epoch, lane as u32));
        Ok(())
    }

    /// Shadow-memory read hook: reading a cell another work-item wrote in
    /// the same barrier epoch is a read-write race.
    fn shadow_read(&self, ptr: u64, lane: usize, space: &'static str) -> Result<()> {
        let Some(shadow) = &self.shadow else {
            return Ok(());
        };
        if let Some(&(e, l)) = shadow.get(&ptr) {
            if e == self.epoch && l != lane as u32 {
                return Err(Error::DataRace {
                    space,
                    offset: ptr & OFF_MASK,
                    detail: format!(
                        "work-item {lane} read a cell work-item {l} wrote \
                         with no barrier in between"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Run the kernel body for every lane of this group.
    pub fn run(&mut self) -> Result<()> {
        let kernel = self.env.kernel;
        let mut frame = Frame::new(kernel, self.nlanes);
        // bind parameters
        for (i, arg) in self.env.args.iter().enumerate() {
            let v = match arg {
                BoundArg::Buffer { space, .. } => arg_pointer(i, *space),
                BoundArg::Scalar { bits, .. } => *bits,
            };
            frame.slots[i].fill(v);
        }
        let full = Mask::full(self.nlanes);
        let result = self.exec_block(&kernel.body, &mut frame, &full);
        self.flush_cache();
        result
    }

    /// Drain the L1-miss stream accumulated by the cache model (empty when
    /// the device has no cache capability). Harvested once per group by
    /// the launch layer and replayed through the shared L2.
    pub fn take_l2_stream(&mut self) -> Vec<L2Record> {
        self.cache
            .as_mut()
            .map(|sim| std::mem::take(&mut sim.l2_stream))
            .unwrap_or_default()
    }

    /// Replay the buffered warp accesses through the group's L1 in
    /// canonical order, attributing every hit/miss to its source line —
    /// the cache model's analog of [`Self::bump`]: group totals and the
    /// per-line map move together, so sums stay equal by construction.
    fn flush_cache(&mut self) {
        let Some(mut sim) = self.cache.take() else {
            return;
        };
        sim.flush(|dsl, hit| {
            if hit {
                self.stats.l1_hits += 1;
            } else {
                self.stats.l1_misses += 1;
            }
            if let Some(c) = &mut self.counters {
                let lc = self
                    .line_counters
                    .as_mut()
                    .expect("line_counters allocated together with counters")
                    .entry(dsl as usize)
                    .or_default();
                if hit {
                    c.l1_hits += 1;
                    lc.l1_hits += 1;
                } else {
                    c.l1_misses += 1;
                    lc.l1_misses += 1;
                }
            }
        });
        self.cache = Some(sim);
    }

    // ---- helpers --------------------------------------------------------

    fn take_scratch(&mut self) -> Vec<u64> {
        match self.scratch.pop() {
            Some(mut v) => {
                debug_assert_eq!(v.len(), self.nlanes);
                v.iter_mut().for_each(|x| *x = 0);
                v
            }
            None => vec![0u64; self.nlanes],
        }
    }

    fn give_scratch(&mut self, v: Vec<u64>) {
        if self.scratch.len() < 64 {
            self.scratch.push(v);
        }
    }

    /// Apply a counter delta to the group totals *and* to the counters of
    /// the source line currently executing. Routing every profiling update
    /// through here makes "per-line sums equal the launch totals" an
    /// invariant by construction rather than a convention.
    #[inline]
    fn bump(&mut self, f: impl Fn(&mut GroupCounters)) {
        if let Some(c) = &mut self.counters {
            f(c);
            let lines = self
                .line_counters
                .as_mut()
                .expect("line_counters allocated together with counters");
            f(lines.entry(self.cur_line).or_default());
        }
    }

    #[inline]
    fn charge(&mut self, cost: u32, mask: &Mask, class: InstrClass) {
        let warps = mask.active_warps(self.env.simd) as u64;
        self.stats.cycles += cost as u64 * warps;
        self.stats.instructions += warps;
        let simd = self.env.simd;
        if self.counters.is_some() {
            let covered = mask.covered_lanes(simd) as u64;
            let active = mask.count() as u64;
            self.bump(|c| {
                c.instr.add(class, warps);
                c.lane_cycles_issued += cost as u64 * covered;
                c.divergence_lost_cycles += cost as u64 * (covered - active);
            });
        }
    }

    /// Charge global-memory transactions for the addresses of active lanes.
    /// On SIMT devices, accesses coalesce per warp within the segment size;
    /// on scalar (CPU-profile) devices, a direct-mapped segment cache
    /// models line reuse across consecutive accesses.
    fn charge_global(&mut self, addrs: &[u64], size: usize, mask: &Mask) {
        let seg = self.env.cost.segment_bytes as u64;
        let cur_line = self.cur_line as u32;
        let mut tx = 0u64;
        let mut min_tx = 0u64;
        if let Some(cache) = &mut self.seg_cache {
            let mut sim = self.cache.as_mut();
            for lane in mask.iter() {
                let a = addrs[lane];
                let first = a / seg;
                let last = (a + size as u64 - 1) / seg;
                min_tx += last - first + 1;
                for s in first..=last {
                    let slot = (s as usize) % SEG_CACHE_LINES;
                    if cache[slot] != s {
                        cache[slot] = s;
                        tx += 1;
                        // scalar cores have no warps: each transaction the
                        // segment cache lets through is its own access on
                        // stream 0 (ref-only — wg requires simd >= 2)
                        if let Some(sim) = sim.as_deref_mut() {
                            sim.record(0, s, cur_line, true);
                        }
                    }
                }
            }
        } else {
            let simd = self.env.simd;
            let mut warp_segs: Vec<u64> = Vec::with_capacity(simd);
            let nwarps = self.nlanes.div_ceil(simd);
            for w in 0..nwarps {
                warp_segs.clear();
                let lo = w * simd;
                let hi = ((w + 1) * simd).min(self.nlanes);
                let mut active_in_warp = 0u64;
                for (lane, &a) in addrs.iter().enumerate().take(hi).skip(lo) {
                    if mask.get(lane) {
                        active_in_warp += 1;
                        // an access may straddle two segments
                        warp_segs.push(a / seg);
                        let last = (a + size as u64 - 1) / seg;
                        if last != a / seg {
                            warp_segs.push(last);
                        }
                    }
                }
                if warp_segs.is_empty() {
                    continue;
                }
                // the perfectly coalesced warp would pack the same bytes
                // into back-to-back segments
                min_tx += (active_in_warp * size as u64).div_ceil(seg).max(1);
                warp_segs.sort_unstable();
                warp_segs.dedup();
                tx += warp_segs.len() as u64;
                if let Some(sim) = &mut self.cache {
                    for (i, &s) in warp_segs.iter().enumerate() {
                        sim.record(w, s, cur_line, i == 0);
                    }
                }
            }
        }
        self.stats.mem_transactions += tx;
        let bytes = mask.count() as u64 * size as u64;
        self.bump(|c| {
            c.mem_transactions += tx;
            c.mem_transactions_min += min_tx;
            c.global_bytes += bytes;
        });
        self.charge(self.env.cost.mem_issue, mask, InstrClass::Mem);
    }

    /// Local-memory counter hook: counts lane accesses and, on SIMT
    /// devices, bank conflicts — lanes of one warp addressing *distinct*
    /// 4-byte words that map to the same of 32 banks serialise into extra
    /// passes (same-word access is a broadcast, not a conflict).
    fn charge_local_counters(&mut self, addrs: &[u64], mask: &Mask) {
        if self.counters.is_none() {
            return;
        }
        let accesses = mask.count() as u64;
        let simd = self.env.simd;
        let mut conflicts = 0u64;
        if simd > 1 {
            const BANKS: u64 = 32;
            let nwarps = self.nlanes.div_ceil(simd);
            let mut words: Vec<(u64, u64)> = Vec::with_capacity(simd);
            for w in 0..nwarps {
                words.clear();
                let lo = w * simd;
                let hi = ((w + 1) * simd).min(self.nlanes);
                for (lane, &a) in addrs.iter().enumerate().take(hi).skip(lo) {
                    if mask.get(lane) {
                        let word = (a & OFF_MASK) / 4;
                        words.push((word % BANKS, word));
                    }
                }
                words.sort_unstable();
                words.dedup();
                let mut i = 0;
                while i < words.len() {
                    let bank = words[i].0;
                    let mut in_bank = 0u64;
                    while i < words.len() && words[i].0 == bank {
                        in_bank += 1;
                        i += 1;
                    }
                    conflicts += in_bank - 1;
                }
            }
        }
        self.bump(|c| {
            c.local_accesses += accesses;
            c.bank_conflicts += conflicts;
        });
    }

    /// Attribute lane-granular arithmetic to the op/flop counters.
    #[inline]
    fn count_ops(&mut self, mask: &Mask, is_float: bool, per_lane: u64) {
        if self.counters.is_some() {
            let n = mask.count() as u64 * per_lane;
            self.bump(|c| {
                c.arith_ops += n;
                if is_float {
                    c.flops += n;
                }
            });
        }
    }

    fn buffer_for(&self, ptr: u64) -> Result<&crate::buffer::Buffer> {
        buffer_for(self.env.args, ptr)
    }

    fn load_lane(&self, ptr: u64, elem: ScalarType) -> Result<u64> {
        load_lane_mem(self.env.args, &self.local_mem, &self.priv_mem, ptr, elem)
    }

    fn store_lane(&mut self, ptr: u64, elem: ScalarType, bits: u64) -> Result<()> {
        store_lane_mem(
            self.env.args,
            &mut self.local_mem,
            &mut self.priv_mem,
            ptr,
            elem,
            bits,
        )
    }

    /// Rewrite a private-space pointer to the lane's own copy.
    #[inline]
    fn lane_priv(&self, ptr: u64, lane: usize) -> u64 {
        lane_priv(ptr, lane, self.priv_stride)
    }

    // ---- statement execution ---------------------------------------------

    fn exec_block(&mut self, stmts: &[St], frame: &mut Frame, active: &Mask) -> Result<()> {
        for st in stmts {
            let live = frame.live(active);
            if !live.any() {
                break;
            }
            self.exec_stmt(st, frame, &live)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, st: &St, frame: &mut Frame, live: &Mask) -> Result<()> {
        if st.span.line != 0 {
            self.cur_line = st.span.line;
        }
        match &st.kind {
            StKind::SetSlot { slot, value } => {
                let v = self.eval(value, live, frame)?;
                for lane in live.iter() {
                    frame.slots[*slot][lane] = v[lane];
                }
                self.give_scratch(v);
            }
            StKind::Store {
                addr,
                elem,
                space,
                value,
            } => {
                let a = self.eval(addr, live, frame)?;
                let v = self.eval(value, live, frame)?;
                match space {
                    AddrSpace::Global | AddrSpace::Constant => {
                        self.charge_global(&a, elem.size(), live);
                        for lane in live.iter() {
                            self.store_lane(a[lane], *elem, v[lane])?;
                            self.shadow_write(a[lane], lane, "global")?;
                        }
                    }
                    AddrSpace::Local => {
                        self.charge(self.env.cost.local_access, live, InstrClass::Local);
                        self.stats.local_accesses += live.count() as u64;
                        self.charge_local_counters(&a, live);
                        for lane in live.iter() {
                            self.store_lane(a[lane], *elem, v[lane])?;
                            self.shadow_write(a[lane], lane, "local")?;
                        }
                    }
                    AddrSpace::Private => {
                        self.charge(self.env.cost.int_alu, live, InstrClass::Other);
                        for lane in live.iter() {
                            self.store_lane(self.lane_priv(a[lane], lane), *elem, v[lane])?;
                        }
                    }
                }
                self.give_scratch(a);
                self.give_scratch(v);
            }
            StKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.eval(cond, live, frame)?;
                self.charge(1, live, InstrClass::Control); // branch
                let mut t_mask = live.clone();
                t_mask.and_truthy(&c);
                let mut f_mask = live.clone();
                f_mask.and_falsy(&c);
                self.give_scratch(c);
                if t_mask.any() {
                    self.exec_block(then_blk, frame, &t_mask)?;
                }
                if f_mask.any() {
                    self.exec_block(else_blk, frame, &f_mask)?;
                }
            }
            StKind::Loop {
                cond,
                body,
                step,
                check_first,
            } => {
                let mut loop_active = live.clone();
                if *check_first {
                    let c = self.eval(cond, &loop_active, frame)?;
                    self.charge(1, &loop_active, InstrClass::Control);
                    loop_active.and_truthy(&c);
                    self.give_scratch(c);
                }
                while loop_active.any() {
                    frame.brk_stack.push(Mask::none(self.nlanes));
                    frame.cont_stack.push(Mask::none(self.nlanes));
                    self.exec_block(body, frame, &loop_active)?;
                    let brk = frame.brk_stack.pop().expect("pushed above");
                    frame.cont_stack.pop();
                    loop_active.and_not(&brk);
                    loop_active.and_not(&frame.ret_mask);
                    if !loop_active.any() {
                        break;
                    }
                    // `continue` lanes rejoin for the step and next test
                    self.exec_block(step, frame, &loop_active)?;
                    loop_active.and_not(&frame.ret_mask);
                    if !loop_active.any() {
                        break;
                    }
                    // the loop test is charged to the loop-header line, not
                    // to whatever line the body ended on
                    if st.span.line != 0 {
                        self.cur_line = st.span.line;
                    }
                    let c = self.eval(cond, &loop_active, frame)?;
                    self.charge(1, &loop_active, InstrClass::Control);
                    loop_active.and_truthy(&c);
                    self.give_scratch(c);
                }
            }
            StKind::Return(val) => {
                if let Some(v) = val {
                    let bits = self.eval(v, live, frame)?;
                    for lane in live.iter() {
                        frame.ret_val[lane] = bits[lane];
                    }
                    self.give_scratch(bits);
                }
                frame.ret_mask.or(live);
            }
            StKind::Break => {
                let b = frame
                    .brk_stack
                    .last_mut()
                    .expect("sema guarantees break is inside a loop");
                b.or(live);
            }
            StKind::Continue => {
                let c = frame
                    .cont_stack
                    .last_mut()
                    .expect("sema guarantees continue is inside a loop");
                c.or(live);
            }
            StKind::Barrier { .. } => {
                // every lane of the group must reach the barrier together;
                // lanes that returned or diverged make it undefined
                // behaviour in OpenCL — trapped here
                if self.call_depth == 0 {
                    if live.count() != self.nlanes {
                        return Err(Error::BarrierDivergence(format!(
                            "barrier reached by {}/{} work-items of the group",
                            live.count(),
                            self.nlanes
                        )));
                    }
                } else if live.count() != self.nlanes {
                    return Err(Error::BarrierDivergence(
                        "barrier inside a helper function reached under divergent control flow"
                            .into(),
                    ));
                }
                self.stats.barriers += 1;
                // a barrier synchronises the whole group once — a fixed
                // cost, not a per-lane one
                self.stats.cycles += self.env.cost.barrier as u64;
                self.stats.instructions += 1;
                let barrier_cycles = self.env.cost.barrier as u64;
                self.bump(|c| {
                    c.barriers += 1;
                    c.barrier_stall_cycles += barrier_cycles;
                    c.instr.add(InstrClass::Control, 1);
                });
                // the sanitizer's happens-before resets at the barrier
                self.epoch += 1;
                // the barrier is also a canonical cache replay point: both
                // backends reach it at the same kernel position, so the L1
                // sees identical access sequences either way
                self.flush_cache();
                // lock-step execution means memory is already consistent
            }
            StKind::ExprSt(e) => {
                let v = self.eval(e, live, frame)?;
                self.give_scratch(v);
            }
        }
        Ok(())
    }

    // ---- expression evaluation ---------------------------------------------

    fn eval(&mut self, e: &Ex, mask: &Mask, frame: &Frame) -> Result<Vec<u64>> {
        match e {
            Ex::Const { bits, .. } => {
                let mut out = self.take_scratch();
                out.fill(*bits);
                Ok(out)
            }
            Ex::Slot { slot, .. } => {
                let mut out = self.take_scratch();
                out.copy_from_slice(&frame.slots[*slot]);
                Ok(out)
            }
            Ex::LocalBase { alloc, .. } => {
                let off = self.env.kernel.local_allocs[*alloc].byte_offset;
                let mut out = self.take_scratch();
                out.fill(local_pointer(off));
                Ok(out)
            }
            Ex::PrivBase { alloc, .. } => {
                let off = self.env.kernel.priv_allocs[*alloc].byte_offset;
                let mut out = self.take_scratch();
                out.fill(priv_pointer(off));
                Ok(out)
            }
            Ex::PtrAdd {
                ptr,
                offset,
                elem_size,
            } => {
                let mut p = self.eval(ptr, mask, frame)?;
                let o = self.eval(offset, mask, frame)?;
                self.charge(self.env.cost.int_alu, mask, InstrClass::Int);
                for lane in mask.iter() {
                    p[lane] = ptr_add(p[lane], o[lane] as i64, *elem_size);
                }
                self.give_scratch(o);
                Ok(p)
            }
            Ex::Load { addr, elem, space } => {
                let a = self.eval(addr, mask, frame)?;
                let mut out = self.take_scratch();
                match space {
                    AddrSpace::Global | AddrSpace::Constant => {
                        self.charge_global(&a, elem.size(), mask);
                    }
                    AddrSpace::Local => {
                        self.charge(self.env.cost.local_access, mask, InstrClass::Local);
                        self.stats.local_accesses += mask.count() as u64;
                        self.charge_local_counters(&a, mask);
                    }
                    AddrSpace::Private => {
                        self.charge(self.env.cost.int_alu, mask, InstrClass::Other);
                    }
                }
                for lane in mask.iter() {
                    let ptr = if *space == AddrSpace::Private {
                        self.lane_priv(a[lane], lane)
                    } else {
                        a[lane]
                    };
                    out[lane] = self.load_lane(ptr, *elem)?;
                    match space {
                        AddrSpace::Global => self.shadow_read(ptr, lane, "global")?,
                        AddrSpace::Local => self.shadow_read(ptr, lane, "local")?,
                        AddrSpace::Constant | AddrSpace::Private => {}
                    }
                }
                self.give_scratch(a);
                Ok(out)
            }
            Ex::Bin { op, ty, l, r } => {
                let a = self.eval(l, mask, frame)?;
                let mut b = self.eval(r, mask, frame)?;
                let class = if ty.is_float() {
                    InstrClass::Float
                } else {
                    InstrClass::Int
                };
                self.charge(bin_cost(&self.env.cost, *op, *ty), mask, class);
                self.count_ops(mask, ty.is_float(), 1);
                for lane in mask.iter() {
                    b[lane] = ops::bin_op(*op, *ty, a[lane], b[lane])?;
                }
                self.give_scratch(a);
                Ok(b)
            }
            Ex::Cmp { op, ty, l, r } => {
                let a = self.eval(l, mask, frame)?;
                let mut b = self.eval(r, mask, frame)?;
                self.charge(self.env.cost.int_alu, mask, InstrClass::Int);
                for lane in mask.iter() {
                    b[lane] = ops::cmp_op(*op, *ty, a[lane], b[lane]);
                }
                self.give_scratch(a);
                Ok(b)
            }
            Ex::LogAnd { l, r } => {
                let mut a = self.eval(l, mask, frame)?;
                let mut rhs_mask = mask.clone();
                rhs_mask.and_truthy(&a);
                if rhs_mask.any() {
                    let b = self.eval(r, &rhs_mask, frame)?;
                    for lane in rhs_mask.iter() {
                        a[lane] = b[lane];
                    }
                    self.give_scratch(b);
                }
                Ok(a)
            }
            Ex::LogOr { l, r } => {
                let mut a = self.eval(l, mask, frame)?;
                let mut rhs_mask = mask.clone();
                rhs_mask.and_falsy(&a);
                if rhs_mask.any() {
                    let b = self.eval(r, &rhs_mask, frame)?;
                    for lane in rhs_mask.iter() {
                        a[lane] = b[lane];
                    }
                    self.give_scratch(b);
                }
                Ok(a)
            }
            Ex::Un { op, ty, e } => {
                let mut a = self.eval(e, mask, frame)?;
                let class = if ty.is_float() {
                    InstrClass::Float
                } else {
                    InstrClass::Int
                };
                self.charge(self.env.cost.int_alu, mask, class);
                self.count_ops(mask, ty.is_float(), 1);
                for lane in mask.iter() {
                    a[lane] = ops::un_op(*op, *ty, a[lane]);
                }
                Ok(a)
            }
            Ex::Cast { from, to, e } => {
                let mut a = self.eval(e, mask, frame)?;
                self.charge(self.env.cost.cast, mask, InstrClass::Other);
                for lane in mask.iter() {
                    a[lane] = ops::cast_bits(a[lane], *from, *to);
                }
                Ok(a)
            }
            Ex::Select { cond, t, f, .. } => {
                let c = self.eval(cond, mask, frame)?;
                let mut t_mask = mask.clone();
                t_mask.and_truthy(&c);
                let mut f_mask = mask.clone();
                f_mask.and_falsy(&c);
                self.give_scratch(c);
                let mut out = self.take_scratch();
                if t_mask.any() {
                    let tv = self.eval(t, &t_mask, frame)?;
                    for lane in t_mask.iter() {
                        out[lane] = tv[lane];
                    }
                    self.give_scratch(tv);
                }
                if f_mask.any() {
                    let fv = self.eval(f, &f_mask, frame)?;
                    for lane in f_mask.iter() {
                        out[lane] = fv[lane];
                    }
                    self.give_scratch(fv);
                }
                self.charge(self.env.cost.int_alu, mask, InstrClass::Int);
                Ok(out)
            }
            Ex::CallBuiltin { b, ty, args } => self.eval_builtin(*b, *ty, args, mask, frame),
            Ex::CallFunc { func, args, .. } => self.eval_call(*func, args, mask, frame),
        }
    }

    fn eval_builtin(
        &mut self,
        b: Builtin,
        ty: ScalarType,
        args: &[Ex],
        mask: &Mask,
        frame: &Frame,
    ) -> Result<Vec<u64>> {
        use Builtin::*;
        if b.is_geometry() {
            self.charge(self.env.cost.int_alu, mask, InstrClass::Int);
            let mut out = self.take_scratch();
            if b == GetWorkDim {
                out.fill(self.env.geom.work_dim as u64);
                return Ok(out);
            }
            let dims = self.eval(&args[0], mask, frame)?;
            for lane in mask.iter() {
                let d = (dims[lane] as u32).min(2) as usize;
                out[lane] = match b {
                    GetGlobalId => self.gid[d][lane],
                    GetLocalId => self.lid[d][lane],
                    GetGroupId => self.group_id[d],
                    GetGlobalSize => self.env.geom.global[d] as u64,
                    GetLocalSize => self.env.geom.local[d] as u64,
                    GetNumGroups => self.env.geom.num_groups()[d] as u64,
                    _ => unreachable!(),
                };
            }
            self.give_scratch(dims);
            return Ok(out);
        }
        if b.is_atomic() {
            return self.eval_atomic(b, ty, args, mask, frame);
        }
        // math builtins
        let cost = math_cost(&self.env.cost, b, ty);
        let class = math_class(b);
        match args.len() {
            1 => {
                let mut a = self.eval(&args[0], mask, frame)?;
                self.charge(cost, mask, class);
                self.count_ops(mask, ty.is_float(), 1);
                if b == AbsI {
                    for lane in mask.iter() {
                        a[lane] = if ty.is_signed() {
                            let v = (a[lane] as i64).wrapping_abs();
                            ops::cast_bits(v as u64, ScalarType::I64, ty)
                        } else {
                            a[lane]
                        };
                    }
                } else {
                    let f = math1_fn(b);
                    for lane in mask.iter() {
                        a[lane] = ops::math1(f, ty, a[lane]);
                    }
                }
                Ok(a)
            }
            2 => {
                let a = self.eval(&args[0], mask, frame)?;
                let mut c = self.eval(&args[1], mask, frame)?;
                self.charge(cost, mask, class);
                self.count_ops(mask, ty.is_float(), 1);
                if matches!(b, MaxI | MinI) {
                    for lane in mask.iter() {
                        c[lane] = int_minmax(b, ty, a[lane], c[lane]);
                    }
                } else {
                    let f = math2_fn(b);
                    for lane in mask.iter() {
                        c[lane] = ops::math2(&f, ty, a[lane], c[lane]);
                    }
                }
                self.give_scratch(a);
                Ok(c)
            }
            3 => {
                let a = self.eval(&args[0], mask, frame)?;
                let bv = self.eval(&args[1], mask, frame)?;
                let mut c = self.eval(&args[2], mask, frame)?;
                self.charge(cost, mask, class);
                // fused multiply-add: two flops per lane
                self.count_ops(mask, ty.is_float(), 2);
                for lane in mask.iter() {
                    c[lane] = ops::math3(|x, y, z| x * y + z, ty, a[lane], bv[lane], c[lane]);
                }
                self.give_scratch(a);
                self.give_scratch(bv);
                Ok(c)
            }
            _ => unreachable!("sema checks builtin arities"),
        }
    }

    fn eval_atomic(
        &mut self,
        b: Builtin,
        ty: ScalarType,
        args: &[Ex],
        mask: &Mask,
        frame: &Frame,
    ) -> Result<Vec<u64>> {
        use Builtin::*;
        let ptrs = self.eval(&args[0], mask, frame)?;
        let operands = if args.len() > 1 {
            Some(self.eval(&args[1], mask, frame)?)
        } else {
            None
        };
        self.charge(self.env.cost.atomic, mask, InstrClass::Atomic);
        self.stats.mem_transactions += mask.count() as u64; // atomics serialise
        let n = mask.count() as u64;
        // serialised by definition: issued == minimal, so atomics are
        // neutral for the coalescing-efficiency metric
        self.bump(|c| {
            c.mem_transactions += n;
            c.mem_transactions_min += n;
            c.arith_ops += n;
        });
        let mut out = self.take_scratch();
        for lane in mask.iter() {
            let ptr = ptrs[lane];
            let operand = operands.as_ref().map(|o| o[lane] as u32).unwrap_or(1);
            let off = ptr & OFF_MASK;
            let old = match ptr >> TAG_SHIFT {
                TAG_GLOBAL => {
                    let buf = self.buffer_for(ptr)?;
                    if !buf.device_access_ok(off, 4) {
                        return Err(Error::MemoryFault {
                            space: "global",
                            offset: off,
                            len: 4,
                            detail: "atomic out of bounds".into(),
                        });
                    }
                    match b {
                        AtomicAdd | AtomicInc => buf.device_atomic_add_u32(off, operand),
                        AtomicSub | AtomicDec => {
                            buf.device_atomic_add_u32(off, operand.wrapping_neg())
                        }
                        AtomicXchg => {
                            let mut prev = buf.device_load(off, 4) as u32;
                            loop {
                                let got = buf.device_atomic_cmpxchg_u32(off, prev, operand);
                                if got == prev {
                                    break;
                                }
                                prev = got;
                            }
                            prev
                        }
                        AtomicMin | AtomicMax => {
                            let mut prev = buf.device_load(off, 4) as u32;
                            loop {
                                let new = atomic_minmax(b, ty, prev, operand);
                                let got = buf.device_atomic_cmpxchg_u32(off, prev, new);
                                if got == prev {
                                    break;
                                }
                                prev = got;
                            }
                            prev
                        }
                        _ => unreachable!(),
                    }
                }
                TAG_LOCAL => {
                    // the group is single-threaded: plain read-modify-write
                    let off = off as usize;
                    if !off.is_multiple_of(4) || off + 4 > self.local_mem.len() {
                        return Err(Error::MemoryFault {
                            space: "local",
                            offset: off as u64,
                            len: 4,
                            detail: "atomic out of bounds".into(),
                        });
                    }
                    let old = load_le(&self.local_mem[off..off + 4]) as u32;
                    let new = match b {
                        AtomicAdd | AtomicInc => old.wrapping_add(operand),
                        AtomicSub | AtomicDec => old.wrapping_sub(operand),
                        AtomicXchg => operand,
                        AtomicMin | AtomicMax => atomic_minmax(b, ty, old, operand),
                        _ => unreachable!(),
                    };
                    store_le(&mut self.local_mem[off..off + 4], new as u64);
                    old
                }
                _ => {
                    return Err(Error::MemoryFault {
                        space: "unknown",
                        offset: off,
                        len: 4,
                        detail: "atomic on non-global/local pointer".into(),
                    })
                }
            };
            out[lane] = ops::cast_bits(old as u64, ScalarType::U32, ty);
        }
        self.give_scratch(ptrs);
        if let Some(o) = operands {
            self.give_scratch(o);
        }
        Ok(out)
    }

    fn eval_call(
        &mut self,
        func: usize,
        args: &[Ex],
        mask: &Mask,
        frame: &Frame,
    ) -> Result<Vec<u64>> {
        if self.call_depth >= MAX_CALL_DEPTH {
            return Err(Error::InvalidOperation(
                "device call stack overflow (recursion is not supported in OpenCL C)".into(),
            ));
        }
        let callee = &self.env.module.funcs[func];
        let mut callee_frame = Frame::new(callee, self.nlanes);
        for (i, a) in args.iter().enumerate() {
            let v = self.eval(a, mask, frame)?;
            callee_frame.slots[i].copy_from_slice(&v);
            self.give_scratch(v);
        }
        self.charge(2, mask, InstrClass::Control); // call overhead
        self.call_depth += 1;
        // callee statements attribute to their own source lines; charges
        // after the call fall back to the call site's line
        let saved_line = self.cur_line;
        let result = self.exec_block(&callee.body, &mut callee_frame, mask);
        self.cur_line = saved_line;
        self.call_depth -= 1;
        result?;
        let mut out = self.take_scratch();
        out.copy_from_slice(&callee_frame.ret_val);
        Ok(out)
    }
}

/// Resolve the buffer a global/constant pointer refers to (shared by the
/// SIMT interpreter and the [`super::wg`] bytecode VM so both produce the
/// same faults).
pub(crate) fn buffer_for(args: &[BoundArg], ptr: u64) -> Result<&crate::buffer::Buffer> {
    let base = ((ptr >> BASE_SHIFT) & 0xFFF) as usize;
    match args.get(base) {
        Some(BoundArg::Buffer { buffer, .. }) => Ok(buffer),
        _ => Err(Error::MemoryFault {
            space: "global",
            offset: ptr & OFF_MASK,
            len: 0,
            detail: format!("pointer references argument {base}, which is not a buffer"),
        }),
    }
}

/// Load one lane's element through an encoded pointer. Private-space
/// pointers must already be rewritten to the lane's copy (see
/// [`lane_priv`]).
pub(crate) fn load_lane_mem(
    args: &[BoundArg],
    local_mem: &[u8],
    priv_mem: &[u8],
    ptr: u64,
    elem: ScalarType,
) -> Result<u64> {
    let size = elem.size();
    let off = ptr & OFF_MASK;
    let raw = match ptr >> TAG_SHIFT {
        TAG_GLOBAL | TAG_CONST => {
            let buf = buffer_for(args, ptr)?;
            if !buf.device_access_ok(off, size) {
                return Err(Error::MemoryFault {
                    space: "global",
                    offset: off,
                    len: size as u64,
                    detail: format!("buffer is {} bytes", buf.len_bytes()),
                });
            }
            buf.device_load(off, size)
        }
        TAG_LOCAL => {
            let off = off as usize;
            if !off.is_multiple_of(size) || off + size > local_mem.len() {
                return Err(Error::MemoryFault {
                    space: "local",
                    offset: off as u64,
                    len: size as u64,
                    detail: format!("local memory is {} bytes", local_mem.len()),
                });
            }
            load_le(&local_mem[off..off + size])
        }
        TAG_PRIV => {
            // the caller rewrote the offset to include the lane base
            let off = off as usize;
            if off + size > priv_mem.len() {
                return Err(Error::MemoryFault {
                    space: "private",
                    offset: off as u64,
                    len: size as u64,
                    detail: "private array overrun".into(),
                });
            }
            load_le(&priv_mem[off..off + size])
        }
        _ => {
            return Err(Error::MemoryFault {
                space: "unknown",
                offset: off,
                len: size as u64,
                detail: "dereference of a non-pointer value".into(),
            })
        }
    };
    // canonicalise: sign-extend signed loads
    Ok(if elem.is_signed() {
        ops::cast_bits(raw, unsigned_twin(elem), elem)
    } else if elem == ScalarType::F32 {
        raw & 0xFFFF_FFFF
    } else {
        raw
    })
}

/// Store one lane's element through an encoded pointer (see
/// [`load_lane_mem`]).
pub(crate) fn store_lane_mem(
    args: &[BoundArg],
    local_mem: &mut [u8],
    priv_mem: &mut [u8],
    ptr: u64,
    elem: ScalarType,
    bits: u64,
) -> Result<()> {
    let size = elem.size();
    let off = ptr & OFF_MASK;
    match ptr >> TAG_SHIFT {
        TAG_GLOBAL => {
            let buf = buffer_for(args, ptr)?;
            if !buf.device_access_ok(off, size) {
                return Err(Error::MemoryFault {
                    space: "global",
                    offset: off,
                    len: size as u64,
                    detail: format!("buffer is {} bytes", buf.len_bytes()),
                });
            }
            buf.device_store(off, size, bits);
            Ok(())
        }
        TAG_CONST => Err(Error::MemoryFault {
            space: "constant",
            offset: off,
            len: size as u64,
            detail: "store through a __constant pointer".into(),
        }),
        TAG_LOCAL => {
            let off = off as usize;
            if !off.is_multiple_of(size) || off + size > local_mem.len() {
                return Err(Error::MemoryFault {
                    space: "local",
                    offset: off as u64,
                    len: size as u64,
                    detail: format!("local memory is {} bytes", local_mem.len()),
                });
            }
            store_le(&mut local_mem[off..off + size], bits);
            Ok(())
        }
        TAG_PRIV => {
            let off = off as usize;
            if off + size > priv_mem.len() {
                return Err(Error::MemoryFault {
                    space: "private",
                    offset: off as u64,
                    len: size as u64,
                    detail: "private array overrun".into(),
                });
            }
            store_le(&mut priv_mem[off..off + size], bits);
            Ok(())
        }
        _ => Err(Error::MemoryFault {
            space: "unknown",
            offset: off,
            len: size as u64,
            detail: "store through a non-pointer value".into(),
        }),
    }
}

/// Rewrite a private-space pointer to a specific lane's copy.
#[inline]
pub(crate) fn lane_priv(ptr: u64, lane: usize, priv_stride: usize) -> u64 {
    (TAG_PRIV << TAG_SHIFT) | ((ptr & OFF_MASK) + (lane * priv_stride) as u64)
}

#[inline]
pub(crate) fn load_le(bytes: &[u8]) -> u64 {
    let mut raw = [0u8; 8];
    raw[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(raw)
}

#[inline]
pub(crate) fn store_le(bytes: &mut [u8], bits: u64) {
    let raw = bits.to_le_bytes();
    bytes.copy_from_slice(&raw[..bytes.len()]);
}

pub(crate) fn unsigned_twin(t: ScalarType) -> ScalarType {
    match t {
        ScalarType::I8 => ScalarType::U8,
        ScalarType::I16 => ScalarType::U16,
        ScalarType::I32 => ScalarType::U32,
        ScalarType::I64 => ScalarType::U64,
        other => other,
    }
}

pub(crate) fn bin_cost(cm: &CostModel, op: crate::exec::ir::BOp, ty: ScalarType) -> u32 {
    use crate::exec::ir::BOp::*;
    if ty.is_float() {
        let base = match op {
            Add | Sub | Mul => cm.f32_alu,
            Div => cm.f32_div,
            _ => cm.f32_alu,
        };
        cm.float_cost(base, ty)
    } else {
        match op {
            Mul => cm.int_mul,
            Div | Rem => cm.int_div,
            _ => cm.int_alu,
        }
    }
}

pub(crate) fn math_cost(cm: &CostModel, b: Builtin, ty: ScalarType) -> u32 {
    use Builtin::*;
    let base = match b {
        Sqrt | Rsqrt => cm.f32_sqrt,
        Exp | Log | Log2 | Pow | Sin | Cos | Tan => cm.f32_transcendental,
        Fmod => cm.f32_div,
        MaxI | MinI | AbsI => return cm.int_alu,
        _ => cm.f32_alu,
    };
    cm.float_cost(base, ty)
}

/// Profiler instruction class of a math builtin: integer helpers hit the
/// integer ALU, everything the SFU evaluates counts as Special, the rest is
/// plain float work.
pub(crate) fn math_class(b: Builtin) -> InstrClass {
    use Builtin::*;
    match b {
        MaxI | MinI | AbsI => InstrClass::Int,
        Sqrt | Rsqrt | Exp | Log | Log2 | Pow | Sin | Cos | Tan | Fmod => InstrClass::Special,
        _ => InstrClass::Float,
    }
}

pub(crate) fn math1_fn(b: Builtin) -> fn(f64) -> f64 {
    use Builtin::*;
    match b {
        Sqrt => f64::sqrt,
        Rsqrt => |x| 1.0 / x.sqrt(),
        Fabs => f64::abs,
        Exp => f64::exp,
        Log => f64::ln,
        Log2 => f64::log2,
        Sin => f64::sin,
        Cos => f64::cos,
        Tan => f64::tan,
        Floor => f64::floor,
        Ceil => f64::ceil,
        Trunc => f64::trunc,
        Round => f64::round,
        AbsI => f64::abs, // unreachable in practice: AbsI handled as int below
        _ => unreachable!("not a unary math builtin: {b:?}"),
    }
}

pub(crate) fn math2_fn(b: Builtin) -> impl Fn(f64, f64) -> f64 {
    use Builtin::*;
    move |x: f64, y: f64| match b {
        Pow => x.powf(y),
        Fmod => x % y,
        Fmax => x.max(y),
        Fmin => x.min(y),
        _ => unreachable!("not a binary math builtin: {b:?}"),
    }
}

pub(crate) fn int_minmax(b: Builtin, ty: ScalarType, a: u64, c: u64) -> u64 {
    let take_a = if ty.is_signed() {
        let (x, y) = (a as i64, c as i64);
        if b == Builtin::MaxI {
            x >= y
        } else {
            x <= y
        }
    } else if b == Builtin::MaxI {
        a >= c
    } else {
        a <= c
    };
    if take_a {
        a
    } else {
        c
    }
}

fn atomic_minmax(b: Builtin, ty: ScalarType, old: u32, operand: u32) -> u32 {
    let take_old = if ty.is_signed() {
        let (x, y) = (old as i32, operand as i32);
        if b == Builtin::AtomicMax {
            x >= y
        } else {
            x <= y
        }
    } else if b == Builtin::AtomicMax {
        old >= operand
    } else {
        old <= operand
    };
    if take_old {
        old
    } else {
        operand
    }
}
