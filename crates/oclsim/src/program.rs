//! Programs and kernels: the `clCreateProgramWithSource` /
//! `clBuildProgram` / `clCreateKernel` surface of the simulated platform.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::buffer::Buffer;
use crate::clc::analysis::{self, Analysis, DiagKind, Diagnostic, Severity, Strictness};
use crate::clc::ast::AddrSpace;
use crate::clc::opt::{self, OptLevel, PassStats};
use crate::clc::{parser, pp, sema};
use crate::context::Context;
use crate::error::{Error, Result};
use crate::exec::ir::{FuncId, FuncIr, Module, ParamKind};
use crate::exec::launch::{BoundArg, Geometry};
use crate::types::Value;

/// A program created from OpenCL C source, compiled by [`Program::build`].
#[derive(Clone)]
pub struct Program {
    inner: Arc<ProgramInner>,
}

struct ProgramInner {
    context: Context,
    source: String,
    built: Mutex<Option<Arc<Module>>>,
    build_log: Mutex<String>,
    build_time: Mutex<Duration>,
    /// Result of the kernel sanitizer pass over the last successful build.
    analysis: Mutex<Option<Arc<Analysis>>>,
    /// Accumulated findings: build-time lints plus launch-time bounds
    /// findings appended by [`Kernel::lint_launch`].
    diags: Mutex<Vec<Diagnostic>>,
    strictness: Mutex<Strictness>,
    /// Run the dynamic shadow-memory race sanitizer on launches.
    sanitize: Mutex<bool>,
    /// Mid-end optimization level applied by [`Program::build`].
    opt_level: Mutex<OptLevel>,
    /// Per-pass rewrite statistics from the last successful build.
    pass_stats: Mutex<PassStats>,
}

impl Program {
    /// Create a program from source. Compilation happens in [`Program::build`].
    pub fn from_source(context: &Context, source: impl Into<String>) -> Program {
        Program {
            inner: Arc::new(ProgramInner {
                context: context.clone(),
                source: source.into(),
                built: Mutex::new(None),
                build_log: Mutex::new(String::new()),
                build_time: Mutex::new(Duration::ZERO),
                analysis: Mutex::new(None),
                diags: Mutex::new(Vec::new()),
                strictness: Mutex::new(Strictness::default()),
                sanitize: Mutex::new(false),
                opt_level: Mutex::new(OptLevel::default()),
                pass_stats: Mutex::new(PassStats::default()),
            }),
        }
    }

    /// Compile the program. `options` supports `-D NAME[=VALUE]` (and the
    /// attached `-DNAME[=VALUE]` form); `-w` / `-Werror` set the sanitizer
    /// [`Strictness`] to [`Strictness::Off`] / [`Strictness::Deny`];
    /// `-O0`/`-O1`/`-O2` set the mid-end [`OptLevel`]; `-cl-*` flags are
    /// accepted and ignored, as a real driver would for unknown-but-valid
    /// options.
    ///
    /// After semantic analysis the kernel sanitizer runs over the AST
    /// (unless strictness is `Off`): its findings are appended to the build
    /// log and to the [`Program::diagnostics`] sink, and under
    /// [`Strictness::Deny`] any error-severity finding fails the build. At
    /// `-O1` and above the sanitizer uses the IR dataflow refinement
    /// ([`analysis::analyze_tu_refined`]) and the [`opt`] pass pipeline then
    /// rewrites the module (spans preserved; see [`Program::pass_stats`]).
    pub fn build(&self, options: &str) -> Result<()> {
        let mut build_span = crate::telemetry::span("clc", "build");
        crate::telemetry::metrics().builds.inc();
        let start = std::time::Instant::now();
        let (defines, strict_opt, level_opt) = parse_build_options(options)?;
        if let Some(s) = strict_opt {
            *self.inner.strictness.lock() = s;
        }
        if let Some(l) = level_opt {
            *self.inner.opt_level.lock() = l;
        }
        let strictness = *self.inner.strictness.lock();
        let opt_level = *self.inner.opt_level.lock();
        let result = {
            let pp_span = crate::telemetry::span("clc", "preprocess");
            let preprocessed = pp::preprocess(&self.inner.source, &defines);
            drop(pp_span);
            preprocessed
                .and_then(|src| parser::parse(&src))
                .and_then(|tu| sema::analyze(&tu).map(|module| (tu, module)))
        };
        let elapsed = start.elapsed();
        *self.inner.build_time.lock() = elapsed;
        {
            let m = crate::telemetry::metrics();
            let mut kernels: Vec<String> = match &result {
                Ok((_, module)) => module.kernels.keys().cloned().collect(),
                Err(_) => Vec::new(),
            };
            kernels.sort();
            let label = if kernels.is_empty() {
                "<failed>".to_string()
            } else {
                kernels.join("+")
            };
            m.note_compile(&label, elapsed.as_secs_f64());
            if crate::telemetry::enabled() {
                build_span.note("kernels", label);
                build_span.note("source_bytes", self.inner.source.len());
                build_span.note("ok", result.is_ok());
            }
        }
        match result {
            Ok((tu, mut module)) => {
                let mut log = String::from("build successful");
                let mut denied = false;
                if strictness != Strictness::Off {
                    let analysis_span = crate::telemetry::span("clc", "analysis");
                    // at O1+ the IR dataflow analyses sharpen the sanitizer
                    // (the module here is still the unoptimized sema output)
                    let analysis = if opt_level == OptLevel::O0 {
                        analysis::analyze_tu(&tu)
                    } else {
                        analysis::analyze_tu_refined(&tu, &module)
                    };
                    drop(analysis_span);
                    for d in &analysis.diagnostics {
                        log.push('\n');
                        log.push_str(&d.to_string());
                        denied |= strictness == Strictness::Deny && d.severity == Severity::Error;
                    }
                    self.inner
                        .diags
                        .lock()
                        .extend(analysis.diagnostics.iter().cloned());
                    *self.inner.analysis.lock() = Some(Arc::new(analysis));
                }
                if denied {
                    let log = log.replacen(
                        "build successful",
                        "build failed: sanitizer findings denied (-Werror)",
                        1,
                    );
                    *self.inner.build_log.lock() = log.clone();
                    return Err(Error::BuildFailure(log));
                }
                let mut opt_span = crate::telemetry::span("clc", "opt");
                let stats = opt::optimize(&mut module, opt_level);
                if crate::telemetry::enabled() {
                    opt_span.note("level", opt_level.to_string());
                    opt_span.note("rewrites", stats.total());
                }
                drop(opt_span);
                *self.inner.pass_stats.lock() = stats;
                // plan the compiled work-group backend eagerly (memoized on
                // the module), surfacing per-kernel fallbacks as notes
                let mut plan_span = crate::telemetry::span("clc", "wg-plan-build");
                let fallbacks = crate::exec::wg::fallback_reasons(&module);
                if crate::telemetry::enabled() {
                    plan_span.note("fallbacks", fallbacks.len());
                }
                drop(plan_span);
                if strictness != Strictness::Off {
                    let mut diags = self.inner.diags.lock();
                    for (kernel, line, reason) in fallbacks {
                        let d = Diagnostic {
                            kernel,
                            span: crate::clc::ast::Span::new(line, 1),
                            severity: Severity::Note,
                            kind: DiagKind::BackendFallback,
                            message: format!("kernel runs on the reference interpreter: {reason}"),
                        };
                        log.push('\n');
                        log.push_str(&d.to_string());
                        diags.push(d);
                    }
                }
                *self.inner.built.lock() = Some(Arc::new(module));
                *self.inner.build_log.lock() = log;
                Ok(())
            }
            Err(e) => {
                let log = e.to_string();
                *self.inner.build_log.lock() = log.clone();
                Err(Error::BuildFailure(log))
            }
        }
    }

    /// Set how build- and launch-time sanitizer findings are enforced.
    /// Takes effect for subsequent [`Program::build`] / launch calls.
    pub fn set_strictness(&self, strictness: Strictness) {
        *self.inner.strictness.lock() = strictness;
    }

    /// The current sanitizer strictness.
    pub fn strictness(&self) -> Strictness {
        *self.inner.strictness.lock()
    }

    /// Set the mid-end optimization level for subsequent
    /// [`Program::build`] calls (equivalent to passing `-O0`/`-O1`/`-O2`
    /// in the build options, which take precedence when present).
    pub fn set_opt_level(&self, level: OptLevel) {
        *self.inner.opt_level.lock() = level;
    }

    /// The current mid-end optimization level.
    pub fn opt_level(&self) -> OptLevel {
        *self.inner.opt_level.lock()
    }

    /// Per-pass rewrite statistics from the last successful build.
    pub fn pass_stats(&self) -> PassStats {
        *self.inner.pass_stats.lock()
    }

    /// Enable/disable the dynamic shadow-memory race sanitizer for kernels
    /// of this program (confirms static race findings at run time; slower).
    pub fn set_sanitize(&self, on: bool) {
        *self.inner.sanitize.lock() = on;
    }

    /// All sanitizer findings so far: build-time lints in source order plus
    /// any launch-time bounds findings recorded since.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.inner.diags.lock().clone()
    }

    /// The build log of the last [`Program::build`] call.
    pub fn build_log(&self) -> String {
        self.inner.build_log.lock().clone()
    }

    /// Wall-clock time the last build took (the paper's "compilation of the
    /// kernel" cost, which HPL's binary cache amortises).
    pub fn build_duration(&self) -> Duration {
        *self.inner.build_time.lock()
    }

    /// The context this program belongs to.
    pub fn context(&self) -> &Context {
        &self.inner.context
    }

    /// The original source.
    pub fn source(&self) -> &str {
        &self.inner.source
    }

    /// Names of the kernels in the built program.
    pub fn kernel_names(&self) -> Result<Vec<String>> {
        let built = self.inner.built.lock();
        let module = built
            .as_ref()
            .ok_or_else(|| Error::InvalidOperation("program has not been built".into()))?;
        let mut names: Vec<String> = module.kernels.keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    /// Deterministic estimate of the built binary's size in bytes, used by
    /// the shared binary cache ([`crate::serve`]) for capacity accounting.
    /// Derived purely from the typed IR (function, slot, and statement
    /// counts), never from wall clock or allocator state, so the figure is
    /// identical across runs and `OCLSIM_THREADS` settings.
    pub fn binary_size_estimate(&self) -> Result<u64> {
        let built = self.inner.built.lock();
        let module = built
            .as_ref()
            .ok_or_else(|| Error::InvalidOperation("program has not been built".into()))?;
        let mut bytes = 128u64;
        for func in &module.funcs {
            bytes += 96;
            bytes += 16 * func.slots.len() as u64;
            bytes += 48 * func.body.len() as u64;
            bytes += 24 * (func.local_allocs.len() + func.priv_allocs.len()) as u64;
        }
        Ok(bytes)
    }

    /// Create a kernel object for `name`.
    pub fn kernel(&self, name: &str) -> Result<Kernel> {
        let built = self.inner.built.lock();
        let module = built
            .as_ref()
            .ok_or_else(|| Error::InvalidOperation("program has not been built".into()))?;
        let &func = module
            .kernels
            .get(name)
            .ok_or_else(|| Error::NoSuchKernel(name.to_string()))?;
        let nargs = module.funcs[func].params.len();
        Ok(Kernel {
            inner: Arc::new(KernelInner {
                module: Arc::clone(module),
                func,
                name: name.to_string(),
                args: Mutex::new(vec![None; nargs]),
                program: Arc::clone(&self.inner),
            }),
        })
    }
}

type BuildOptions = (
    HashMap<String, String>,
    Option<Strictness>,
    Option<OptLevel>,
);

fn parse_build_options(options: &str) -> Result<BuildOptions> {
    let mut defines = HashMap::new();
    let mut strictness = None;
    let mut level = None;
    let mut it = options.split_whitespace().peekable();
    while let Some(tok) = it.next() {
        if tok == "-D" {
            let Some(def) = it.next() else {
                return Err(Error::BuildFailure("-D without a macro name".into()));
            };
            insert_define(&mut defines, def);
        } else if let Some(def) = tok.strip_prefix("-D") {
            insert_define(&mut defines, def);
        } else if tok == "-w" {
            strictness = Some(Strictness::Off);
        } else if tok == "-Werror" {
            strictness = Some(Strictness::Deny);
        } else if let Some(l) = OptLevel::from_flag(tok) {
            level = Some(l);
        } else if tok.starts_with("-cl-") {
            // accepted and ignored
        } else {
            return Err(Error::BuildFailure(format!("unknown build option `{tok}`")));
        }
    }
    Ok((defines, strictness, level))
}

fn insert_define(defines: &mut HashMap<String, String>, def: &str) {
    match def.split_once('=') {
        Some((name, value)) => defines.insert(name.to_string(), value.to_string()),
        None => defines.insert(def.to_string(), "1".to_string()),
    };
}

/// A kernel object with its bound arguments, mirroring `cl_kernel`.
#[derive(Clone)]
pub struct Kernel {
    inner: Arc<KernelInner>,
}

struct KernelInner {
    module: Arc<Module>,
    func: FuncId,
    name: String,
    args: Mutex<Vec<Option<BoundArg>>>,
    program: Arc<ProgramInner>,
}

impl Kernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The compiled module (used by the executor).
    pub(crate) fn module(&self) -> &Arc<Module> {
        &self.inner.module
    }

    /// The kernel's IR (used by the executor and by introspection).
    pub fn func_ir(&self) -> &FuncIr {
        &self.inner.module.funcs[self.inner.func]
    }

    /// Number of declared parameters.
    pub fn num_args(&self) -> usize {
        self.func_ir().params.len()
    }

    /// Whether the kernel (transitively) reads through pointer param `i`.
    pub fn arg_is_read(&self, i: usize) -> bool {
        self.func_ir().params.get(i).is_some_and(|p| p.reads)
    }

    /// Whether the kernel (transitively) writes through pointer param `i`.
    pub fn arg_is_written(&self, i: usize) -> bool {
        self.func_ir().params.get(i).is_some_and(|p| p.writes)
    }

    /// Bind a buffer to pointer parameter `index`.
    pub fn set_arg_buffer(&self, index: usize, buffer: &Buffer) -> Result<()> {
        let space = match self.param_kind(index)? {
            ParamKind::GlobalPtr { .. } => AddrSpace::Global,
            ParamKind::ConstantPtr { .. } => AddrSpace::Constant,
            other => {
                return Err(Error::InvalidArg {
                    kernel: self.inner.name.clone(),
                    index,
                    reason: format!("parameter is {other:?}, not a buffer pointer"),
                })
            }
        };
        self.inner.args.lock()[index] = Some(BoundArg::Buffer {
            buffer: buffer.clone(),
            space,
        });
        Ok(())
    }

    /// Bind a scalar value to parameter `index`.
    pub fn set_arg_scalar(&self, index: usize, value: impl Into<Value>) -> Result<()> {
        let value = value.into();
        match self.param_kind(index)? {
            ParamKind::Scalar(want) => {
                if want != value.scalar_type() {
                    return Err(Error::InvalidArg {
                        kernel: self.inner.name.clone(),
                        index,
                        reason: format!(
                            "scalar argument has type {}, kernel expects {}",
                            value.scalar_type().cl_name(),
                            want.cl_name()
                        ),
                    });
                }
            }
            other => {
                return Err(Error::InvalidArg {
                    kernel: self.inner.name.clone(),
                    index,
                    reason: format!("parameter is {other:?}, not a scalar"),
                })
            }
        }
        self.inner.args.lock()[index] = Some(BoundArg::Scalar {
            bits: value.to_bits(),
            ty: value.scalar_type(),
        });
        Ok(())
    }

    fn param_kind(&self, index: usize) -> Result<ParamKind> {
        self.func_ir()
            .params
            .get(index)
            .map(|p| p.kind)
            .ok_or_else(|| Error::InvalidArg {
                kernel: self.inner.name.clone(),
                index,
                reason: format!("kernel has only {} parameters", self.num_args()),
            })
    }

    /// Whether launches of this kernel should run the dynamic race sanitizer.
    pub(crate) fn sanitize(&self) -> bool {
        *self.inner.program.sanitize.lock()
    }

    /// Enqueue-time bounds check: evaluate the sanitizer's recorded
    /// unconditional global accesses against the actual launch geometry,
    /// bound buffers, and integer scalar arguments. Under
    /// [`Strictness::Warn`] findings are recorded and the launch proceeds
    /// (the interpreter still traps the fault); under [`Strictness::Deny`]
    /// the launch is rejected.
    pub(crate) fn lint_launch(&self, args: &[BoundArg], geom: &Geometry) -> Result<()> {
        let strictness = *self.inner.program.strictness.lock();
        if strictness == Strictness::Off {
            return Ok(());
        }
        let analysis = self.inner.program.analysis.lock().clone();
        let Some(analysis) = analysis else {
            return Ok(());
        };
        let Some(summary) = analysis.kernels.get(&self.inner.name) else {
            return Ok(());
        };
        let mut scalars = HashMap::new();
        for (i, a) in args.iter().enumerate() {
            if let BoundArg::Scalar { bits, ty } = a {
                if ty.is_integer() {
                    let v = if ty.is_signed() {
                        let sh = 64 - ty.size() * 8;
                        (((bits << sh) as i64) >> sh) as i128
                    } else {
                        *bits as i128
                    };
                    scalars.insert(i, v);
                }
            }
        }
        let mut findings = Vec::new();
        for acc in &summary.launch_accesses {
            let Some(BoundArg::Buffer { buffer, .. }) = args.get(acc.param) else {
                continue;
            };
            let Some((lo, hi)) = acc.element_bounds(&geom.global, &geom.local, &scalars) else {
                continue;
            };
            let len = buffer.len_bytes() as i128;
            let elem = acc.elem_size as i128;
            if lo < 0 || (hi + 1) * elem > len {
                findings.push(Diagnostic {
                    kernel: self.inner.name.clone(),
                    span: acc.span,
                    severity: Severity::Error,
                    kind: DiagKind::OutOfBounds,
                    message: format!(
                        "launch would {} elements {lo}..={hi} of `{}` \
                         ({elem} bytes each), but the bound buffer holds only {len} bytes",
                        if acc.is_write { "write" } else { "read" },
                        acc.param_name,
                    ),
                });
            }
        }
        if findings.is_empty() {
            return Ok(());
        }
        let msg = findings
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        self.inner.program.diags.lock().extend(findings);
        if strictness == Strictness::Deny {
            return Err(Error::InvalidLaunch(format!(
                "rejected by the kernel sanitizer: {msg}"
            )));
        }
        Ok(())
    }

    /// Snapshot the bound arguments, failing if any is unset.
    pub(crate) fn bound_args(&self) -> Result<Vec<BoundArg>> {
        let args = self.inner.args.lock();
        args.iter()
            .enumerate()
            .map(|(i, a)| {
                a.clone().ok_or_else(|| Error::InvalidArg {
                    kernel: self.inner.name.clone(),
                    index: i,
                    reason: "argument was never set".into(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemAccess;
    use crate::device::{Device, DeviceProfile};

    fn ctx() -> Context {
        Context::new(&[Device::new(DeviceProfile::tesla_c2050())]).unwrap()
    }

    const SRC: &str = "__kernel void fill(__global float* out, float v) {
        out[get_global_id(0)] = v;
    }";

    #[test]
    fn build_and_introspect() {
        let p = Program::from_source(&ctx(), SRC);
        p.build("").unwrap();
        assert_eq!(p.kernel_names().unwrap(), vec!["fill".to_string()]);
        let k = p.kernel("fill").unwrap();
        assert_eq!(k.num_args(), 2);
        assert!(k.arg_is_written(0) && !k.arg_is_read(0));
        assert!(p.build_duration() > Duration::ZERO);
        assert!(p.build_log().contains("successful"));
    }

    #[test]
    fn build_failure_reported_in_log() {
        let p = Program::from_source(&ctx(), "__kernel void broken( {}");
        let e = p.build("").unwrap_err();
        assert!(matches!(e, Error::BuildFailure(_)));
        assert!(!p.build_log().is_empty());
        assert!(p.kernel("broken").is_err(), "no kernels on failed build");
    }

    #[test]
    fn wg_fallback_surfaces_as_note() {
        let src = r#"
            __kernel void counted(__global int* c) { atomic_add(&c[0], 1); }
        "#;
        let p = Program::from_source(&ctx(), src);
        p.build("").unwrap();
        let diags = p.diagnostics();
        assert!(
            diags.iter().any(|d| d.kind == DiagKind::BackendFallback
                && d.severity == Severity::Note
                && d.kernel == "counted"),
            "{diags:?}"
        );
        assert!(
            p.build_log().contains("backend-fallback"),
            "{}",
            p.build_log()
        );

        // `-w` silences the note like any other diagnostic
        let p = Program::from_source(&ctx(), src);
        p.build("-w").unwrap();
        assert!(p.diagnostics().is_empty());

        // a kernel the wg backend accepts produces no note
        let p = Program::from_source(&ctx(), SRC);
        p.build("").unwrap();
        assert!(
            !p.diagnostics()
                .iter()
                .any(|d| d.kind == DiagKind::BackendFallback),
            "{:?}",
            p.diagnostics()
        );
    }

    #[test]
    fn kernel_before_build_rejected() {
        let p = Program::from_source(&ctx(), SRC);
        assert!(p.kernel("fill").is_err());
    }

    #[test]
    fn missing_kernel_name() {
        let p = Program::from_source(&ctx(), SRC);
        p.build("").unwrap();
        assert!(matches!(p.kernel("nope"), Err(Error::NoSuchKernel(_))));
    }

    #[test]
    fn build_options_defines() {
        let src = "__kernel void f(__global int* out) { out[0] = N; }";
        let p = Program::from_source(&ctx(), src);
        assert!(p.build("").is_err(), "N undefined");
        let p = Program::from_source(&ctx(), src);
        p.build("-D N=7").unwrap();
        let p = Program::from_source(&ctx(), src);
        p.build("-DN=7 -cl-fast-relaxed-math").unwrap();
        let p = Program::from_source(&ctx(), src);
        assert!(p.build("--bogus").is_err());
    }

    #[test]
    fn arg_binding_type_checks() {
        let c = ctx();
        let p = Program::from_source(&c, SRC);
        p.build("").unwrap();
        let k = p.kernel("fill").unwrap();
        let buf = c.create_buffer(16, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        assert!(k.set_arg_buffer(1, &buf).is_err(), "param 1 is a scalar");
        assert!(k.set_arg_scalar(0, 1.0f32).is_err(), "param 0 is a buffer");
        assert!(
            k.set_arg_scalar(1, 1.0f64).is_err(),
            "double into float param"
        );
        k.set_arg_scalar(1, 1.0f32).unwrap();
        assert!(k.set_arg_scalar(2, 0i32).is_err(), "out of range");
        assert!(k.bound_args().is_ok());
    }

    #[test]
    fn unset_args_detected() {
        let c = ctx();
        let p = Program::from_source(&c, SRC);
        p.build("").unwrap();
        let k = p.kernel("fill").unwrap();
        let err = k.bound_args().unwrap_err();
        assert!(err.to_string().contains("never set"));
    }
}
