//! The bounded per-tenant flight-recorder ring.
//!
//! A [`FlightRing`] keeps the last N structured events a tenant's
//! request path emitted. Recording is O(1): one lock-free `fetch_add`
//! claims a slot index and a per-slot lock (uncontended in practice —
//! the writer set is the tenant's request thread) publishes the event.
//! There is no global lock, no allocation beyond the event's own detail
//! string, and no blocking reader path: [`FlightRing::tail`] snapshots
//! slot by slot.
//!
//! Determinism: events carry a per-ring sequence number assigned in
//! claim order. Because the serve layer records only from the thread
//! driving the request (dispatcher workers never write the ring), the
//! sequence — and therefore the tail content — is a pure function of
//! the tenant's workload; only the `wall_us` stamp is wall-clock-valued,
//! and canonical renderings omit it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use super::TraceId;

/// Events retained per tenant. Sized so a full partitioned submission
/// (admission + per-device cache lookups + uploads + a few dozen chunks)
/// fits in the tail with room for the preceding request.
pub const RING_CAPACITY: usize = 64;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One structured flight-recorder event.
#[derive(Debug, Clone)]
pub struct ObsEvent {
    /// Per-ring monotonic sequence number (0-based, claim order).
    pub seq: u64,
    /// The request the event belongs to, when one was active.
    pub trace: Option<TraceId>,
    /// Pipeline stage (same vocabulary as [`super::TraceNode::stage`]).
    pub stage: &'static str,
    /// Free-form detail.
    pub detail: String,
    /// Microseconds since the ring's first event — wall-clock-valued,
    /// rendered only in non-canonical mode.
    pub wall_us: f64,
}

/// Fixed-capacity ring of [`ObsEvent`]s (see module docs).
pub struct FlightRing {
    slots: Vec<Mutex<Option<ObsEvent>>>,
    next: AtomicU64,
    epoch: Instant,
}

impl FlightRing {
    /// A ring holding the last `capacity` events.
    pub fn new(capacity: usize) -> FlightRing {
        FlightRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Record one event, overwriting the oldest once full.
    pub fn record(&self, trace: Option<TraceId>, stage: &'static str, detail: String) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let event = ObsEvent {
            seq,
            trace,
            stage,
            detail,
            wall_us: self.epoch.elapsed().as_secs_f64() * 1.0e6,
        };
        *lock(&self.slots[(seq as usize) % self.slots.len()]) = Some(event);
    }

    /// Events recorded over the ring's lifetime (not just resident).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Snapshot the resident events, oldest first.
    pub fn tail(&self) -> Vec<ObsEvent> {
        let mut events: Vec<ObsEvent> = self.slots.iter().filter_map(|s| lock(s).clone()).collect();
        events.sort_unstable_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_capacity_events_in_order() {
        let ring = FlightRing::new(4);
        for i in 0..10 {
            ring.record(None, "stage", format!("event {i}"));
        }
        let tail = ring.tail();
        assert_eq!(ring.recorded(), 10);
        assert_eq!(tail.len(), 4);
        assert_eq!(
            tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(tail[0].detail, "event 6");
        assert_eq!(tail[3].detail, "event 9");
    }

    #[test]
    fn ring_events_keep_their_trace_ids() {
        let t = super::super::tenant_obs("ring-trace-tenant");
        let id = t.mint();
        let ring = FlightRing::new(8);
        ring.record(Some(id), "admission", "ok".into());
        ring.record(None, "idle", "no request".into());
        let tail = ring.tail();
        assert_eq!(tail[0].trace, Some(id));
        assert_eq!(tail[1].trace, None);
    }
}
