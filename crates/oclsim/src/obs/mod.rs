//! Request-scoped causal tracing plus an always-on flight recorder.
//!
//! The serve subsystem (`crate::serve`) routes every tenant request
//! through admission, the shared binary cache, the async scheduler and
//! the execution backends — this module ties one request to its full
//! journey. Three pieces:
//!
//! * **[`TraceId`]** — minted per tenant submission, *deterministically*:
//!   a hash of the tenant name plus that tenant's submission sequence
//!   number. The id therefore depends only on the workload, never on
//!   wall clock, thread ids or interleaving, which is what lets ci.sh
//!   byte-diff whole trace renderings across `OCLSIM_THREADS` and
//!   `OCLSIM_BACKEND`.
//!
//! * **[`Request`]** — a per-request span-tree builder owned by the
//!   request path itself (no hidden thread-local tree state). The serve
//!   layer creates one per submission and attaches child nodes as the
//!   request moves through admission → cache → sched → partition chunks
//!   → exec launches; the finished [`RequestTrace`] feeds per-tenant
//!   latency breakdowns and, on failure, the postmortem dump
//!   ([`Postmortem`]). A thread-local *current trace id* (set via
//!   [`Request::thread_guard`], re-set by the dispatcher on whichever
//!   worker runs a traced command) tags enqueued events
//!   ([`crate::sched::Event::trace`]) and every telemetry span opened
//!   while the request is live — including the `exec` launch span of
//!   both the `ref` and `wg` backends — stitching the span layer and the
//!   modeled device stamps into one causal tree.
//!
//! * **The flight recorder** ([`TenantObs`], [`recorder::FlightRing`]) —
//!   always on, bounded, O(1) per event: the last
//!   [`recorder::RING_CAPACITY`] structured events per tenant. Events
//!   are recorded **only from the request thread** (never from
//!   dispatcher workers), so the ring content for a given workload is a
//!   pure function of that workload modulo the wall-clock field each
//!   event carries — the canonical renderings simply omit it.
//!
//! Determinism rules, shared by every exporter here:
//! 1. ids come from per-tenant sequence counters, never from global
//!    racing counters, thread ids or clocks;
//! 2. ring events and tree nodes are created on the request thread in
//!    program order;
//! 3. modeled seconds (pure functions of the workload) are rendered,
//!    wall-clock fields are rendered only in non-canonical mode.

pub mod postmortem;
pub mod recorder;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::error::Error;

pub use postmortem::{
    error_chain, push_postmortem, take_postmortems, CacheState, Postmortem, QuotaState,
};
pub use recorder::{ObsEvent, RING_CAPACITY};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// FNV-1a over the tenant name, truncated to 32 bits — the stable half
/// of every [`TraceId`] the tenant mints.
fn tenant_hash(name: &str) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

/// Identity of one tenant request, correlating every span, ring event
/// and metric exemplar the request produced. Deterministic: the tenant
/// name hash plus the tenant's own submission sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId {
    hash: u32,
    seq: u32,
}

impl TraceId {
    /// The per-tenant submission sequence number (first request = 1).
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Packed form for lock-free storage (histogram exemplars). Zero is
    /// never a valid packed id: sequence numbers start at 1.
    pub fn pack(&self) -> u64 {
        ((self.hash as u64) << 32) | self.seq as u64
    }

    /// Inverse of [`TraceId::pack`]; `None` for the zero sentinel.
    pub fn unpack(raw: u64) -> Option<TraceId> {
        if raw == 0 {
            return None;
        }
        Some(TraceId {
            hash: (raw >> 32) as u32,
            seq: raw as u32,
        })
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:08x}-{:03}", self.hash, self.seq)
    }
}

/// Per-tenant observability state: the trace-id mint and the tenant's
/// flight-recorder ring. Obtained via [`tenant_obs`]; the serve layer
/// caches the handle in each session so the hot path never takes the
/// registry lock.
pub struct TenantObs {
    name: String,
    hash: u32,
    next_seq: AtomicU32,
    ring: recorder::FlightRing,
}

impl TenantObs {
    /// The tenant this state belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mint the tenant's next [`TraceId`].
    pub fn mint(&self) -> TraceId {
        TraceId {
            hash: self.hash,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    /// Record one structured event into the tenant's flight ring (a
    /// no-op when the recorder is disabled for overhead A/B runs).
    pub fn record(&self, trace: Option<TraceId>, stage: &'static str, detail: impl Into<String>) {
        if recorder_enabled() {
            self.ring.record(trace, stage, detail.into());
        }
    }

    /// The last up-to-[`RING_CAPACITY`] events, oldest first.
    pub fn tail(&self) -> Vec<ObsEvent> {
        self.ring.tail()
    }
}

static TENANTS: OnceLock<Mutex<BTreeMap<String, Arc<TenantObs>>>> = OnceLock::new();

/// The observability state of `tenant`, created on first use.
pub fn tenant_obs(tenant: &str) -> Arc<TenantObs> {
    let map = TENANTS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = lock(map);
    Arc::clone(map.entry(tenant.to_string()).or_insert_with(|| {
        Arc::new(TenantObs {
            name: tenant.to_string(),
            hash: tenant_hash(tenant),
            next_seq: AtomicU32::new(0),
            ring: recorder::FlightRing::new(RING_CAPACITY),
        })
    }))
}

// --- the always-on recorder switch (off only for overhead A/B runs) ---

static RECORDER: AtomicBool = AtomicBool::new(true);

/// Whether the flight recorder is capturing events (the default).
pub fn recorder_enabled() -> bool {
    RECORDER.load(Ordering::Relaxed)
}

/// Turn the flight recorder off/on — only meant for measuring its
/// overhead; production mode is always-on.
pub fn set_recorder_enabled(enabled: bool) {
    RECORDER.store(enabled, Ordering::Relaxed);
}

// --- the thread-local current trace id ---

thread_local! {
    static CURRENT: Cell<Option<TraceId>> = const { Cell::new(None) };
}

/// The trace id of the request this thread is currently working for:
/// the request thread inside a [`Request::thread_guard`] scope, or a
/// dispatcher worker while it runs a traced command.
pub fn current_trace() -> Option<TraceId> {
    CURRENT.with(Cell::get)
}

/// RAII guard of [`current_trace`]; restores the previous value on drop
/// (scopes nest, e.g. a facade request enqueueing through the serve
/// layer).
pub struct ThreadTraceGuard {
    prev: Option<TraceId>,
}

/// Set this thread's current trace id for the guard's lifetime.
pub fn thread_trace(trace: TraceId) -> ThreadTraceGuard {
    ThreadTraceGuard {
        prev: CURRENT.with(|c| c.replace(Some(trace))),
    }
}

impl Drop for ThreadTraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

// --- the per-request span tree ---

/// Index of a node within one [`Request`]'s tree.
pub type NodeId = usize;

/// One node of a finished request's span tree.
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// Pipeline stage, e.g. `session.submit`, `admission`,
    /// `cache.lookup`, `sched.dma`, `sched.enqueue`, `partition.chunk`,
    /// `exec.launch`.
    pub stage: &'static str,
    /// Free-form detail (kernel name, group span, hit/miss, bytes, ...).
    pub detail: String,
    /// Modeled seconds the stage occupied a device resource, when it
    /// shadows a timeline reservation. A pure function of the workload.
    pub modeled_seconds: Option<f64>,
    /// The error that failed this stage, if any (rendered `Display`).
    pub error: Option<String>,
    /// Child stages in creation order.
    pub children: Vec<TraceNode>,
}

struct RawNode {
    parent: Option<NodeId>,
    stage: &'static str,
    detail: String,
    modeled_seconds: Option<f64>,
    error: Option<String>,
}

/// Span-tree builder for one in-flight tenant request (see module docs).
/// Created by the serve layer per submission; every mutation happens on
/// whichever thread drives the request, in program order, so the
/// finished tree is deterministic.
pub struct Request {
    trace: TraceId,
    tenant: Arc<TenantObs>,
    nodes: Vec<RawNode>,
    started: Instant,
}

impl Request {
    /// Mint a trace id for a new request of `tenant` and open its root
    /// `session.submit` node (also the first ring event).
    pub fn begin(tenant: &Arc<TenantObs>, detail: impl Into<String>) -> Request {
        let trace = tenant.mint();
        let detail = detail.into();
        tenant.record(Some(trace), "session.submit", detail.clone());
        Request {
            trace,
            tenant: Arc::clone(tenant),
            nodes: vec![RawNode {
                parent: None,
                stage: "session.submit",
                detail,
                modeled_seconds: None,
                error: None,
            }],
            started: Instant::now(),
        }
    }

    /// This request's trace id.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// The root node (`session.submit`).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Set the calling thread's current trace to this request (tags
    /// spans and enqueued events until the guard drops).
    pub fn thread_guard(&self) -> ThreadTraceGuard {
        thread_trace(self.trace)
    }

    /// Append a child stage under `parent`; also records a ring event.
    pub fn child(
        &mut self,
        parent: NodeId,
        stage: &'static str,
        detail: impl Into<String>,
    ) -> NodeId {
        let detail = detail.into();
        self.tenant.record(Some(self.trace), stage, detail.clone());
        self.nodes.push(RawNode {
            parent: Some(parent),
            stage,
            detail,
            modeled_seconds: None,
            error: None,
        });
        self.nodes.len() - 1
    }

    /// Attach the modeled duration of `node`.
    pub fn set_modeled(&mut self, node: NodeId, seconds: f64) {
        self.nodes[node].modeled_seconds = Some(seconds);
    }

    /// Mark `node` failed with `err` (also records a ring event with the
    /// full rendered error).
    pub fn set_error(&mut self, node: NodeId, err: &Error) {
        let rendered = err.to_string();
        self.tenant
            .record(Some(self.trace), "error", rendered.clone());
        self.nodes[node].error = Some(rendered);
    }

    /// Close the request: assemble the span tree, push the finished
    /// [`RequestTrace`] into the process-wide completed sink (bounded;
    /// drained by `report -- soak` for per-tenant latency breakdowns)
    /// and return it.
    pub fn finish(self, failed: bool) -> RequestTrace {
        let wall_seconds = self.started.elapsed().as_secs_f64();
        // Assemble children back-to-front: a child's index is always
        // greater than its parent's, so draining from the back hands
        // every node to an already-materialized parent slot.
        let mut built: Vec<Option<TraceNode>> = self
            .nodes
            .iter()
            .map(|n| {
                Some(TraceNode {
                    stage: n.stage,
                    detail: n.detail.clone(),
                    modeled_seconds: n.modeled_seconds,
                    error: n.error.clone(),
                    children: Vec::new(),
                })
            })
            .collect();
        for i in (1..self.nodes.len()).rev() {
            let node = built[i].take().expect("node not yet attached");
            let parent = self.nodes[i].parent.expect("non-root has a parent");
            built[parent]
                .as_mut()
                .expect("parent index is smaller")
                .children
                .push(node);
        }
        let mut root = built[0].take().expect("root exists");
        fn unreverse(n: &mut TraceNode) {
            n.children.reverse();
            for c in &mut n.children {
                unreverse(c);
            }
        }
        unreverse(&mut root);
        let trace = RequestTrace {
            trace: self.trace,
            tenant: self.tenant.name.clone(),
            root,
            wall_seconds,
            failed,
        };
        push_completed(trace.clone());
        trace
    }
}

/// The finished span tree of one tenant request.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The request's trace id (on every rendered node).
    pub trace: TraceId,
    /// The owning tenant.
    pub tenant: String,
    /// Root of the span tree (`session.submit`).
    pub root: TraceNode,
    /// Host wall seconds from submission to completion — non-canonical;
    /// excluded from canonical renderings.
    pub wall_seconds: f64,
    /// Whether the request ended in an error.
    pub failed: bool,
}

impl RequestTrace {
    /// Render the span tree, one node per line, each carrying the trace
    /// id. `canonical` omits every wall-clock-valued field.
    pub fn render(&self, canonical: bool) -> String {
        let mut out = String::new();
        self.render_node(&self.root, 0, &mut out);
        if !canonical {
            out.push_str(&format!("  (wall {:.6}s)\n", self.wall_seconds));
        }
        out
    }

    fn render_node(&self, node: &TraceNode, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{} [{}]: {}", node.stage, self.trace, node.detail));
        if let Some(s) = node.modeled_seconds {
            out.push_str(&format!(" ~modeled {s:.9}s"));
        }
        if let Some(e) = &node.error {
            out.push_str(&format!(" !error: {e}"));
        }
        out.push('\n');
        for c in &node.children {
            self.render_node(c, depth + 1, out);
        }
    }

    /// Depth-first list of the nodes with `stage` (postmortem sections
    /// like the partition assignment are derived this way).
    pub fn nodes_with_stage(&self, stage: &str) -> Vec<&TraceNode> {
        let mut found = Vec::new();
        fn walk<'a>(n: &'a TraceNode, stage: &str, found: &mut Vec<&'a TraceNode>) {
            if n.stage == stage {
                found.push(n);
            }
            for c in &n.children {
                walk(c, stage, found);
            }
        }
        walk(&self.root, stage, &mut found);
        found
    }
}

// --- the completed-request sink (feeds soak per-tenant breakdowns) ---

/// Completed traces kept before the oldest is dropped; large enough for
/// a full soak run, bounded so the sink can never grow without limit.
const COMPLETED_CAPACITY: usize = 1 << 16;

static COMPLETED: Mutex<Vec<RequestTrace>> = Mutex::new(Vec::new());

fn push_completed(trace: RequestTrace) {
    let mut sink = lock(&COMPLETED);
    if sink.len() >= COMPLETED_CAPACITY {
        sink.remove(0);
    }
    sink.push(trace);
}

/// Take every completed request trace recorded since the last drain.
pub fn drain_request_traces() -> Vec<RequestTrace> {
    std::mem::take(&mut *lock(&COMPLETED))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_per_tenant() {
        let a = tenant_obs("obs-mint-alpha");
        let b = tenant_obs("obs-mint-beta");
        let a1 = a.mint();
        let b1 = b.mint();
        let a2 = a.mint();
        assert_eq!(a1.seq(), 1);
        assert_eq!(a2.seq(), 2);
        assert_eq!(b1.seq(), 1);
        // the tenant-name hash half is stable across handles and mints
        assert_eq!(a1.to_string()[..9], a2.to_string()[..9]);
        assert_ne!(a1.to_string()[..9], b1.to_string()[..9]);
        assert_eq!(TraceId::unpack(a1.pack()), Some(a1));
        assert_eq!(TraceId::unpack(0), None);
    }

    #[test]
    fn thread_trace_guard_nests_and_restores() {
        assert_eq!(current_trace(), None);
        let t = tenant_obs("obs-guard");
        let outer = t.mint();
        let inner = t.mint();
        {
            let _a = thread_trace(outer);
            assert_eq!(current_trace(), Some(outer));
            {
                let _b = thread_trace(inner);
                assert_eq!(current_trace(), Some(inner));
            }
            assert_eq!(current_trace(), Some(outer));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn request_tree_assembles_in_creation_order() {
        let t = tenant_obs("obs-tree");
        let mut req = Request::begin(&t, "submit kernel `k`");
        let root = req.root();
        let adm = req.child(root, "admission", "ok");
        let sched = req.child(root, "sched.enqueue", "kernel `k`");
        let _launch = req.child(sched, "exec.launch", "groups 0..4");
        req.set_modeled(sched, 1.5e-6);
        let _ = adm;
        let trace = req.finish(false);
        assert_eq!(trace.root.stage, "session.submit");
        assert_eq!(trace.root.children.len(), 2);
        assert_eq!(trace.root.children[0].stage, "admission");
        assert_eq!(trace.root.children[1].stage, "sched.enqueue");
        assert_eq!(trace.root.children[1].children[0].stage, "exec.launch");
        assert_eq!(trace.root.children[1].modeled_seconds, Some(1.5e-6));
        // every rendered line carries the trace id
        let rendered = trace.render(true);
        for line in rendered.lines() {
            assert!(
                line.contains(&trace.trace.to_string()),
                "node line missing trace id: {line}"
            );
        }
        assert!(
            !rendered.contains("wall"),
            "canonical render has wall: {rendered}"
        );
        assert!(trace.render(false).contains("wall"));
    }

    #[test]
    fn completed_sink_captures_finished_requests() {
        let t = tenant_obs("obs-sink-tenant");
        drain_request_traces();
        let req = Request::begin(&t, "one");
        req.finish(false);
        let drained = drain_request_traces();
        assert!(drained.iter().any(|r| r.tenant == "obs-sink-tenant"));
    }
}
