//! Self-contained postmortem dumps for failed tenant requests.
//!
//! When a request ends in an error — a poisoned dependency chain, a
//! quota rejection, an admission rejection, a launch fault — the serve
//! layer assembles a [`Postmortem`]: the request's span tree, the
//! tenant's flight-recorder tail, the shared-cache and quota state at
//! the time of failure, the per-device partition assignment and the
//! launch counters (both derived from the span tree's `partition.chunk`
//! and `exec.launch` nodes). Dumps collect in a process-wide sink
//! ([`take_postmortems`]) and render either canonically (wall-clock
//! fields omitted — byte-identical across `OCLSIM_THREADS`,
//! `OCLSIM_BACKEND` and `HPL_OPT_LEVEL`; ci.sh diffs it) or fully, and
//! export into a Chrome trace via [`Postmortem::chrome_trace`].

use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::error::Error;

use super::{ObsEvent, RequestTrace, TraceId, TraceNode};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared binary-cache state at the time of failure.
#[derive(Debug, Clone, Copy)]
pub struct CacheState {
    /// Resident binaries.
    pub resident: usize,
    /// Estimated resident bytes.
    pub resident_bytes: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
    /// Lifetime evictions.
    pub evictions: u64,
}

/// The failing tenant's quota usage at the time of failure. Limits are
/// `None` when the quota is unlimited.
#[derive(Debug, Clone, Copy)]
pub struct QuotaState {
    /// Launches admitted so far.
    pub launches: u64,
    /// Lifetime launch quota.
    pub max_launches: Option<u64>,
    /// Launches currently in flight.
    pub inflight: u64,
    /// Concurrent launch quota.
    pub max_inflight: Option<u64>,
    /// Source bytes compiled on cache misses so far.
    pub compile_bytes: u64,
    /// Compile-byte quota.
    pub max_compile_bytes: Option<u64>,
}

fn limit(l: Option<u64>) -> String {
    match l {
        Some(l) => l.to_string(),
        None => "unlimited".into(),
    }
}

/// One failed request's self-contained dump (see module docs).
#[derive(Debug, Clone)]
pub struct Postmortem {
    /// The failed request's trace id.
    pub trace: TraceId,
    /// The owning tenant.
    pub tenant: String,
    /// The causal error chain, outermost first (see [`error_chain`]).
    pub error_chain: Vec<String>,
    /// The request's span tree.
    pub request: RequestTrace,
    /// The tenant's flight-recorder tail, oldest first.
    pub recorder_tail: Vec<ObsEvent>,
    /// Shared-cache state at failure time.
    pub cache: CacheState,
    /// The tenant's quota usage at failure time.
    pub quota: QuotaState,
}

/// Flatten `err` into its causal chain, outermost error first, walking
/// [`Error::DependencyFailed`] and [`Error::AdmissionRejected`] links.
pub fn error_chain(err: &Error) -> Vec<String> {
    let mut chain = Vec::new();
    let mut cur = err;
    loop {
        chain.push(cur.to_string());
        match cur {
            Error::DependencyFailed { cause } => cur = cause,
            Error::AdmissionRejected { cause, .. } => cur = cause,
            _ => break,
        }
    }
    chain
}

impl Postmortem {
    /// Render the dump. `canonical` omits every wall-clock-valued field,
    /// making the output a pure function of the workload.
    pub fn render(&self, canonical: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== postmortem {} tenant \"{}\" ==",
            self.trace, self.tenant
        );
        let _ = writeln!(out, "error chain:");
        for (i, e) in self.error_chain.iter().enumerate() {
            let _ = writeln!(out, "  {}. {e}", i + 1);
        }
        let _ = writeln!(out, "span tree:");
        for line in self.request.render(canonical).lines() {
            let _ = writeln!(out, "  {line}");
        }
        let chunks = self.request.nodes_with_stage("partition.chunk");
        if !chunks.is_empty() {
            let _ = writeln!(out, "partition assignment:");
            for c in chunks {
                let _ = write!(out, "  {}", c.detail);
                if let Some(s) = c.modeled_seconds {
                    let _ = write!(out, " ~modeled {s:.9}s");
                }
                if let Some(e) = &c.error {
                    let _ = write!(out, " !error: {e}");
                }
                out.push('\n');
            }
        }
        let launches = self.request.nodes_with_stage("exec.launch");
        if !launches.is_empty() {
            let _ = writeln!(out, "launch counters:");
            for l in launches {
                let _ = write!(out, "  {}", l.detail);
                if let Some(s) = l.modeled_seconds {
                    let _ = write!(out, " ~modeled {s:.9}s");
                }
                out.push('\n');
            }
        }
        let _ = writeln!(
            out,
            "flight recorder tail (tenant \"{}\", last {} events):",
            self.tenant,
            self.recorder_tail.len()
        );
        for e in &self.recorder_tail {
            let trace = e.trace.map(|t| t.to_string()).unwrap_or_else(|| "-".into());
            let _ = write!(out, "  [{:>3}] {} {}: {}", e.seq, trace, e.stage, e.detail);
            if !canonical {
                let _ = write!(out, " @{:.1}us", e.wall_us);
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "cache: {} resident binaries, {} of {} bytes, {} evictions",
            self.cache.resident,
            self.cache.resident_bytes,
            self.cache.capacity_bytes,
            self.cache.evictions
        );
        let _ = writeln!(
            out,
            "quota: launches {}/{}, inflight {}/{}, compile bytes {}/{}",
            self.quota.launches,
            limit(self.quota.max_launches),
            self.quota.inflight,
            limit(self.quota.max_inflight),
            self.quota.compile_bytes,
            limit(self.quota.max_compile_bytes)
        );
        out
    }

    /// Export the span tree as a self-contained Chrome trace (one `X`
    /// slice per node on a synthetic timeline built from the modeled
    /// durations), mergeable into the device trace via
    /// [`crate::prof::splice_chrome_events`]. Deterministic: no wall
    /// clock enters the output.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":9000,\"tid\":0,\
             \"args\":{{\"name\":\"postmortem {} ({})\"}}}}",
            self.trace,
            jesc(&self.tenant),
        );
        let mut events = String::new();
        emit_node(&self.request.root, self.trace, 0.0, &mut events);
        out.push(',');
        out.push_str(&events);
        out.push_str("],\n\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// The dump's Chrome-trace events alone (comma-joined JSON objects,
    /// no enclosing document) — what
    /// [`crate::prof::splice_chrome_events`] splices into a merged
    /// device trace.
    pub fn chrome_trace_events(&self) -> String {
        let mut events = String::new();
        emit_node(&self.request.root, self.trace, 0.0, &mut events);
        events
    }
}

/// A node's synthetic span in microseconds: its own modeled time or the
/// sum of its children's spans, floored at 1 µs so zero-cost stages stay
/// visible.
fn node_span_us(node: &TraceNode) -> f64 {
    let own = node.modeled_seconds.unwrap_or(0.0) * 1.0e6;
    let children: f64 = node.children.iter().map(node_span_us).sum();
    own.max(children).max(1.0)
}

fn emit_node(node: &TraceNode, trace: TraceId, start_us: f64, out: &mut String) {
    if !out.is_empty() {
        out.push(',');
    }
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":9000,\"tid\":0,\
         \"ts\":{start_us:.3},\"dur\":{:.3},\"args\":{{\"trace\":\"{trace}\",\
         \"detail\":\"{}\"{}}}}}",
        jesc(node.stage),
        node_span_us(node),
        jesc(&node.detail),
        match &node.error {
            Some(e) => format!(",\"error\":\"{}\"", jesc(e)),
            None => String::new(),
        },
    );
    let mut cursor = start_us;
    for c in &node.children {
        emit_node(c, trace, cursor, out);
        cursor += node_span_us(c);
    }
}

/// Minimal JSON string escaping for the Chrome-trace export.
fn jesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// --- the process-wide postmortem sink ---

static SINK: Mutex<Vec<Postmortem>> = Mutex::new(Vec::new());

/// Dumps kept before the oldest is dropped.
const SINK_CAPACITY: usize = 1 << 10;

/// Publish a finished dump (called by the serve layer on failure).
pub fn push_postmortem(pm: Postmortem) {
    let mut sink = lock(&SINK);
    if sink.len() >= SINK_CAPACITY {
        sink.remove(0);
    }
    sink.push(pm);
}

/// Take every postmortem emitted since the last drain.
pub fn take_postmortems() -> Vec<Postmortem> {
    std::mem::take(&mut *lock(&SINK))
}

#[cfg(test)]
mod tests {
    use super::super::{tenant_obs, Request};
    use super::*;

    fn sample() -> Postmortem {
        let t = tenant_obs("pm-render-tenant");
        let mut req = Request::begin(&t, "partitioned launch of kernel `k`");
        let root = req.root();
        req.child(root, "admission", "ok (launch 1)");
        let chunk = req.child(root, "partition.chunk", "groups 0..8 -> device 0");
        let launch = req.child(chunk, "exec.launch", "kernel `k` groups 0..8, 42 instrs");
        req.set_modeled(launch, 1.25e-6);
        let err = Error::DependencyFailed {
            cause: Box::new(Error::InvalidOperation("injected".into())),
        };
        req.set_error(root, &err);
        let request = req.finish(true);
        Postmortem {
            trace: request.trace,
            tenant: request.tenant.clone(),
            error_chain: error_chain(&err),
            recorder_tail: t.tail(),
            request,
            cache: CacheState {
                resident: 1,
                resident_bytes: 100,
                capacity_bytes: 1000,
                evictions: 0,
            },
            quota: QuotaState {
                launches: 1,
                max_launches: Some(4),
                inflight: 0,
                max_inflight: Some(2),
                compile_bytes: 10,
                max_compile_bytes: None,
            },
        }
    }

    #[test]
    fn error_chain_walks_both_wrapper_kinds() {
        let err = Error::AdmissionRejected {
            what: "launch".into(),
            cause: Box::new(Error::DependencyFailed {
                cause: Box::new(Error::InvalidOperation("root".into())),
            }),
        };
        let chain = error_chain(&err);
        assert_eq!(chain.len(), 3);
        assert!(chain[2].contains("root"), "{chain:?}");
    }

    #[test]
    fn canonical_render_has_no_wall_fields() {
        let pm = sample();
        let canonical = pm.render(true);
        assert!(!canonical.contains("@"), "{canonical}");
        assert!(!canonical.contains("wall"), "{canonical}");
        assert!(canonical.contains("error chain:"), "{canonical}");
        assert!(canonical.contains("partition assignment:"), "{canonical}");
        assert!(canonical.contains("launch counters:"), "{canonical}");
        assert!(canonical.contains("flight recorder tail"), "{canonical}");
        let full = pm.render(false);
        assert!(full.contains("us"), "{full}");
    }

    #[test]
    fn chrome_export_is_a_valid_trace() {
        let pm = sample();
        let trace = pm.chrome_trace();
        crate::prof::validate_chrome_trace(&trace).expect("valid chrome trace");
        assert!(trace.contains("partition.chunk"));
        assert!(trace.contains(&pm.trace.to_string()));
    }
}
