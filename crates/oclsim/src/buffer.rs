//! Device global/constant memory objects.
//!
//! Storage is a slice of `AtomicU32` words. This keeps concurrent kernel
//! execution free of Rust-level data races without per-access locking:
//! relaxed word-sized atomics compile to plain loads and stores on every
//! mainstream ISA. OpenCL gives no coherence guarantees for cross-work-group
//! races, so racing relaxed accesses here is a faithful (and sound) model:
//! the worst outcome is a torn 64-bit value, which is already permitted
//! behaviour for racy OpenCL programs.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::types::DeviceScalar;

/// Host visibility/usage flags, a simplified `CL_MEM_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccess {
    /// Kernels may only read the buffer.
    ReadOnly,
    /// Kernels may only write the buffer.
    WriteOnly,
    /// Kernels may read and write (default).
    ReadWrite,
}

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

/// A device memory allocation. Cheap to clone (shared handle).
#[derive(Debug, Clone)]
pub struct Buffer {
    inner: Arc<BufferInner>,
}

#[derive(Debug)]
struct BufferInner {
    id: u64,
    len_bytes: usize,
    access: MemAccess,
    words: Box<[AtomicU32]>,
}

impl Buffer {
    /// Allocate a buffer of `len_bytes` bytes, zero-initialised.
    ///
    /// Normally called through [`crate::context::Context::create_buffer`],
    /// which also enforces the device memory capacity.
    pub fn new(len_bytes: usize, access: MemAccess) -> Buffer {
        let words = len_bytes.div_ceil(4);
        let storage: Box<[AtomicU32]> = (0..words).map(|_| AtomicU32::new(0)).collect();
        Buffer {
            inner: Arc::new(BufferInner {
                id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
                len_bytes,
                access,
                words: storage,
            }),
        }
    }

    /// Unique id of the allocation.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Size in bytes as requested at allocation.
    pub fn len_bytes(&self) -> usize {
        self.inner.len_bytes
    }

    /// Access flags.
    pub fn access(&self) -> MemAccess {
        self.inner.access
    }

    fn check_range(&self, offset: usize, len: usize) -> Result<()> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.inner.len_bytes)
        {
            return Err(Error::InvalidBufferAccess(format!(
                "range {offset}..{} exceeds buffer of {} bytes",
                offset.saturating_add(len),
                self.inner.len_bytes
            )));
        }
        Ok(())
    }

    /// Copy host bytes into the buffer at `offset`.
    pub fn write_bytes(&self, offset: usize, data: &[u8]) -> Result<()> {
        self.check_range(offset, data.len())?;
        let words = &self.inner.words;
        let mut pos = 0usize;
        while pos < data.len() {
            let byte_addr = offset + pos;
            let word_idx = byte_addr / 4;
            let in_word = byte_addr % 4;
            let n = (4 - in_word).min(data.len() - pos);
            if n == 4 {
                let w = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
                words[word_idx].store(w, Ordering::Relaxed);
            } else {
                // partial word: read-modify-write the affected bytes
                let mut mask = 0u32;
                let mut val = 0u32;
                for k in 0..n {
                    mask |= 0xFFu32 << ((in_word + k) * 8);
                    val |= (data[pos + k] as u32) << ((in_word + k) * 8);
                }
                words[word_idx]
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| {
                        Some((w & !mask) | val)
                    })
                    .expect("fetch_update closure never returns None");
            }
            pos += n;
        }
        Ok(())
    }

    /// Copy bytes from the buffer at `offset` into `out`.
    pub fn read_bytes(&self, offset: usize, out: &mut [u8]) -> Result<()> {
        self.check_range(offset, out.len())?;
        let words = &self.inner.words;
        let mut pos = 0usize;
        while pos < out.len() {
            let byte_addr = offset + pos;
            let word_idx = byte_addr / 4;
            let in_word = byte_addr % 4;
            let n = (4 - in_word).min(out.len() - pos);
            let w = words[word_idx].load(Ordering::Relaxed).to_le_bytes();
            out[pos..pos + n].copy_from_slice(&w[in_word..in_word + n]);
            pos += n;
        }
        Ok(())
    }

    /// Typed write of a whole slice starting at element `elem_offset`.
    pub fn write_slice<T: DeviceScalar>(&self, elem_offset: usize, data: &[T]) -> Result<()> {
        let esize = std::mem::size_of::<T>();
        let mut bytes = vec![0u8; std::mem::size_of_val(data)];
        for (i, v) in data.iter().enumerate() {
            let b = v.to_bits64().to_le_bytes();
            bytes[i * esize..(i + 1) * esize].copy_from_slice(&b[..esize]);
        }
        self.write_bytes(elem_offset * esize, &bytes)
    }

    /// Typed read of `len` elements starting at element `elem_offset`.
    pub fn read_vec<T: DeviceScalar>(&self, elem_offset: usize, len: usize) -> Result<Vec<T>> {
        let esize = std::mem::size_of::<T>();
        let mut bytes = vec![0u8; len * esize];
        self.read_bytes(elem_offset * esize, &mut bytes)?;
        Ok((0..len)
            .map(|i| {
                let mut raw = [0u8; 8];
                raw[..esize].copy_from_slice(&bytes[i * esize..(i + 1) * esize]);
                T::from_bits64(u64::from_le_bytes(raw))
            })
            .collect())
    }

    /// Zero the entire buffer.
    pub fn fill_zero(&self) {
        for w in self.inner.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    // ---- device-side accessors used by the interpreter ------------------

    /// Whether a device access of `size` bytes at `byte_addr` is in range
    /// and naturally aligned.
    #[inline]
    pub(crate) fn device_access_ok(&self, byte_addr: u64, size: usize) -> bool {
        byte_addr.is_multiple_of(size as u64)
            && (byte_addr as usize)
                .checked_add(size)
                .is_some_and(|e| e <= self.inner.len_bytes)
    }

    /// Raw word storage — the same relaxed-atomic cells `device_load` /
    /// `device_store` go through, exposed so a pre-validated bulk access
    /// pass can hoist the slice lookup and size dispatch out of its lane
    /// loop.
    #[inline]
    pub(crate) fn device_words(&self) -> &[AtomicU32] {
        &self.inner.words
    }

    /// Load `size` (1/2/4/8) bytes at `byte_addr`, zero-extended into u64.
    /// Caller must have validated with [`Buffer::device_access_ok`].
    #[inline]
    pub(crate) fn device_load(&self, byte_addr: u64, size: usize) -> u64 {
        let words = &self.inner.words;
        let word_idx = (byte_addr / 4) as usize;
        match size {
            8 => {
                let lo = words[word_idx].load(Ordering::Relaxed) as u64;
                let hi = words[word_idx + 1].load(Ordering::Relaxed) as u64;
                lo | (hi << 32)
            }
            4 => words[word_idx].load(Ordering::Relaxed) as u64,
            2 => {
                let sh = (byte_addr % 4) * 8;
                ((words[word_idx].load(Ordering::Relaxed) >> sh) & 0xFFFF) as u64
            }
            1 => {
                let sh = (byte_addr % 4) * 8;
                ((words[word_idx].load(Ordering::Relaxed) >> sh) & 0xFF) as u64
            }
            _ => unreachable!("scalar sizes are 1/2/4/8"),
        }
    }

    /// Store the low `size` bytes of `bits` at `byte_addr`.
    /// Caller must have validated with [`Buffer::device_access_ok`].
    #[inline]
    pub(crate) fn device_store(&self, byte_addr: u64, size: usize, bits: u64) {
        let words = &self.inner.words;
        let word_idx = (byte_addr / 4) as usize;
        match size {
            8 => {
                words[word_idx].store(bits as u32, Ordering::Relaxed);
                words[word_idx + 1].store((bits >> 32) as u32, Ordering::Relaxed);
            }
            4 => words[word_idx].store(bits as u32, Ordering::Relaxed),
            2 | 1 => {
                let sh = (byte_addr % 4) * 8;
                let mask = if size == 2 { 0xFFFFu32 } else { 0xFFu32 } << sh;
                let val = ((bits as u32) << sh) & mask;
                words[word_idx]
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| {
                        Some((w & !mask) | val)
                    })
                    .expect("fetch_update closure never returns None");
            }
            _ => unreachable!("scalar sizes are 1/2/4/8"),
        }
    }

    /// Atomic 32-bit add at `byte_addr` (for `atomic_add` & friends);
    /// returns the previous value.
    #[inline]
    pub(crate) fn device_atomic_add_u32(&self, byte_addr: u64, operand: u32) -> u32 {
        let word_idx = (byte_addr / 4) as usize;
        self.inner.words[word_idx].fetch_add(operand, Ordering::Relaxed)
    }

    /// Atomic 32-bit compare-exchange; returns the previous value.
    #[inline]
    pub(crate) fn device_atomic_cmpxchg_u32(&self, byte_addr: u64, expected: u32, new: u32) -> u32 {
        let word_idx = (byte_addr / 4) as usize;
        match self.inner.words[word_idx].compare_exchange(
            expected,
            new,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(prev) | Err(prev) => prev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_typed() {
        let b = Buffer::new(64, MemAccess::ReadWrite);
        b.write_slice(0, &[1.5f32, -2.0, 3.25]).unwrap();
        assert_eq!(b.read_vec::<f32>(0, 3).unwrap(), vec![1.5, -2.0, 3.25]);
        b.write_slice(2, &[9.0f32]).unwrap();
        assert_eq!(b.read_vec::<f32>(0, 3).unwrap(), vec![1.5, -2.0, 9.0]);
    }

    #[test]
    fn round_trip_f64_and_i64() {
        let b = Buffer::new(64, MemAccess::ReadWrite);
        b.write_slice(0, &[1.25f64, -0.5]).unwrap();
        assert_eq!(b.read_vec::<f64>(0, 2).unwrap(), vec![1.25, -0.5]);
        b.write_slice(2, &[-42i64]).unwrap();
        assert_eq!(b.read_vec::<i64>(2, 1).unwrap(), vec![-42]);
    }

    #[test]
    fn unaligned_byte_writes() {
        let b = Buffer::new(16, MemAccess::ReadWrite);
        b.write_bytes(1, &[0xAA, 0xBB, 0xCC, 0xDD, 0xEE]).unwrap();
        let mut out = [0u8; 7];
        b.read_bytes(0, &mut out).unwrap();
        assert_eq!(out, [0x00, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0x00]);
    }

    #[test]
    fn out_of_range_rejected() {
        let b = Buffer::new(8, MemAccess::ReadWrite);
        assert!(b.write_bytes(5, &[0; 4]).is_err());
        let mut out = [0u8; 4];
        assert!(b.read_bytes(6, &mut out).is_err());
        assert!(b.write_bytes(usize::MAX, &[0]).is_err(), "overflow guarded");
    }

    #[test]
    fn device_load_store_all_sizes() {
        let b = Buffer::new(32, MemAccess::ReadWrite);
        b.device_store(0, 8, 0x1122334455667788);
        assert_eq!(b.device_load(0, 8), 0x1122334455667788);
        assert_eq!(b.device_load(0, 4), 0x55667788);
        assert_eq!(b.device_load(4, 4), 0x11223344);
        b.device_store(9, 1, 0xFF);
        assert_eq!(b.device_load(9, 1), 0xFF);
        assert_eq!(b.device_load(8, 1), 0x00);
        b.device_store(10, 2, 0xBEEF);
        assert_eq!(b.device_load(10, 2), 0xBEEF);
        assert_eq!(b.device_load(8, 4), 0xBEEF_FF00);
    }

    #[test]
    fn device_access_bounds_and_alignment() {
        let b = Buffer::new(12, MemAccess::ReadWrite);
        assert!(b.device_access_ok(8, 4));
        assert!(!b.device_access_ok(9, 4), "misaligned");
        assert!(!b.device_access_ok(12, 4), "past end");
        assert!(!b.device_access_ok(8, 8), "straddles end");
        assert!(b.device_access_ok(11, 1));
    }

    #[test]
    fn atomic_add() {
        let b = Buffer::new(8, MemAccess::ReadWrite);
        b.write_slice(0, &[10u32]).unwrap();
        assert_eq!(b.device_atomic_add_u32(0, 5), 10);
        assert_eq!(b.read_vec::<u32>(0, 1).unwrap()[0], 15);
    }

    #[test]
    fn zero_len_buffer() {
        let b = Buffer::new(0, MemAccess::ReadOnly);
        assert_eq!(b.len_bytes(), 0);
        assert!(b.write_bytes(0, &[]).is_ok());
        assert!(b.write_bytes(0, &[1]).is_err());
    }
}
