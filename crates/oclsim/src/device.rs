//! Device profiles: the simulated counterparts of physical accelerators.
//!
//! A [`DeviceProfile`] captures everything the timing model and the
//! capability checks need to know about a device: parallel width, clock,
//! memory sizes and bandwidths, and feature flags. The three presets mirror
//! the hardware of the paper's evaluation (§V): a Tesla C2050/C2070-class
//! GPU, a Quadro FX 380-class GPU (no fp64 — which is why the paper excludes
//! EP from the portability experiment), and the Xeon host CPU.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::prof::cache::CacheConfig;
use crate::sched::DeviceSched;

/// Broad device classification, mirroring `CL_DEVICE_TYPE_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// A general-purpose CPU device.
    Cpu,
    /// A GPU-style wide-SIMT accelerator.
    Gpu,
    /// Any other accelerator (Cell SPE-like etc.).
    Accelerator,
}

/// Static description of a simulated device.
///
/// All figures feed the analytic timing model in [`crate::timing`]; none of
/// them affect functional results.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name reported by `Device::name()`.
    pub name: String,
    /// Vendor string.
    pub vendor: String,
    /// Device classification.
    pub device_type: DeviceType,
    /// Number of compute units (SMs on a GPU, cores on a CPU).
    pub compute_units: u32,
    /// SIMT width of one compute unit: lanes that execute one instruction
    /// together and whose memory accesses coalesce as a unit.
    pub simd_width: u32,
    /// Core clock in MHz.
    pub clock_mhz: u32,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Per-group scratchpad ("local") memory in bytes.
    pub local_mem_bytes: u64,
    /// Constant memory capacity in bytes.
    pub constant_mem_bytes: u64,
    /// Maximum work-items in one work-group.
    pub max_work_group_size: usize,
    /// Whether the device supports double-precision arithmetic
    /// (`cl_khr_fp64`). The Quadro FX 380 of the paper does not.
    pub fp64: bool,
    /// Peak global-memory bandwidth in GB/s.
    pub global_bandwidth_gbps: f64,
    /// Host-device interconnect bandwidth in GB/s (PCIe for the GPUs).
    pub transfer_bandwidth_gbps: f64,
    /// Coalescing segment size in bytes: accesses by one SIMD batch that
    /// fall in the same segment cost one memory transaction.
    pub mem_segment_bytes: u32,
    /// Fraction of peak instruction issue actually achieved (models
    /// scheduling/dependency stalls without simulating them).
    pub issue_efficiency: f64,
    /// Throughput cost multiplier for double precision relative to single
    /// (2 on Fermi Tesla, effectively infinite when `fp64` is false).
    pub fp64_cost_factor: f64,
    /// Optional cache-hierarchy capability: profiles that declare one get
    /// simulated L1/L2 hit/miss counters and cache-aware modeled memory
    /// time; profiles without it keep the roofline-only numbers
    /// bit-for-bit (see [`crate::prof::cache`]).
    pub cache: Option<CacheConfig>,
}

impl DeviceProfile {
    /// A Tesla C2050/C2070-class GPU: the paper's primary platform.
    /// 448 thread processors = 14 compute units x 32-wide SIMT at 1.15 GHz,
    /// 6 GB of DRAM (C2070), ~144 GB/s of memory bandwidth.
    pub fn tesla_c2050() -> Self {
        DeviceProfile {
            name: "SimGPU Tesla C2050/C2070".into(),
            vendor: "oclsim".into(),
            device_type: DeviceType::Gpu,
            compute_units: 14,
            simd_width: 32,
            clock_mhz: 1150,
            global_mem_bytes: 6 << 30,
            local_mem_bytes: 48 << 10,
            constant_mem_bytes: 64 << 10,
            max_work_group_size: 1024,
            fp64: true,
            global_bandwidth_gbps: 144.0,
            transfer_bandwidth_gbps: 6.0,
            mem_segment_bytes: 128,
            issue_efficiency: 0.85,
            fp64_cost_factor: 2.0,
            cache: None,
        }
    }

    /// A Quadro FX 380-class GPU: the paper's portability platform (§V-C).
    /// 16 thread processors = 2 compute units x 8-wide SIMT at 700 MHz,
    /// 256 MB of DRAM, no double-precision support.
    pub fn quadro_fx380() -> Self {
        DeviceProfile {
            name: "SimGPU Quadro FX 380".into(),
            vendor: "oclsim".into(),
            device_type: DeviceType::Gpu,
            compute_units: 2,
            simd_width: 8,
            clock_mhz: 700,
            global_mem_bytes: 256 << 20,
            local_mem_bytes: 16 << 10,
            constant_mem_bytes: 64 << 10,
            max_work_group_size: 512,
            fp64: false,
            global_bandwidth_gbps: 22.4,
            transfer_bandwidth_gbps: 4.0,
            mem_segment_bytes: 128,
            issue_efficiency: 0.8,
            fp64_cost_factor: f64::INFINITY,
            cache: None,
        }
    }

    /// The host CPU of the paper's testbed: 4 x dual-core Intel Xeon at
    /// 2.13 GHz. Used as an OpenCL CPU device (8 cores).
    pub fn xeon_host() -> Self {
        DeviceProfile {
            name: "SimCPU Xeon E5606-class".into(),
            vendor: "oclsim".into(),
            device_type: DeviceType::Cpu,
            compute_units: 8,
            simd_width: 1,
            clock_mhz: 2130,
            global_mem_bytes: 16 << 30,
            local_mem_bytes: 32 << 10,
            constant_mem_bytes: 128 << 10,
            max_work_group_size: 1024,
            fp64: true,
            global_bandwidth_gbps: 10.0,
            transfer_bandwidth_gbps: 10.0,
            // CPUs have caches, not coalescing hardware; a 64-byte cache
            // line plays the role of the transaction segment.
            mem_segment_bytes: 64,
            issue_efficiency: 0.9,
            fp64_cost_factor: 1.0,
            cache: None,
        }
    }

    /// A single core of [`DeviceProfile::xeon_host`]: the "serial execution
    /// in a regular CPU" baseline of Figures 6 and 7.
    pub fn serial_cpu() -> Self {
        let mut p = Self::xeon_host();
        p.name = "SimCPU Xeon (1 core, serial baseline)".into();
        p.compute_units = 1;
        p
    }

    /// [`DeviceProfile::tesla_c2050`] with its Fermi cache hierarchy
    /// declared: 48 KB 6-way L1 (the 48/16 shared-memory split), 768 KB
    /// 8-way L2, 128-byte lines. Otherwise identical to the plain Tesla,
    /// so kernel behaviour and compute timing match it exactly.
    pub fn tesla_c2050_cached() -> Self {
        let mut p = Self::tesla_c2050();
        p.name = "SimGPU Tesla C2050 (48K L1/768K L2)".into();
        p.cache = Some(CacheConfig {
            line_bytes: 128,
            l1_bytes: 48 << 10,
            l1_ways: 6,
            l2_bytes: 768 << 10,
            l2_ways: 8,
            l1_gbps: 1030.0,
            l2_gbps: 330.0,
        });
        p
    }

    /// The cache-differing sibling of [`DeviceProfile::tesla_c2050_cached`]
    /// for the Fig. 9 portability axis: same device, configured for the
    /// 16/48 split (16 KB 4-way L1). Locality-sensitive kernels model
    /// slower here; everything else is identical.
    pub fn tesla_c2050_small_l1() -> Self {
        let mut p = Self::tesla_c2050_cached();
        p.name = "SimGPU Tesla C2050 (16K L1/768K L2)".into();
        let cc = p.cache.as_mut().expect("cached preset");
        cc.l1_bytes = 16 << 10;
        cc.l1_ways = 4;
        p
    }

    /// Peak scalar operation throughput in operations per second.
    pub fn peak_ops_per_sec(&self) -> f64 {
        self.compute_units as f64
            * self.simd_width as f64
            * self.clock_mhz as f64
            * 1.0e6
            * self.issue_efficiency
    }
}

static NEXT_DEVICE_ID: AtomicU64 = AtomicU64::new(1);

/// A handle to a simulated device. Cheap to clone; identity-comparable.
#[derive(Debug, Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

struct DeviceInner {
    id: u64,
    profile: DeviceProfile,
    /// Lazily created command scheduler + modeled resource timeline,
    /// shared by every queue bound to this device.
    sched: OnceLock<Arc<DeviceSched>>,
}

impl std::fmt::Debug for DeviceInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceInner")
            .field("id", &self.id)
            .field("profile", &self.profile)
            .finish()
    }
}

impl Device {
    /// Create a device from a profile. Usually obtained from
    /// [`crate::platform::Platform`] instead.
    pub fn new(profile: DeviceProfile) -> Self {
        Device {
            inner: Arc::new(DeviceInner {
                id: NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed),
                profile,
                sched: OnceLock::new(),
            }),
        }
    }

    /// The device's command scheduler (created on first use).
    pub(crate) fn sched(&self) -> &Arc<DeviceSched> {
        self.inner
            .sched
            .get_or_init(|| DeviceSched::new(self.inner.profile.compute_units as usize))
    }

    /// Reset the modeled resource timeline: every compute unit and the DMA
    /// engine become free at instant 0.0 again. Benchmarks call this
    /// before a pipeline so the makespan of its events can be read off the
    /// profiling stamps in isolation. Only affects *modeled* stamps of
    /// commands enqueued afterwards; never functional results.
    pub fn reset_timeline(&self) {
        self.sched().reset_timeline();
    }

    /// The latest modeled instant any engine of this device is reserved
    /// until — the makespan of everything scheduled since the last
    /// [`Device::reset_timeline`].
    pub fn timeline_horizon(&self) -> f64 {
        self.sched().timeline_horizon()
    }

    /// Unique id of this device instance.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The static profile of the device.
    pub fn profile(&self) -> &DeviceProfile {
        &self.inner.profile
    }

    /// Marketing name.
    pub fn name(&self) -> &str {
        &self.inner.profile.name
    }

    /// Device classification.
    pub fn device_type(&self) -> DeviceType {
        self.inner.profile.device_type
    }

    /// Whether the device supports double precision.
    pub fn supports_fp64(&self) -> bool {
        self.inner.profile.fp64
    }
}

impl PartialEq for Device {
    fn eq(&self, other: &Self) -> bool {
        self.inner.id == other.inner.id
    }
}
impl Eq for Device {}

impl std::hash::Hash for Device {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.inner.id.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tesla_matches_paper_description() {
        let p = DeviceProfile::tesla_c2050();
        // "448 thread processors with a clock rate of 1.15 GHz and 6GB of DRAM"
        assert_eq!(p.compute_units * p.simd_width, 448);
        assert_eq!(p.clock_mhz, 1150);
        assert_eq!(p.global_mem_bytes, 6 << 30);
        assert!(p.fp64);
    }

    #[test]
    fn quadro_matches_paper_description() {
        let p = DeviceProfile::quadro_fx380();
        // "16 thread processors with a clock rate of 700 MHZ and 256 MB of DRAM"
        assert_eq!(p.compute_units * p.simd_width, 16);
        assert_eq!(p.clock_mhz, 700);
        assert_eq!(p.global_mem_bytes, 256 << 20);
        assert!(!p.fp64, "paper: EP excluded because no double support");
    }

    #[test]
    fn serial_cpu_is_one_core() {
        let p = DeviceProfile::serial_cpu();
        assert_eq!(p.compute_units, 1);
        assert_eq!(p.simd_width, 1);
    }

    #[test]
    fn peak_throughput_ordering() {
        let tesla = DeviceProfile::tesla_c2050().peak_ops_per_sec();
        let quadro = DeviceProfile::quadro_fx380().peak_ops_per_sec();
        let serial = DeviceProfile::serial_cpu().peak_ops_per_sec();
        assert!(tesla > quadro && quadro > serial);
        // Tesla vs one Xeon core is a few-hundred-fold gap: the raw material
        // of the paper's 257x EP speedup.
        assert!(tesla / serial > 100.0);
    }

    #[test]
    fn cached_presets_differ_only_in_the_cache_capability() {
        let plain = DeviceProfile::tesla_c2050();
        assert!(plain.cache.is_none(), "legacy profiles stay cache-less");
        let mut cached = DeviceProfile::tesla_c2050_cached();
        let cc = cached.cache.take().unwrap();
        assert_eq!(cc.l1_sets(), 64); // 48K / (6 ways x 128B)
        assert_eq!(cc.l2_sets(), 768); // 768K / (8 ways x 128B)
        cached.name = plain.name.clone();
        assert_eq!(cached, plain, "everything but name+cache matches");
        let small = DeviceProfile::tesla_c2050_small_l1();
        let scc = small.cache.unwrap();
        assert_eq!(scc.l1_sets(), 32); // 16K / (4 ways x 128B)
        assert_eq!(scc.l2_bytes, cc.l2_bytes);
    }

    #[test]
    fn device_identity() {
        let a = Device::new(DeviceProfile::tesla_c2050());
        let b = Device::new(DeviceProfile::tesla_c2050());
        assert_ne!(a, b, "distinct instances even with equal profiles");
        let c = a.clone();
        assert_eq!(a, c);
        assert_eq!(a.id(), c.id());
    }
}
