//! Command queues over the asynchronous event-graph scheduler.
//!
//! A [`CommandQueue`] hands commands to its device's dispatcher (see
//! [`crate::sched`]) and returns immediately; each `enqueue_*_async`
//! variant yields an [`Event`] that can be waited on, passed in other
//! commands' wait lists, or inspected for its modeled profiling stamps.
//! Queues come in two flavours, mirroring
//! `CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE`:
//!
//! - **in-order** ([`CommandQueue::new`]): every command implicitly waits
//!   on the previously enqueued one, so the queue behaves like a serial
//!   stream even with empty wait lists;
//! - **out-of-order** ([`CommandQueue::new_out_of_order`]): commands are
//!   ordered *only* by their wait lists, so independent commands may
//!   overlap on the modeled timeline (transfers on the DMA engine
//!   alongside kernels on the compute units).
//!
//! The blocking `enqueue_*` methods are convenience wrappers that enqueue
//! with an empty wait list and wait for the event, surfacing its error —
//! they keep the classic synchronous call sites working unchanged. Real
//! synchronization lives in [`CommandQueue::flush`],
//! [`CommandQueue::finish`] and [`crate::sched::wait_for_events`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::buffer::Buffer;
use crate::context::Context;
use crate::device::Device;
use crate::error::{Error, Result};
use crate::exec::launch::{run_ndrange_profiled, validate_launch, Geometry};
use crate::prof::counters::{TransferDir, TransferInfo};
use crate::program::Kernel;
use crate::sched::dispatcher::{Command, Work};
use crate::sched::event::{reaches, CommandOutput};
use crate::sched::timeline::Resource;
use crate::sched::{CommandKind, Event};
use crate::timing::{model_copy, model_transfer};
use crate::types::DeviceScalar;

pub use crate::sched::wait_for_events;

/// A command queue bound to one device of a context (see module docs).
#[derive(Clone)]
pub struct CommandQueue {
    inner: Arc<QueueInner>,
}

struct QueueInner {
    context: Context,
    device: Device,
    out_of_order: bool,
    /// `CL_QUEUE_PROFILING_ENABLE` analogue: when set, kernel launches
    /// collect hardware counters and events expose
    /// [`Event::profiling_info`]. Sampled per command at enqueue time.
    profiling: AtomicBool,
    state: Mutex<QueueState>,
}

#[derive(Default)]
struct QueueState {
    /// The most recently enqueued event — the implicit dependency of the
    /// next command on an in-order queue.
    last: Option<Event>,
    /// Every event not yet known to be resolved; what `finish()` waits on.
    live: Vec<Event>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl CommandQueue {
    /// Create an **in-order** queue for `device`, which must belong to
    /// `context`.
    pub fn new(context: &Context, device: &Device) -> Result<CommandQueue> {
        CommandQueue::with_mode(context, device, false)
    }

    /// Create an **out-of-order** queue: commands are ordered only by
    /// their explicit wait lists.
    pub fn new_out_of_order(context: &Context, device: &Device) -> Result<CommandQueue> {
        CommandQueue::with_mode(context, device, true)
    }

    fn with_mode(context: &Context, device: &Device, out_of_order: bool) -> Result<CommandQueue> {
        if !context.contains(device) {
            return Err(Error::InvalidOperation(
                "device does not belong to the queue's context".into(),
            ));
        }
        Ok(CommandQueue {
            inner: Arc::new(QueueInner {
                context: context.clone(),
                device: device.clone(),
                out_of_order,
                profiling: AtomicBool::new(false),
                state: Mutex::new(QueueState::default()),
            }),
        })
    }

    /// The queue's device.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The queue's context.
    pub fn context(&self) -> &Context {
        &self.inner.context
    }

    /// Whether the queue was created with out-of-order execution.
    pub fn is_out_of_order(&self) -> bool {
        self.inner.out_of_order
    }

    /// Turn profiling on or off (`CL_QUEUE_PROFILING_ENABLE`). Affects
    /// commands enqueued *after* the call: their kernel launches collect
    /// simulated hardware counters ([`Event::counters`]) and their events
    /// answer [`Event::profiling_info`]. Off by default — a non-profiled
    /// launch skips every counter hook.
    pub fn set_profiling(&self, enabled: bool) {
        self.inner.profiling.store(enabled, Ordering::Relaxed);
    }

    /// Whether profiling is currently enabled on this queue.
    pub fn profiling_enabled(&self) -> bool {
        self.inner.profiling.load(Ordering::Relaxed)
    }

    /// Build the full dependency list for a new command (wait list plus
    /// the in-order predecessor), register the event as live, and reject
    /// wait lists that already contain a cycle of chained user events
    /// (which could never resolve — a guaranteed deadlock).
    fn admit(&self, kind: CommandKind, wait: &[Event]) -> Result<Event> {
        let mut span = crate::telemetry::span("sched", "enqueue");
        // a cycle among existing events can only arise from user-event
        // chaining; enqueueing on top of one would block forever
        for (i, ev) in wait.iter().enumerate() {
            if !ev.is_resolved() && reaches(&ev.deps_snapshot(), ev) {
                return Err(Error::DependencyCycle(format!(
                    "wait-list event {} (position {i}) depends on itself",
                    ev.id()
                )));
            }
        }
        let mut st = lock(&self.inner.state);
        let deps: Vec<Event> = wait.to_vec();
        let mut order_deps: Vec<Event> = Vec::new();
        if !self.inner.out_of_order {
            if let Some(prev) = &st.last {
                if !deps.iter().any(|d| d.id() == prev.id()) {
                    order_deps.push(prev.clone());
                }
            }
        }
        let event = Event::new_command(kind, deps, order_deps, self.profiling_enabled());
        st.last = Some(event.clone());
        st.live.retain(|e| !e.is_resolved());
        st.live.push(event.clone());
        let m = crate::telemetry::metrics();
        match kind {
            CommandKind::WriteBuffer => m.enqueued_writes.inc(),
            CommandKind::ReadBuffer => m.enqueued_reads.inc(),
            CommandKind::CopyBuffer => m.enqueued_copies.inc(),
            CommandKind::NdRangeKernel => m.enqueued_kernels.inc(),
            CommandKind::Marker | CommandKind::User => m.enqueued_markers.inc(),
        }
        let depth = st.live.len() as i64;
        m.queue_depth.set(depth);
        m.queue_depth_peak.raise_to(depth);
        if crate::telemetry::enabled() {
            span.note("kind", format!("{kind:?}"));
            span.note("event", event.id());
            span.note("wait", wait.len());
            span.note("out_of_order", self.inner.out_of_order);
            span.note("depth", depth);
        }
        Ok(event)
    }

    fn submit(&self, event: &Event, work: Box<dyn FnOnce() -> Result<Work> + Send>) {
        self.inner.device.sched().submit(Command {
            event: event.clone(),
            work,
        });
    }

    // ---- asynchronous enqueues ----

    /// Enqueue a host→device write of a typed slice into `buffer` at
    /// element `offset_elems`, gated on `wait`. Returns immediately; the
    /// data is snapshotted at enqueue time (like a blocking OpenCL write).
    pub fn enqueue_write_async<T: DeviceScalar>(
        &self,
        buffer: &Buffer,
        offset_elems: usize,
        data: &[T],
        wait: &[Event],
    ) -> Result<Event> {
        let len_bytes = std::mem::size_of_val(data);
        check_bounds(
            buffer,
            offset_elems * std::mem::size_of::<T>(),
            len_bytes,
            "write",
        )?;
        let event = self.admit(CommandKind::WriteBuffer, wait)?;
        let buffer = buffer.clone();
        let data: Vec<T> = data.to_vec();
        let modeled = model_transfer(self.inner.device.profile(), len_bytes);
        self.submit(
            &event,
            Box::new(move || {
                buffer.write_slice(offset_elems, &data)?;
                Ok(Work {
                    resource: Resource::Dma,
                    duration: modeled,
                    output: CommandOutput {
                        transfer: Some(TransferInfo {
                            bytes: len_bytes as u64,
                            direction: TransferDir::HostToDevice,
                        }),
                        ..Default::default()
                    },
                })
            }),
        );
        Ok(event)
    }

    /// Enqueue a device→host read of `len` elements from `buffer`, gated
    /// on `wait`. The returned [`ReadHandle`] yields the data once the
    /// command completes.
    pub fn enqueue_read_async<T: DeviceScalar>(
        &self,
        buffer: &Buffer,
        offset_elems: usize,
        len: usize,
        wait: &[Event],
    ) -> Result<ReadHandle<T>> {
        let len_bytes = len * std::mem::size_of::<T>();
        check_bounds(
            buffer,
            offset_elems * std::mem::size_of::<T>(),
            len_bytes,
            "read",
        )?;
        let event = self.admit(CommandKind::ReadBuffer, wait)?;
        let buffer = buffer.clone();
        let slot: Arc<Mutex<Option<Vec<T>>>> = Arc::new(Mutex::new(None));
        let out = Arc::clone(&slot);
        let modeled = model_transfer(self.inner.device.profile(), len_bytes);
        self.submit(
            &event,
            Box::new(move || {
                let data = buffer.read_vec::<T>(offset_elems, len)?;
                *lock(&out) = Some(data);
                Ok(Work {
                    resource: Resource::Dma,
                    duration: modeled,
                    output: CommandOutput {
                        transfer: Some(TransferInfo {
                            bytes: len_bytes as u64,
                            direction: TransferDir::DeviceToHost,
                        }),
                        ..Default::default()
                    },
                })
            }),
        );
        Ok(ReadHandle { event, slot })
    }

    /// Enqueue a device-internal copy of `len_bytes` from `src` (at byte
    /// `src_offset`) into `dst` (at byte `dst_offset`), gated on `wait`.
    /// Overlapping ranges of the same buffer are rejected
    /// (`CL_MEM_COPY_OVERLAP` in real OpenCL).
    pub fn enqueue_copy_async(
        &self,
        src: &Buffer,
        dst: &Buffer,
        src_offset: usize,
        dst_offset: usize,
        len_bytes: usize,
        wait: &[Event],
    ) -> Result<Event> {
        check_bounds(src, src_offset, len_bytes, "copy source")?;
        check_bounds(dst, dst_offset, len_bytes, "copy destination")?;
        if src.id() == dst.id() {
            let overlap =
                src_offset < dst_offset + len_bytes && dst_offset < src_offset + len_bytes;
            if overlap && len_bytes > 0 {
                return Err(Error::InvalidBufferAccess(format!(
                    "copy ranges overlap within one buffer \
                     (src {src_offset}..{}, dst {dst_offset}..{})",
                    src_offset + len_bytes,
                    dst_offset + len_bytes
                )));
            }
        }
        let event = self.admit(CommandKind::CopyBuffer, wait)?;
        let src = src.clone();
        let dst = dst.clone();
        let modeled = model_copy(self.inner.device.profile(), len_bytes);
        self.submit(
            &event,
            Box::new(move || {
                let mut staging = vec![0u8; len_bytes];
                src.read_bytes(src_offset, &mut staging)?;
                dst.write_bytes(dst_offset, &staging)?;
                Ok(Work {
                    resource: Resource::Dma,
                    duration: modeled,
                    output: CommandOutput {
                        transfer: Some(TransferInfo {
                            bytes: len_bytes as u64,
                            direction: TransferDir::DeviceToDevice,
                        }),
                        ..Default::default()
                    },
                })
            }),
        );
        Ok(event)
    }

    /// Enqueue a kernel launch over `global` (with optional explicit
    /// `local`) work-items, gated on `wait`. Arguments are snapshotted and
    /// the launch validated **at enqueue time** (geometry, capabilities),
    /// so those errors surface synchronously; execution-time faults
    /// (memory faults, divergence) resolve the event as `Error`.
    pub fn enqueue_ndrange_async(
        &self,
        kernel: &Kernel,
        global: &[usize],
        local: Option<&[usize]>,
        wait: &[Event],
    ) -> Result<Event> {
        self.enqueue_ndrange_span_async(kernel, global, local, None, wait)
    }

    /// Enqueue a **partial** kernel launch: only the linearized work-groups
    /// in `group_span = [start, end)` execute, while the geometry (and thus
    /// every builtin the kernel can observe) stays that of the full launch.
    /// Chunks of one NDRange launched this way across several devices
    /// compose to exactly the single-device result; see [`crate::serve`]
    /// for the partitioner built on top.
    pub fn enqueue_ndrange_groups_async(
        &self,
        kernel: &Kernel,
        global: &[usize],
        local: Option<&[usize]>,
        group_span: (usize, usize),
        wait: &[Event],
    ) -> Result<Event> {
        self.enqueue_ndrange_span_async(kernel, global, local, Some(group_span), wait)
    }

    fn enqueue_ndrange_span_async(
        &self,
        kernel: &Kernel,
        global: &[usize],
        local: Option<&[usize]>,
        group_span: Option<(usize, usize)>,
        wait: &[Event],
    ) -> Result<Event> {
        let geom = Geometry::new(global, local, &self.inner.device)?;
        if let Some((s, e)) = group_span {
            if s >= e || e > geom.total_groups() {
                return Err(Error::InvalidLaunch(format!(
                    "group span {s}..{e} is not a non-empty subrange of 0..{}",
                    geom.total_groups()
                )));
            }
        }
        let args = kernel.bound_args()?;
        validate_launch(kernel.func_ir(), &args, &geom, &self.inner.device)?;
        kernel.lint_launch(&args, &geom)?;
        let sanitize = kernel.sanitize();
        let collect = self.profiling_enabled();
        let event = self.admit(CommandKind::NdRangeKernel, wait)?;
        let kernel = kernel.clone();
        let device = self.inner.device.clone();
        let groups = group_span
            .map(|(s, e)| e - s)
            .unwrap_or_else(|| geom.total_groups());
        self.submit(
            &event,
            Box::new(move || {
                let (timing, counters) = run_ndrange_profiled(
                    kernel.module(),
                    kernel.func_ir(),
                    &args,
                    geom,
                    &device,
                    sanitize,
                    collect,
                    None,
                    group_span,
                )?;
                Ok(Work {
                    resource: Resource::Compute { groups },
                    duration: timing.device_seconds,
                    output: CommandOutput {
                        kernel_timing: Some(timing),
                        counters,
                        transfer: None,
                        label: Some(kernel.name().to_string()),
                    },
                })
            }),
        );
        Ok(event)
    }

    /// Enqueue a marker: a zero-duration command that completes when the
    /// events in `wait` complete — or, with an empty `wait`, when
    /// everything previously enqueued on this queue completes
    /// (`clEnqueueMarkerWithWaitList` semantics).
    pub fn enqueue_marker(&self, wait: &[Event]) -> Result<Event> {
        let all_live;
        let wait = if wait.is_empty() {
            all_live = lock(&self.inner.state).live.clone();
            &all_live[..]
        } else {
            wait
        };
        let event = self.admit(CommandKind::Marker, wait)?;
        self.submit(
            &event,
            Box::new(|| {
                Ok(Work {
                    resource: Resource::Instant,
                    duration: 0.0,
                    output: CommandOutput::default(),
                })
            }),
        );
        Ok(event)
    }

    // ---- blocking wrappers (the classic synchronous API) ----

    /// Copy a typed host slice into `buffer` starting at element `offset`,
    /// blocking until done.
    pub fn enqueue_write<T: DeviceScalar>(
        &self,
        buffer: &Buffer,
        offset_elems: usize,
        data: &[T],
    ) -> Result<Event> {
        let ev = self.enqueue_write_async(buffer, offset_elems, data, &[])?;
        ev.wait()?;
        Ok(ev)
    }

    /// Copy `len` elements from `buffer` into a fresh Vec, blocking until
    /// done.
    pub fn enqueue_read<T: DeviceScalar>(
        &self,
        buffer: &Buffer,
        offset_elems: usize,
        len: usize,
    ) -> Result<(Vec<T>, Event)> {
        let handle = self.enqueue_read_async::<T>(buffer, offset_elems, len, &[])?;
        let event = handle.event().clone();
        let data = handle.wait()?;
        Ok((data, event))
    }

    /// Device-internal buffer→buffer copy, blocking until done.
    pub fn enqueue_copy(
        &self,
        src: &Buffer,
        dst: &Buffer,
        src_offset: usize,
        dst_offset: usize,
        len_bytes: usize,
    ) -> Result<Event> {
        let ev = self.enqueue_copy_async(src, dst, src_offset, dst_offset, len_bytes, &[])?;
        ev.wait()?;
        Ok(ev)
    }

    /// Launch a kernel and block until it completes, surfacing any
    /// execution fault as this call's error.
    pub fn enqueue_ndrange(
        &self,
        kernel: &Kernel,
        global: &[usize],
        local: Option<&[usize]>,
    ) -> Result<Event> {
        let ev = self.enqueue_ndrange_async(kernel, global, local, &[])?;
        ev.wait()?;
        Ok(ev)
    }

    // ---- synchronization ----

    /// Make sure the device is working on everything enqueued so far.
    /// Commands are handed to the dispatcher at enqueue time already, so
    /// this only wakes it; it never blocks.
    pub fn flush(&self) {
        self.inner.device.sched().nudge();
    }

    /// Block until every command enqueued on this queue has resolved.
    /// Individual command failures do not surface here (they are on the
    /// events); use [`wait_for_events`] to propagate them.
    pub fn finish(&self) {
        let live = {
            let mut st = lock(&self.inner.state);
            std::mem::take(&mut st.live)
        };
        for ev in &live {
            let _ = ev.wait();
        }
    }
}

/// Pending result of [`CommandQueue::enqueue_read_async`].
pub struct ReadHandle<T> {
    event: Event,
    slot: Arc<Mutex<Option<Vec<T>>>>,
}

impl<T> ReadHandle<T> {
    /// The event of the read command (for wait lists and profiling).
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// Block until the read completes and take the data.
    pub fn wait(self) -> Result<Vec<T>> {
        self.event.wait()?;
        lock(&self.slot)
            .take()
            .ok_or_else(|| Error::InvalidOperation("read completed without data".into()))
    }
}

/// Enqueue-time byte-range validation shared by transfers and copies.
fn check_bounds(buffer: &Buffer, byte_offset: usize, len_bytes: usize, what: &str) -> Result<()> {
    let end = byte_offset
        .checked_add(len_bytes)
        .ok_or_else(|| Error::InvalidBufferAccess(format!("{what} range overflows")))?;
    if end > buffer.len_bytes() {
        return Err(Error::InvalidBufferAccess(format!(
            "{what} range {byte_offset}..{end} exceeds buffer of {} bytes",
            buffer.len_bytes()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemAccess;
    use crate::device::DeviceProfile;
    use crate::program::Program;
    use crate::sched::EventStatus;

    fn setup() -> (Context, CommandQueue) {
        let d = Device::new(DeviceProfile::tesla_c2050());
        let ctx = Context::new(std::slice::from_ref(&d)).unwrap();
        let q = CommandQueue::new(&ctx, &d).unwrap();
        (ctx, q)
    }

    #[test]
    fn queue_requires_context_membership() {
        let d1 = Device::new(DeviceProfile::tesla_c2050());
        let d2 = Device::new(DeviceProfile::quadro_fx380());
        let ctx = Context::new(&[d1]).unwrap();
        assert!(CommandQueue::new(&ctx, &d2).is_err());
        assert!(CommandQueue::new_out_of_order(&ctx, &d2).is_err());
    }

    #[test]
    fn write_read_round_trip_with_events() {
        let (ctx, q) = setup();
        let buf = ctx.create_buffer(64, MemAccess::ReadWrite).unwrap();
        let ev = q.enqueue_write(&buf, 0, &[1.0f32, 2.0, 3.0]).unwrap();
        assert_eq!(ev.kind(), CommandKind::WriteBuffer);
        assert_eq!(ev.status(), EventStatus::Complete);
        assert!(ev.modeled_seconds() > 0.0);
        let (data, ev) = q.enqueue_read::<f32>(&buf, 0, 3).unwrap();
        assert_eq!(data, vec![1.0, 2.0, 3.0]);
        assert_eq!(ev.kind(), CommandKind::ReadBuffer);
    }

    #[test]
    fn end_to_end_fill_kernel() {
        let (ctx, q) = setup();
        let src = "__kernel void fill(__global float* out, float v) {
            out[get_global_id(0)] = v;
        }";
        let p = Program::from_source(&ctx, src);
        p.build("").unwrap();
        let k = p.kernel("fill").unwrap();
        let buf = ctx.create_buffer(4 * 100, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        k.set_arg_scalar(1, 2.5f32).unwrap();
        let ev = q.enqueue_ndrange(&k, &[100], None).unwrap();
        assert_eq!(ev.kind(), CommandKind::NdRangeKernel);
        let t = ev.kernel_timing().unwrap();
        assert!(t.device_seconds > 0.0);
        assert!(t.totals.instructions > 0);
        let (data, _) = q.enqueue_read::<f32>(&buf, 0, 100).unwrap();
        assert!(data.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn fp64_kernel_rejected_on_quadro() {
        let d = Device::new(DeviceProfile::quadro_fx380());
        let ctx = Context::new(std::slice::from_ref(&d)).unwrap();
        let q = CommandQueue::new(&ctx, &d).unwrap();
        let src = "__kernel void f(__global double* out) { out[get_global_id(0)] = 1.0; }";
        let p = Program::from_source(&ctx, src);
        p.build("").unwrap();
        let k = p.kernel("f").unwrap();
        let buf = ctx.create_buffer(8 * 4, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let err = q.enqueue_ndrange(&k, &[4], None).unwrap_err();
        assert!(matches!(err, Error::UnsupportedCapability(_)), "{err}");
    }

    #[test]
    fn out_of_bounds_access_trapped() {
        let (ctx, q) = setup();
        let src = "__kernel void oob(__global float* out) { out[get_global_id(0) + 1000] = 1.0f; }";
        let p = Program::from_source(&ctx, src);
        p.build("").unwrap();
        let k = p.kernel("oob").unwrap();
        let buf = ctx.create_buffer(16, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let err = q.enqueue_ndrange(&k, &[4], None).unwrap_err();
        assert!(matches!(err, Error::MemoryFault { .. }), "{err}");
    }

    #[test]
    fn async_write_gated_on_user_event() {
        let (ctx, q) = setup();
        let buf = ctx.create_buffer(16, MemAccess::ReadWrite).unwrap();
        let gate = Event::user();
        let ev = q
            .enqueue_write_async(&buf, 0, &[9i32, 9, 9, 9], std::slice::from_ref(&gate))
            .unwrap();
        // the command must not run while the gate is open
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(
            !matches!(ev.status(), EventStatus::Complete | EventStatus::Error),
            "command ran before its user-event dependency"
        );
        assert_eq!(buf.read_vec::<i32>(0, 4).unwrap(), vec![0, 0, 0, 0]);
        gate.set_complete().unwrap();
        ev.wait().unwrap();
        assert_eq!(buf.read_vec::<i32>(0, 4).unwrap(), vec![9, 9, 9, 9]);
    }

    #[test]
    fn failed_dependency_poisons_dependents_with_cause_chain() {
        let (ctx, q) = setup();
        let buf = ctx.create_buffer(16, MemAccess::ReadWrite).unwrap();
        let gate = Event::user();
        let first = q
            .enqueue_write_async(&buf, 0, &[1i32], std::slice::from_ref(&gate))
            .unwrap();
        let second = q
            .enqueue_write_async(&buf, 1, &[2i32], std::slice::from_ref(&first))
            .unwrap();
        gate.set_error(Error::InvalidOperation("host aborted".into()))
            .unwrap();
        assert!(second.wait().is_err());
        assert_eq!(first.status(), EventStatus::Error);
        assert_eq!(second.status(), EventStatus::Error);
        // the causal chain reaches the original host error through two
        // levels of DependencyFailed
        let err = second.error().unwrap();
        assert!(matches!(err, Error::DependencyFailed { .. }), "{err}");
        assert_eq!(
            *err.root_cause(),
            Error::InvalidOperation("host aborted".into())
        );
        // the buffer was never touched
        assert_eq!(buf.read_vec::<i32>(0, 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn copy_buffer_round_trip_and_validation() {
        let (ctx, q) = setup();
        let src = ctx
            .create_buffer_from(&[1i32, 2, 3, 4], MemAccess::ReadWrite)
            .unwrap();
        let dst = ctx.create_buffer(16, MemAccess::ReadWrite).unwrap();
        let ev = q.enqueue_copy(&src, &dst, 0, 0, 16).unwrap();
        assert_eq!(ev.kind(), CommandKind::CopyBuffer);
        assert!(ev.modeled_seconds() > 0.0);
        assert_eq!(dst.read_vec::<i32>(0, 4).unwrap(), vec![1, 2, 3, 4]);

        // out-of-range destinations are rejected at enqueue
        let err = q.enqueue_copy(&src, &dst, 0, 8, 16).unwrap_err();
        assert!(matches!(err, Error::InvalidBufferAccess(_)), "{err}");
        // overlapping self-copy is rejected; disjoint self-copy is fine
        let err = q.enqueue_copy(&src, &src, 0, 4, 8).unwrap_err();
        assert!(matches!(err, Error::InvalidBufferAccess(_)), "{err}");
        q.enqueue_copy(&src, &src, 0, 8, 8).unwrap();
        assert_eq!(src.read_vec::<i32>(0, 4).unwrap(), vec![1, 2, 1, 2]);
    }

    #[test]
    fn in_order_queue_chains_implicitly() {
        let (ctx, q) = setup();
        let buf = ctx.create_buffer(8, MemAccess::ReadWrite).unwrap();
        let gate = Event::user();
        // gated first command; the second has an EMPTY wait list but must
        // still run after the first because the queue is in-order
        let _first = q
            .enqueue_write_async(&buf, 0, &[7i32], std::slice::from_ref(&gate))
            .unwrap();
        let second = q.enqueue_write_async(&buf, 1, &[8i32], &[]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(
            !second.is_resolved(),
            "in-order command overtook its predecessor"
        );
        gate.set_complete().unwrap();
        second.wait().unwrap();
        assert_eq!(buf.read_vec::<i32>(0, 2).unwrap(), vec![7, 8]);
    }

    #[test]
    fn out_of_order_queue_lets_independent_commands_pass() {
        let d = Device::new(DeviceProfile::tesla_c2050());
        let ctx = Context::new(std::slice::from_ref(&d)).unwrap();
        let q = CommandQueue::new_out_of_order(&ctx, &d).unwrap();
        let buf = ctx.create_buffer(8, MemAccess::ReadWrite).unwrap();
        let gate = Event::user();
        let blocked = q
            .enqueue_write_async(&buf, 0, &[1i32], std::slice::from_ref(&gate))
            .unwrap();
        let free = q.enqueue_write_async(&buf, 1, &[2i32], &[]).unwrap();
        // the independent command completes while the first stays gated
        free.wait().unwrap();
        assert!(!blocked.is_resolved());
        gate.set_complete().unwrap();
        blocked.wait().unwrap();
        assert_eq!(buf.read_vec::<i32>(0, 2).unwrap(), vec![1, 2]);
    }

    #[test]
    fn marker_with_empty_list_waits_for_queue() {
        let (ctx, q) = setup();
        let buf = ctx.create_buffer(8, MemAccess::ReadWrite).unwrap();
        let gate = Event::user();
        let _w = q
            .enqueue_write_async(&buf, 0, &[5i32], std::slice::from_ref(&gate))
            .unwrap();
        let marker = q.enqueue_marker(&[]).unwrap();
        assert_eq!(marker.kind(), CommandKind::Marker);
        assert!(!marker.is_resolved());
        gate.set_complete().unwrap();
        marker.wait().unwrap();
        assert_eq!(buf.read_vec::<i32>(0, 1).unwrap(), vec![5]);
    }

    #[test]
    fn user_event_chain_cycles_are_rejected() {
        let a = Event::user();
        let b = Event::user();
        a.set_complete_on(std::slice::from_ref(&b)).unwrap();
        let err = b.set_complete_on(std::slice::from_ref(&a)).unwrap_err();
        assert!(matches!(err, Error::DependencyCycle(_)), "{err}");
        // the non-cyclic chain still works
        b.set_complete().unwrap();
        a.wait().unwrap();
    }

    #[test]
    fn finish_drains_the_queue() {
        let (ctx, q) = setup();
        let buf = ctx.create_buffer(4096, MemAccess::ReadWrite).unwrap();
        for i in 0..32 {
            q.enqueue_write_async(&buf, i, &[i as i32], &[]).unwrap();
        }
        q.flush();
        q.finish();
        let data = buf.read_vec::<i32>(0, 32).unwrap();
        assert_eq!(data, (0..32).collect::<Vec<i32>>());
    }

    #[test]
    fn profiling_stamps_are_ordered_and_overlap_capable() {
        let d = Device::new(DeviceProfile::tesla_c2050());
        let ctx = Context::new(std::slice::from_ref(&d)).unwrap();
        let q = CommandQueue::new_out_of_order(&ctx, &d).unwrap();
        d.reset_timeline();
        let a = ctx.create_buffer(1 << 20, MemAccess::ReadWrite).unwrap();
        let b = ctx.create_buffer(1 << 20, MemAccess::ReadWrite).unwrap();
        let payload = vec![1.0f32; 1 << 18];
        let e1 = q.enqueue_write_async(&a, 0, &payload, &[]).unwrap();
        let e2 = q.enqueue_write_async(&b, 0, &payload, &[]).unwrap();
        wait_for_events(&[e1.clone(), e2.clone()]).unwrap();
        let p1 = e1.profile();
        let p2 = e2.profile();
        for p in [p1, p2] {
            assert!(p.queued <= p.submitted && p.submitted <= p.started && p.started < p.ended);
        }
        // both transfers use the single DMA engine: they serialize on the
        // modeled timeline even though both were eligible at 0.0
        let (first, second) = if p1.started <= p2.started {
            (p1, p2)
        } else {
            (p2, p1)
        };
        assert!(second.started >= first.ended, "DMA engine double-booked");
    }
}
