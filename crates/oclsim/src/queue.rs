//! Command queues and events.
//!
//! The simulated queue executes eagerly and in order (so `finish()` is a
//! semantic no-op), but every operation returns an [`Event`] carrying both
//! the measured host wall time and the *modeled* device time from the
//! analytic timing model — the quantity the evaluation figures are built
//! from.

use std::time::{Duration, Instant};

use crate::buffer::Buffer;
use crate::context::Context;
use crate::device::Device;
use crate::error::{Error, Result};
use crate::exec::launch::{run_ndrange, validate_launch, Geometry};
use crate::program::Kernel;
use crate::timing::{model_transfer, TimingBreakdown};
use crate::types::DeviceScalar;

/// What an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    WriteBuffer,
    ReadBuffer,
    NdRangeKernel,
}

/// Profiling record of one enqueued command.
#[derive(Debug, Clone)]
pub struct Event {
    kind: CommandKind,
    wall: Duration,
    modeled_seconds: f64,
    kernel_timing: Option<TimingBreakdown>,
}

impl Event {
    /// What the command was.
    pub fn kind(&self) -> CommandKind {
        self.kind
    }

    /// Host wall-clock time the simulation of the command took. This is the
    /// *simulator's* cost, not the modeled device cost.
    pub fn wall_time(&self) -> Duration {
        self.wall
    }

    /// Modeled device/interconnect time in seconds — the counterpart of
    /// `CL_PROFILING_COMMAND_END - CL_PROFILING_COMMAND_START`.
    pub fn modeled_seconds(&self) -> f64 {
        self.modeled_seconds
    }

    /// Detailed timing breakdown (kernel launches only).
    pub fn kernel_timing(&self) -> Option<&TimingBreakdown> {
        self.kernel_timing.as_ref()
    }
}

/// An in-order command queue bound to one device of a context.
#[derive(Clone)]
pub struct CommandQueue {
    context: Context,
    device: Device,
}

impl CommandQueue {
    /// Create a queue for `device`, which must belong to `context`.
    pub fn new(context: &Context, device: &Device) -> Result<CommandQueue> {
        if !context.contains(device) {
            return Err(Error::InvalidOperation(
                "device does not belong to the queue's context".into(),
            ));
        }
        Ok(CommandQueue { context: context.clone(), device: device.clone() })
    }

    /// The queue's device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The queue's context.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Copy a typed host slice into `buffer` starting at element `offset`.
    pub fn enqueue_write<T: DeviceScalar>(
        &self,
        buffer: &Buffer,
        offset_elems: usize,
        data: &[T],
    ) -> Result<Event> {
        let start = Instant::now();
        buffer.write_slice(offset_elems, data)?;
        Ok(Event {
            kind: CommandKind::WriteBuffer,
            wall: start.elapsed(),
            modeled_seconds: model_transfer(self.device.profile(), std::mem::size_of_val(data)),
            kernel_timing: None,
        })
    }

    /// Copy `len` elements from `buffer` into a fresh Vec.
    pub fn enqueue_read<T: DeviceScalar>(
        &self,
        buffer: &Buffer,
        offset_elems: usize,
        len: usize,
    ) -> Result<(Vec<T>, Event)> {
        let start = Instant::now();
        let out = buffer.read_vec::<T>(offset_elems, len)?;
        let ev = Event {
            kind: CommandKind::ReadBuffer,
            wall: start.elapsed(),
            modeled_seconds: model_transfer(self.device.profile(), len * std::mem::size_of::<T>()),
            kernel_timing: None,
        };
        Ok((out, ev))
    }

    /// Launch a kernel over `global` (with optional explicit `local`)
    /// work-items. Blocks until complete (the queue is synchronous).
    pub fn enqueue_ndrange(
        &self,
        kernel: &Kernel,
        global: &[usize],
        local: Option<&[usize]>,
    ) -> Result<Event> {
        let start = Instant::now();
        let geom = Geometry::new(global, local, &self.device)?;
        let args = kernel.bound_args()?;
        let fir = kernel.func_ir();
        validate_launch(fir, &args, &geom, &self.device)?;
        let timing = run_ndrange(kernel.module(), fir, &args, geom, &self.device)?;
        Ok(Event {
            kind: CommandKind::NdRangeKernel,
            wall: start.elapsed(),
            modeled_seconds: timing.device_seconds,
            kernel_timing: Some(timing),
        })
    }

    /// Wait for all enqueued commands. The simulated queue is synchronous,
    /// so this is a no-op kept for API fidelity.
    pub fn finish(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemAccess;
    use crate::device::DeviceProfile;
    use crate::program::Program;

    fn setup() -> (Context, CommandQueue) {
        let d = Device::new(DeviceProfile::tesla_c2050());
        let ctx = Context::new(&[d.clone()]).unwrap();
        let q = CommandQueue::new(&ctx, &d).unwrap();
        (ctx, q)
    }

    #[test]
    fn queue_requires_context_membership() {
        let d1 = Device::new(DeviceProfile::tesla_c2050());
        let d2 = Device::new(DeviceProfile::quadro_fx380());
        let ctx = Context::new(&[d1]).unwrap();
        assert!(CommandQueue::new(&ctx, &d2).is_err());
    }

    #[test]
    fn write_read_round_trip_with_events() {
        let (ctx, q) = setup();
        let buf = ctx.create_buffer(64, MemAccess::ReadWrite).unwrap();
        let ev = q.enqueue_write(&buf, 0, &[1.0f32, 2.0, 3.0]).unwrap();
        assert_eq!(ev.kind(), CommandKind::WriteBuffer);
        assert!(ev.modeled_seconds() > 0.0);
        let (data, ev) = q.enqueue_read::<f32>(&buf, 0, 3).unwrap();
        assert_eq!(data, vec![1.0, 2.0, 3.0]);
        assert_eq!(ev.kind(), CommandKind::ReadBuffer);
    }

    #[test]
    fn end_to_end_fill_kernel() {
        let (ctx, q) = setup();
        let src = "__kernel void fill(__global float* out, float v) {
            out[get_global_id(0)] = v;
        }";
        let p = Program::from_source(&ctx, src);
        p.build("").unwrap();
        let k = p.kernel("fill").unwrap();
        let buf = ctx.create_buffer(4 * 100, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        k.set_arg_scalar(1, 2.5f32).unwrap();
        let ev = q.enqueue_ndrange(&k, &[100], None).unwrap();
        assert_eq!(ev.kind(), CommandKind::NdRangeKernel);
        let t = ev.kernel_timing().unwrap();
        assert!(t.device_seconds > 0.0);
        assert!(t.totals.instructions > 0);
        let (data, _) = q.enqueue_read::<f32>(&buf, 0, 100).unwrap();
        assert!(data.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn fp64_kernel_rejected_on_quadro() {
        let d = Device::new(DeviceProfile::quadro_fx380());
        let ctx = Context::new(&[d.clone()]).unwrap();
        let q = CommandQueue::new(&ctx, &d).unwrap();
        let src = "__kernel void f(__global double* out) { out[get_global_id(0)] = 1.0; }";
        let p = Program::from_source(&ctx, src);
        p.build("").unwrap();
        let k = p.kernel("f").unwrap();
        let buf = ctx.create_buffer(8 * 4, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let err = q.enqueue_ndrange(&k, &[4], None).unwrap_err();
        assert!(matches!(err, Error::UnsupportedCapability(_)), "{err}");
    }

    #[test]
    fn out_of_bounds_access_trapped() {
        let (ctx, q) = setup();
        let src = "__kernel void oob(__global float* out) { out[get_global_id(0) + 1000] = 1.0f; }";
        let p = Program::from_source(&ctx, src);
        p.build("").unwrap();
        let k = p.kernel("oob").unwrap();
        let buf = ctx.create_buffer(16, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let err = q.enqueue_ndrange(&k, &[4], None).unwrap_err();
        assert!(matches!(err, Error::MemoryFault { .. }), "{err}");
    }
}
