//! # oclsim — a simulated OpenCL platform
//!
//! `oclsim` is a from-scratch, pure-Rust stand-in for an OpenCL
//! implementation: it accepts **OpenCL C source strings**, compiles them
//! with its own front-end (preprocessor → lexer → parser → semantic
//! analysis → typed IR), and executes kernels on a **simulated
//! data-parallel device**. Work-groups are scheduled across host worker
//! threads; inside a work-group, work-items run in SIMT lock-step with
//! divergence masks, which yields exact OpenCL barrier and local-memory
//! semantics (and turns the undefined behaviours of real devices —
//! out-of-bounds accesses, divergent barriers — into trapped errors).
//!
//! Because no GPU is attached, performance is *modeled*, not measured: the
//! interpreter counts architectural events (instructions per warp,
//! coalesced memory transactions, barriers) and a roofline-style analytic
//! model over a [`device::DeviceProfile`] converts them to a device time.
//! The built-in profiles mirror the testbed of the HPL paper: a Tesla
//! C2050/C2070-class GPU, a Quadro FX 380-class GPU (no fp64), and a Xeon
//! host CPU.
//!
//! ## Example
//!
//! ```
//! use oclsim::{Platform, Context, CommandQueue, Program, MemAccess};
//!
//! let platform = Platform::default_platform();
//! let device = platform.default_accelerator().unwrap();
//! let ctx = Context::new(&[device.clone()]).unwrap();
//! let queue = CommandQueue::new(&ctx, &device).unwrap();
//!
//! let src = r#"
//!     __kernel void axpy(__global float* y, __global const float* x, float a) {
//!         size_t i = get_global_id(0);
//!         y[i] = a * x[i] + y[i];
//!     }
//! "#;
//! let program = Program::from_source(&ctx, src);
//! program.build("").unwrap();
//! let kernel = program.kernel("axpy").unwrap();
//!
//! let x = ctx.create_buffer_from(&[1.0f32; 8], MemAccess::ReadOnly).unwrap();
//! let y = ctx.create_buffer_from(&[2.0f32; 8], MemAccess::ReadWrite).unwrap();
//! kernel.set_arg_buffer(0, &y).unwrap();
//! kernel.set_arg_buffer(1, &x).unwrap();
//! kernel.set_arg_scalar(2, 3.0f32).unwrap();
//! let event = queue.enqueue_ndrange(&kernel, &[8], None).unwrap();
//!
//! assert_eq!(y.read_vec::<f32>(0, 8).unwrap(), vec![5.0; 8]);
//! assert!(event.modeled_seconds() > 0.0);
//! ```

pub mod buffer;
pub mod clc;
pub mod context;
pub mod device;
pub mod error;
pub mod exec;
pub mod obs;
pub mod platform;
pub mod prof;
pub mod program;
pub mod queue;
pub mod sched;
pub mod serve;
pub mod telemetry;
pub mod timing;
pub mod types;

pub use buffer::{Buffer, MemAccess};
pub use clc::analysis::{Analysis, DiagKind, Diagnostic, Severity, Strictness};
pub use clc::opt::{OptLevel, PassStats};
pub use context::Context;
pub use device::{Device, DeviceProfile, DeviceType};
pub use error::{Error, Result};
pub use exec::wg::{backend, backend_name, set_backend, Backend};
pub use obs::{take_postmortems, tenant_obs, Postmortem, RequestTrace, TraceId};
pub use platform::Platform;
pub use prof::{
    chrome_trace, chrome_trace_with_host, profile_launch, roofline, validate_chrome_trace,
    CacheConfig, GroupCounters, InstrClass, InstrMix, LaunchCounters, RooflinePoint, TransferDir,
    TransferInfo,
};
pub use program::{Kernel, Program};
pub use queue::{CommandQueue, ReadHandle};
pub use sched::{wait_for_events, CommandKind, Event, EventStatus, TimelineStamps};
pub use timing::{GroupStats, TimingBreakdown};
pub use types::{DeviceScalar, ScalarType, Value};
