//! Scalar types and bit-level value representation.
//!
//! Every value flowing through the simulated device is stored as the raw
//! bits of a `u64`. The interpreter's opcodes are statically typed (the
//! compiler resolves the operand type of every operation), so no runtime
//! tag is needed on individual lane values — exactly like a register on
//! real hardware. [`Value`] is the *host-side* tagged representation used
//! when setting scalar kernel arguments.

/// The scalar element types supported by the simulated device.
///
/// This is the OpenCL C scalar type set minus `half`; `size_t` maps to
/// [`ScalarType::U64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    Bool,
    I8,
    U8,
    I16,
    U16,
    I32,
    U32,
    I64,
    U64,
    F32,
    F64,
}

impl ScalarType {
    /// Size of the type in bytes as laid out in device memory.
    pub fn size(self) -> usize {
        match self {
            ScalarType::Bool | ScalarType::I8 | ScalarType::U8 => 1,
            ScalarType::I16 | ScalarType::U16 => 2,
            ScalarType::I32 | ScalarType::U32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::U64 | ScalarType::F64 => 8,
        }
    }

    /// True for `float` and `double`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// True for every integer type including `bool`.
    pub fn is_integer(self) -> bool {
        !self.is_float()
    }

    /// True for signed integer types.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            ScalarType::I8 | ScalarType::I16 | ScalarType::I32 | ScalarType::I64
        )
    }

    /// OpenCL C spelling of the type.
    pub fn cl_name(self) -> &'static str {
        match self {
            ScalarType::Bool => "bool",
            ScalarType::I8 => "char",
            ScalarType::U8 => "uchar",
            ScalarType::I16 => "short",
            ScalarType::U16 => "ushort",
            ScalarType::I32 => "int",
            ScalarType::U32 => "uint",
            ScalarType::I64 => "long",
            ScalarType::U64 => "ulong",
            ScalarType::F32 => "float",
            ScalarType::F64 => "double",
        }
    }

    /// The type an operand of this type is promoted to by the C "usual
    /// arithmetic conversions" when combined with `other`.
    ///
    /// Small integer types promote to `int` first; then the wider / more
    /// float-ish type wins; unsigned wins over signed at equal rank.
    pub fn promote(self, other: ScalarType) -> ScalarType {
        use ScalarType::*;
        let a = self.integer_promote();
        let b = other.integer_promote();
        if a == F64 || b == F64 {
            return F64;
        }
        if a == F32 || b == F32 {
            return F32;
        }
        // integer-integer: rank, then unsignedness
        let rank = |t: ScalarType| match t {
            I32 | U32 => 0,
            I64 | U64 => 1,
            _ => unreachable!("integer_promote yields >= int"),
        };
        let (hi, lo) = if rank(a) >= rank(b) { (a, b) } else { (b, a) };
        if rank(hi) > rank(lo) {
            hi
        } else {
            // equal rank: unsigned wins
            match (hi, lo) {
                (U32, _) | (_, U32) => U32,
                (U64, _) | (_, U64) => U64,
                _ => hi,
            }
        }
    }

    /// C integer promotion: everything smaller than `int` becomes `int`.
    pub fn integer_promote(self) -> ScalarType {
        use ScalarType::*;
        match self {
            Bool | I8 | U8 | I16 | U16 => I32,
            t => t,
        }
    }
}

/// Host-side tagged scalar value, used to set kernel arguments and to read
/// results in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Bool(bool),
    I8(i8),
    U8(u8),
    I16(i16),
    U16(u16),
    I32(i32),
    U32(u32),
    I64(i64),
    U64(u64),
    F32(f32),
    F64(f64),
}

impl Value {
    /// The [`ScalarType`] of this value.
    pub fn scalar_type(self) -> ScalarType {
        match self {
            Value::Bool(_) => ScalarType::Bool,
            Value::I8(_) => ScalarType::I8,
            Value::U8(_) => ScalarType::U8,
            Value::I16(_) => ScalarType::I16,
            Value::U16(_) => ScalarType::U16,
            Value::I32(_) => ScalarType::I32,
            Value::U32(_) => ScalarType::U32,
            Value::I64(_) => ScalarType::I64,
            Value::U64(_) => ScalarType::U64,
            Value::F32(_) => ScalarType::F32,
            Value::F64(_) => ScalarType::F64,
        }
    }

    /// Raw 64-bit representation used by the interpreter's register file.
    pub fn to_bits(self) -> u64 {
        match self {
            Value::Bool(b) => b as u64,
            Value::I8(v) => v as i64 as u64,
            Value::U8(v) => v as u64,
            Value::I16(v) => v as i64 as u64,
            Value::U16(v) => v as u64,
            Value::I32(v) => v as i64 as u64,
            Value::U32(v) => v as u64,
            Value::I64(v) => v as u64,
            Value::U64(v) => v,
            Value::F32(v) => v.to_bits() as u64,
            Value::F64(v) => v.to_bits(),
        }
    }

    /// Reconstruct a tagged value from raw bits and a type.
    pub fn from_bits(bits: u64, ty: ScalarType) -> Value {
        match ty {
            ScalarType::Bool => Value::Bool(bits != 0),
            ScalarType::I8 => Value::I8(bits as i8),
            ScalarType::U8 => Value::U8(bits as u8),
            ScalarType::I16 => Value::I16(bits as i16),
            ScalarType::U16 => Value::U16(bits as u16),
            ScalarType::I32 => Value::I32(bits as i32),
            ScalarType::U32 => Value::U32(bits as u32),
            ScalarType::I64 => Value::I64(bits as i64),
            ScalarType::U64 => Value::U64(bits),
            ScalarType::F32 => Value::F32(f32::from_bits(bits as u32)),
            ScalarType::F64 => Value::F64(f64::from_bits(bits)),
        }
    }
}

macro_rules! impl_from_value {
    ($($t:ty => $variant:ident),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$variant(v) }
        })*
    };
}
impl_from_value!(bool => Bool, i8 => I8, u8 => U8, i16 => I16, u16 => U16,
                 i32 => I32, u32 => U32, i64 => I64, u64 => U64, f32 => F32, f64 => F64);

/// A type that can live in a device buffer. Implemented for the scalar
/// types the simulated device understands; it ties a Rust type to its
/// [`ScalarType`] and provides safe byte-level conversion.
pub trait DeviceScalar: Copy + Send + Sync + 'static {
    /// The matching device element type.
    const SCALAR: ScalarType;
    /// Raw bit representation (zero/sign facts are irrelevant: round-trips).
    fn to_bits64(self) -> u64;
    /// Inverse of [`DeviceScalar::to_bits64`].
    fn from_bits64(bits: u64) -> Self;
}

macro_rules! impl_device_scalar {
    ($($t:ty => $s:ident, |$v:ident| $to:expr, |$b:ident| $from:expr);* $(;)?) => {
        $(impl DeviceScalar for $t {
            const SCALAR: ScalarType = ScalarType::$s;
            fn to_bits64(self) -> u64 { let $v = self; $to }
            fn from_bits64($b: u64) -> Self { $from }
        })*
    };
}
impl_device_scalar! {
    i8  => I8,  |v| v as i64 as u64, |b| b as i8;
    u8  => U8,  |v| v as u64,        |b| b as u8;
    i16 => I16, |v| v as i64 as u64, |b| b as i16;
    u16 => U16, |v| v as u64,        |b| b as u16;
    i32 => I32, |v| v as i64 as u64, |b| b as i32;
    u32 => U32, |v| v as u64,        |b| b as u32;
    i64 => I64, |v| v as u64,        |b| b as i64;
    u64 => U64, |v| v,               |b| b;
    f32 => F32, |v| v.to_bits() as u64, |b| f32::from_bits(b as u32);
    f64 => F64, |v| v.to_bits(),        |b| f64::from_bits(b);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_opencl() {
        assert_eq!(ScalarType::I8.size(), 1);
        assert_eq!(ScalarType::U16.size(), 2);
        assert_eq!(ScalarType::I32.size(), 4);
        assert_eq!(ScalarType::F32.size(), 4);
        assert_eq!(ScalarType::F64.size(), 8);
        assert_eq!(ScalarType::U64.size(), 8);
    }

    #[test]
    fn promotion_rules() {
        use ScalarType::*;
        assert_eq!(I32.promote(F32), F32);
        assert_eq!(F32.promote(F64), F64);
        assert_eq!(I32.promote(U32), U32);
        assert_eq!(I32.promote(I64), I64);
        assert_eq!(U32.promote(I64), I64);
        assert_eq!(U64.promote(I64), U64);
        assert_eq!(I8.promote(I8), I32, "small ints promote to int");
        assert_eq!(U16.promote(Bool), I32);
    }

    #[test]
    fn value_bits_round_trip() {
        let cases = [
            Value::I32(-5),
            Value::U32(u32::MAX),
            Value::F32(3.5),
            Value::F64(-0.0),
            Value::I64(i64::MIN),
            Value::Bool(true),
            Value::I8(-128),
        ];
        for v in cases {
            let bits = v.to_bits();
            assert_eq!(Value::from_bits(bits, v.scalar_type()), v);
        }
    }

    #[test]
    fn negative_ints_are_sign_extended_in_bits() {
        // the interpreter relies on sign-extended storage for signed types
        assert_eq!(Value::I32(-1).to_bits(), u64::MAX);
        assert_eq!((-1i32).to_bits64(), u64::MAX);
        assert_eq!(i32::from_bits64(u64::MAX), -1);
    }

    #[test]
    fn device_scalar_round_trips() {
        assert_eq!(f64::from_bits64(2.25f64.to_bits64()), 2.25);
        assert_eq!(i16::from_bits64((-7i16).to_bits64()), -7);
        assert_eq!(u8::from_bits64(200u8.to_bits64()), 200);
    }

    #[test]
    fn cl_names() {
        assert_eq!(ScalarType::F32.cl_name(), "float");
        assert_eq!(ScalarType::U32.cl_name(), "uint");
        assert_eq!(ScalarType::I64.cl_name(), "long");
    }
}
