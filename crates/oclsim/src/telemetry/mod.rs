//! Structured host-runtime telemetry: hierarchical spans + a metrics
//! registry.
//!
//! The simulated device has had observability since the `prof` subsystem
//! (hardware counters, Chrome traces, rooflines); this module gives the
//! **host runtime** the same voice. It has two layers with different
//! cost/usage profiles:
//!
//! * **Spans** ([`span`]) — hierarchical enter/exit records emitted from
//!   every interesting host-runtime site: kernel recording, OpenCL C code
//!   generation, the clc compile pipeline (pp/lex/parse/sema/analysis/
//!   lower), program-cache lookups, coherence transitions, and scheduler
//!   enqueue/dispatch/retire. Each record carries wall timestamps (µs
//!   from a process epoch), a thread id, a parent id (innermost enclosing
//!   open span on the same thread), optional *modeled* timestamps for
//!   spans that shadow a timeline reservation, and free-form `key=value`
//!   notes. Span collection is **off by default** and gated on one atomic
//!   load ([`enabled`]): when off, [`span`] returns an inert guard and no
//!   clock is read, no allocation happens, nothing is locked — which is
//!   how `report -- profile` output stays byte-identical whether or not
//!   telemetry is compiled into the run (ci.sh diffs it).
//!
//! * **Metrics** ([`metrics`]) — a process-wide registry of counters,
//!   gauges and fixed-bucket histograms tracking cache hit ratios, bytes
//!   moved by direction, redundant uploads, compile times and queue
//!   depth. Updates are single relaxed atomic operations (lock-free on
//!   the hot path) and are always on: like the `prof` hardware counters
//!   they merge deterministically, so the **canonical** snapshot
//!   ([`metrics_text`] with `canonical = true`, which excludes
//!   wall-clock-valued and interleaving-dependent metrics) is
//!   byte-identical across `OCLSIM_THREADS` settings and across in-order
//!   vs out-of-order queues for the same workload — ci.sh and a proptest
//!   assert exactly that.
//!
//! Exporters: [`spans_jsonl`] (one JSON object per line),
//! [`render_span_tree`] (human-readable indentation), [`metrics_text`]
//! (Prometheus-style exposition), and
//! [`crate::prof::trace::chrome_trace_with_host`], which injects host
//! span tracks into the device Chrome trace so one file shows the host
//! runtime above the CU/DMA tracks.

mod metrics;
mod span;

pub use metrics::{
    escape_label, metrics, metrics_text, reset_metrics, Counter, Gauge, Histogram, Metrics,
    TenantStats,
};
pub use span::{
    check_nesting, drain_spans, enabled, render_span_tree, set_enabled, span, spans_jsonl, Span,
    SpanRecord,
};
