//! Hierarchical span records (see the module docs of
//! [`crate::telemetry`]).

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Global span-collection switch; one relaxed load on every would-be span.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonic span ids, process-wide.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
/// Small per-process thread indices (0 is whichever thread spans first).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
/// Wall-clock origin of all span timestamps.
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Completed spans, appended at guard drop.
static SINK: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();

thread_local! {
    static THREAD_ID: Cell<Option<u64>> = const { Cell::new(None) };
    /// Ids of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn sink() -> &'static Mutex<Vec<SpanRecord>> {
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

/// Turn span collection on or off. Metrics are unaffected (always on).
pub fn set_enabled(on: bool) {
    if on {
        // pin the epoch before the first span so timestamps are positive
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span collection is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (monotonic per process).
    pub id: u64,
    /// Id of the innermost span that was open on the same thread when
    /// this one was entered.
    pub parent: Option<u64>,
    /// Small per-process index of the emitting thread.
    pub thread: u64,
    /// Site family, e.g. `"clc"`, `"hpl"`, `"sched"`, `"coherence"`.
    pub category: &'static str,
    /// Site name, e.g. `"parse"`, `"cache_lookup"`, `"dispatch"`.
    pub name: String,
    /// Wall µs from the process epoch at enter.
    pub wall_start_us: f64,
    /// Wall µs from the process epoch at exit.
    pub wall_end_us: f64,
    /// Modeled-timeline µs, for spans shadowing a timeline reservation.
    pub modeled_start_us: Option<f64>,
    /// Modeled-timeline µs at the reservation's end.
    pub modeled_end_us: Option<f64>,
    /// Free-form `key=value` notes attached with [`Span::note`].
    pub args: Vec<(String, String)>,
}

impl SpanRecord {
    /// Wall duration in seconds.
    pub fn wall_seconds(&self) -> f64 {
        (self.wall_end_us - self.wall_start_us) / 1.0e6
    }
}

struct Active {
    id: u64,
    parent: Option<u64>,
    thread: u64,
    category: &'static str,
    name: String,
    start: Instant,
    modeled: Option<(f64, f64)>,
    args: Vec<(String, String)>,
}

/// RAII guard returned by [`span`]: the span closes (and its record is
/// emitted) when the guard drops. Inert when telemetry is disabled.
#[must_use = "a span closes when its guard drops"]
pub struct Span(Option<Active>);

/// Open a span. When telemetry is disabled this is one atomic load and
/// returns an inert guard; when enabled, the span is pushed on the
/// calling thread's open-span stack (becoming the parent of any span
/// opened below it) and records its enter time.
pub fn span(category: &'static str, name: impl Into<String>) -> Span {
    if !enabled() {
        return Span(None);
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let thread = thread_id();
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    // causal stitching: when the thread has an ambient request trace
    // (see crate::obs), every span tags itself with it automatically
    let mut args = Vec::new();
    if let Some(trace) = crate::obs::current_trace() {
        args.push(("trace".to_string(), trace.to_string()));
    }
    Span(Some(Active {
        id,
        parent,
        thread,
        category,
        name: name.into(),
        start: Instant::now(),
        modeled: None,
        args,
    }))
}

impl Span {
    /// Attach a `key=value` note (no-op on an inert guard).
    pub fn note(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(a) = &mut self.0 {
            a.args.push((key.to_string(), value.to_string()));
        }
    }

    /// Attach the modeled-timeline interval (seconds) this span shadows.
    pub fn note_modeled(&mut self, start_seconds: f64, end_seconds: f64) {
        if let Some(a) = &mut self.0 {
            a.modeled = Some((start_seconds * 1.0e6, end_seconds * 1.0e6));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let epoch = *EPOCH.get_or_init(Instant::now);
        let end = Instant::now();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // the top should be our own id; truncate defensively so a
            // leaked child can never corrupt the ancestry of later spans
            if let Some(pos) = s.iter().rposition(|&x| x == a.id) {
                s.truncate(pos);
            }
        });
        let rec = SpanRecord {
            id: a.id,
            parent: a.parent,
            thread: a.thread,
            category: a.category,
            name: a.name,
            wall_start_us: a.start.duration_since(epoch).as_secs_f64() * 1.0e6,
            wall_end_us: end.duration_since(epoch).as_secs_f64() * 1.0e6,
            modeled_start_us: a.modeled.map(|(s, _)| s),
            modeled_end_us: a.modeled.map(|(_, e)| e),
            args: a.args,
        };
        lock(sink()).push(rec);
    }
}

/// Take every completed span collected so far, ordered by span id (the
/// order spans were *entered*, which is stable for a single-threaded
/// host workload).
pub fn drain_spans() -> Vec<SpanRecord> {
    let mut spans = std::mem::take(&mut *lock(sink()));
    spans.sort_by_key(|s| s.id);
    spans
}

/// Validate span-tree well-formedness: every span exits after it enters,
/// and every span whose parent is in the set lives on the parent's
/// thread and closes before it (proper nesting). A span whose parent is
/// *not* in the set is treated as a root — a drain can legitimately
/// catch a tree mid-flight, since records are emitted at span exit.
pub fn check_nesting(spans: &[SpanRecord]) -> Result<(), String> {
    use std::collections::HashMap;
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    for s in spans {
        if s.wall_end_us < s.wall_start_us {
            return Err(format!("span {} ({}) exits before it enters", s.id, s.name));
        }
        let Some(pid) = s.parent else { continue };
        let Some(p) = by_id.get(&pid) else { continue };
        if p.thread != s.thread {
            return Err(format!(
                "span {} ({}) crosses threads ({} -> {})",
                s.id, s.name, p.thread, s.thread
            ));
        }
        if s.wall_start_us < p.wall_start_us || s.wall_end_us > p.wall_end_us {
            return Err(format!(
                "span {} ({}) is not nested inside its parent {} ({})",
                s.id, s.name, p.id, p.name
            ));
        }
    }
    Ok(())
}

/// Escape a string for a JSON string literal (same rules as the Chrome
/// trace writer).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render spans as a JSONL event log: one JSON object per line, parseable
/// by [`crate::prof::json::parse`].
pub fn spans_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{},\"thread\":{},\"category\":\"{}\",\"name\":\"{}\",\
             \"wall_start_us\":{},\"wall_end_us\":{}",
            s.id,
            s.parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".into()),
            s.thread,
            escape(s.category),
            escape(&s.name),
            s.wall_start_us,
            s.wall_end_us,
        );
        if let (Some(ms), Some(me)) = (s.modeled_start_us, s.modeled_end_us) {
            let _ = write!(out, ",\"modeled_start_us\":{ms},\"modeled_end_us\":{me}");
        }
        out.push_str(",\"args\":{");
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push_str("}}\n");
    }
    out
}

/// Render spans as an indented tree (children under their parents, both
/// in id order), one line per span with duration and notes — the
/// human-readable companion to [`spans_jsonl`].
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    use std::collections::HashMap;
    let mut children: HashMap<Option<u64>, Vec<&SpanRecord>> = HashMap::new();
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for s in spans {
        // a span whose parent was drained earlier renders as a root
        let key = s.parent.filter(|p| ids.contains(p));
        children.entry(key).or_default().push(s);
    }
    fn emit(
        out: &mut String,
        children: &HashMap<Option<u64>, Vec<&SpanRecord>>,
        key: Option<u64>,
        depth: usize,
    ) {
        let Some(list) = children.get(&key) else {
            return;
        };
        for s in list {
            let _ = write!(
                out,
                "{:indent$}[{}] {} {:.1} us",
                "",
                s.category,
                s.name,
                s.wall_end_us - s.wall_start_us,
                indent = 2 * depth,
            );
            for (k, v) in &s.args {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
            emit(out, children, Some(s.id), depth + 1);
        }
    }
    let mut out = String::new();
    emit(&mut out, &children, None, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span tests share the process-global sink/flag; serialize them.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _g = lock(&SERIAL);
        set_enabled(false);
        drain_spans();
        {
            let mut s = span("test", "noop");
            s.note("k", 1);
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let _g = lock(&SERIAL);
        set_enabled(true);
        drain_spans();
        {
            let mut outer = span("test", "outer");
            outer.note("answer", 42);
            {
                let _inner = span("test", "inner");
            }
        }
        set_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.args, vec![("answer".to_string(), "42".to_string())]);
        check_nesting(&spans).unwrap();
        let tree = render_span_tree(&spans);
        assert!(tree.contains("[test] outer"), "{tree}");
        assert!(tree.contains("  [test] inner"), "{tree}");
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let _g = lock(&SERIAL);
        set_enabled(true);
        drain_spans();
        {
            let mut s = span("test", "with \"quotes\"");
            s.note("bytes", 128);
            s.note_modeled(0.5, 1.5);
        }
        set_enabled(false);
        let spans = drain_spans();
        let jsonl = spans_jsonl(&spans);
        for line in jsonl.lines() {
            let v = crate::prof::json::parse(line).unwrap();
            assert!(v.get("id").is_some());
            assert_eq!(v.get("name").unwrap().as_str().unwrap(), "with \"quotes\"");
            assert_eq!(v.get("modeled_start_us").unwrap().as_num(), Some(500000.0));
        }
    }

    #[test]
    fn nesting_violations_are_detected() {
        let rec = |id, parent, thread, s, e| SpanRecord {
            id,
            parent,
            thread,
            category: "t",
            name: format!("s{id}"),
            wall_start_us: s,
            wall_end_us: e,
            modeled_start_us: None,
            modeled_end_us: None,
            args: Vec::new(),
        };
        // exit before enter
        assert!(check_nesting(&[rec(1, None, 0, 5.0, 1.0)]).is_err());
        // absent parent = partial drain, treated as a root
        check_nesting(&[rec(1, Some(9), 0, 0.0, 1.0)]).unwrap();
        // child outlives parent
        assert!(check_nesting(&[rec(1, None, 0, 0.0, 2.0), rec(2, Some(1), 0, 1.0, 3.0)]).is_err());
        // cross-thread parentage
        assert!(check_nesting(&[rec(1, None, 0, 0.0, 4.0), rec(2, Some(1), 1, 1.0, 2.0)]).is_err());
        // well-formed
        check_nesting(&[rec(1, None, 0, 0.0, 4.0), rec(2, Some(1), 0, 1.0, 2.0)]).unwrap();
    }
}
