//! Process-wide metrics registry (see the module docs of
//! [`crate::telemetry`]).
//!
//! Every update is a single relaxed atomic RMW, so the hot path is
//! lock-free and the final value of a counter/histogram is independent
//! of thread interleaving (addition of integers commutes). Metrics whose
//! value is *inherently* timing- or interleaving-dependent (compile wall
//! time, instantaneous queue depth) are flagged non-canonical and are
//! excluded from the canonical snapshot that CI diffs across
//! `OCLSIM_THREADS` settings.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Monotonically increasing event count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous signed value (e.g. queue depth).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v` (high-water mark).
    pub fn raise_to(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double-quote and newline must be escaped inside the quoted
/// value (`\\`, `\"`, `\n`) or an adversarial tenant name corrupts the
/// whole scrape.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Fixed-bucket histogram over integer-valued observations (bytes,
/// microseconds). Bucket counts and the sum are plain integer atomics,
/// so the merged result is exact and order-independent. Each bucket also
/// keeps the most recent exemplar — the packed [`crate::obs::TraceId`]
/// of the last traced request that landed in it — linking the latency
/// distribution back to concrete request traces.
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets; an implicit `+Inf`
    /// bucket follows.
    bounds: &'static [u64],
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    /// Per-bucket packed trace id of the last traced observation
    /// (0 = none; see [`crate::obs::TraceId::pack`]).
    exemplar_trace: Vec<AtomicU64>,
    /// The observed value that set the bucket's exemplar.
    exemplar_value: Vec<AtomicU64>,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            exemplar_trace: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            exemplar_value: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one observation, attributing it to the calling thread's
    /// ambient request trace (if any) as the bucket's exemplar.
    pub fn observe(&self, value: u64) {
        self.observe_traced(value, crate::obs::current_trace());
    }

    /// Record one observation with an explicit exemplar trace.
    pub fn observe_traced(&self, value: u64, trace: Option<crate::obs::TraceId>) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        if let Some(t) = trace {
            // value first: a racing reader may pair an exemplar value
            // with the neighbouring trace, never with garbage
            self.exemplar_value[idx].store(value, Ordering::Relaxed);
            self.exemplar_trace[idx].store(t.pack(), Ordering::Relaxed);
        }
    }

    /// The last traced (trace, value) exemplar of bucket `idx`
    /// (`bounds.len()` = the `+Inf` bucket).
    pub fn exemplar(&self, idx: usize) -> Option<(crate::obs::TraceId, u64)> {
        let trace = crate::obs::TraceId::unpack(self.exemplar_trace[idx].load(Ordering::Relaxed))?;
        Some((trace, self.exemplar_value[idx].load(Ordering::Relaxed)))
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        for e in self.exemplar_trace.iter().chain(&self.exemplar_value) {
            e.store(0, Ordering::Relaxed);
        }
    }

    /// Render the histogram. `exemplars` appends the OpenMetrics-style
    /// exemplar suffix (` # {trace_id="..."} value`) to buckets a traced
    /// observation landed in — only enabled for non-canonical snapshots,
    /// since which traced observation a bucket saw last is an artifact of
    /// thread interleaving.
    fn render(&self, out: &mut String, name: &str, exemplars: bool) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            let _ = write!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            self.render_exemplar(out, i, exemplars);
            out.push('\n');
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        let _ = write!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        self.render_exemplar(out, self.bounds.len(), exemplars);
        out.push('\n');
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {cumulative}");
    }

    fn render_exemplar(&self, out: &mut String, idx: usize, enabled: bool) {
        if !enabled {
            return;
        }
        if let Some((trace, value)) = self.exemplar(idx) {
            let _ = write!(out, " # {{trace_id=\"{trace}\"}} {value}");
        }
    }
}

/// Transfer sizes: 1 KiB / 64 KiB / 1 MiB / 16 MiB / +Inf.
const TRANSFER_BOUNDS: &[u64] = &[1 << 10, 1 << 16, 1 << 20, 1 << 24];
/// Compile wall time in µs: 100 µs … 1 s / +Inf.
const COMPILE_BOUNDS: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000];
/// Service launch wall latency in µs: 100 µs … 1 s / +Inf.
const LATENCY_BOUNDS: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000];

/// Per-tenant service accounting (updated under the registry mutex; each
/// field is a plain event count, so totals are interleaving-independent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Launches the service admitted and ran for this tenant.
    pub launches: u64,
    /// Requests rejected at admission (quota or capacity).
    pub rejections: u64,
    /// Shared-binary-cache hits attributed to this tenant.
    pub cache_hits: u64,
    /// Shared-binary-cache misses (builds) attributed to this tenant.
    pub cache_misses: u64,
}

/// The registry. One static instance per process, reached via
/// [`metrics`]; fields are updated directly at the instrumented sites.
pub struct Metrics {
    // --- hpl runtime (canonical: workload-determined) ---
    /// `eval(f).run()` served from the alias-keyed kernel cache.
    pub kernel_cache_hits: Counter,
    /// Cache misses (kernel recorded + code generated).
    pub kernel_cache_misses: Counter,
    /// Entries dropped by `clear_kernel_cache`.
    pub kernel_cache_evictions: Counter,
    /// Host→device uploads issued by the coherence layer.
    pub h2d_transfers: Counter,
    /// Bytes uploaded host→device.
    pub h2d_bytes: Counter,
    /// Device→host downloads issued by the coherence layer.
    pub d2h_transfers: Counter,
    /// Bytes downloaded device→host.
    pub d2h_bytes: Counter,
    /// Uploads issued while the device copy was already valid — always a
    /// coherence bug; the bench gate fails on any increase.
    pub redundant_uploads: Counter,
    /// Reads satisfied by an already-valid device copy (no transfer).
    pub coherence_hits: Counter,
    /// Distribution of individual transfer sizes (bytes).
    pub transfer_bytes: Histogram,
    // --- oclsim queue/scheduler (canonical) ---
    /// Buffer writes admitted to a command queue.
    pub enqueued_writes: Counter,
    /// Buffer reads admitted to a command queue.
    pub enqueued_reads: Counter,
    /// Buffer copies admitted to a command queue.
    pub enqueued_copies: Counter,
    /// Kernel launches admitted to a command queue.
    pub enqueued_kernels: Counter,
    /// Markers/barriers admitted to a command queue.
    pub enqueued_markers: Counter,
    /// Commands handed to a device scheduler.
    pub dispatched: Counter,
    /// Commands that completed successfully.
    pub retired: Counter,
    /// Commands that finished in an error state.
    pub command_errors: Counter,
    /// Commands serviced by the DMA channel.
    pub dma_commands: Counter,
    /// Bytes moved by DMA commands.
    pub dma_bytes: Counter,
    /// `Program::build` invocations.
    pub builds: Counter,
    // --- oclsim::exec backends (canonical) ---
    /// NDRange launches executed by the compiled work-group (wg) backend.
    pub exec_wg_launches: Counter,
    /// NDRange launches executed by the reference SIMT interpreter.
    pub exec_ref_launches: Counter,
    /// Launches that requested the wg backend but fell back to the
    /// reference interpreter (unsupported kernel, sanitizer, SIMD width).
    pub exec_wg_fallbacks: Counter,
    // --- oclsim::prof cache model (canonical: workload-determined) ---
    /// Simulated L1 hits on cache-capable devices.
    pub prof_cache_l1_hits: Counter,
    /// Simulated L1 misses on cache-capable devices.
    pub prof_cache_l1_misses: Counter,
    /// Simulated shared-L2 hits on cache-capable devices.
    pub prof_cache_l2_hits: Counter,
    /// Simulated shared-L2 misses (DRAM line fills) on cache-capable
    /// devices.
    pub prof_cache_l2_misses: Counter,
    // --- oclsim::clc optimizing mid-end (canonical: per-pass work) ---
    /// Expressions folded to constants by the mid-end.
    pub opt_const_folded: Counter,
    /// Slot reads replaced with constants/copies by const-prop.
    pub opt_const_propagated: Counter,
    /// Dead statements removed by DCE.
    pub opt_dce_removed: Counter,
    /// Branches/loops resolved statically by CFG simplify.
    pub opt_branches_simplified: Counter,
    /// Redundant evaluations replaced by local CSE.
    pub opt_cse_replaced: Counter,
    /// Loop-invariant expressions hoisted by LICM.
    pub opt_licm_hoisted: Counter,
    // --- oclsim::serve shared binary cache + sessions (canonical) ---
    /// Shared binary-cache lookups served from a resident binary.
    pub serve_cache_hits: Counter,
    /// Shared binary-cache lookups that compiled a new binary.
    pub serve_cache_misses: Counter,
    /// Binaries evicted from the shared cache (LRU, capacity pressure).
    pub serve_cache_evictions: Counter,
    /// Bytes currently resident in the shared binary cache.
    pub serve_cache_bytes: Gauge,
    /// Configured capacity of the shared binary cache.
    pub serve_cache_capacity_bytes: Gauge,
    /// Launches admitted and executed by the service layer.
    pub serve_launches: Counter,
    /// Service requests rejected at admission (quota or capacity).
    pub serve_rejections: Counter,
    /// Per-tenant service accounting: tenant name → event counts.
    serve_tenants: Mutex<BTreeMap<String, TenantStats>>,
    // --- non-canonical: wall-clock or interleaving dependent ---
    /// Distribution of service launch wall latency (µs).
    pub serve_launch_wall_us: Histogram,
    /// Distribution of `Program::build` wall time (µs).
    pub compile_seconds: Histogram,
    /// Live commands in the most recently touched queue.
    pub queue_depth: Gauge,
    /// High-water mark of [`Metrics::queue_depth`].
    pub queue_depth_peak: Gauge,
    /// Per-kernel compile accounting: name → (builds, wall seconds).
    per_kernel_compile: Mutex<BTreeMap<String, (u64, f64)>>,
}

impl Metrics {
    fn new() -> Self {
        Metrics {
            kernel_cache_hits: Counter::default(),
            kernel_cache_misses: Counter::default(),
            kernel_cache_evictions: Counter::default(),
            h2d_transfers: Counter::default(),
            h2d_bytes: Counter::default(),
            d2h_transfers: Counter::default(),
            d2h_bytes: Counter::default(),
            redundant_uploads: Counter::default(),
            coherence_hits: Counter::default(),
            transfer_bytes: Histogram::new(TRANSFER_BOUNDS),
            enqueued_writes: Counter::default(),
            enqueued_reads: Counter::default(),
            enqueued_copies: Counter::default(),
            enqueued_kernels: Counter::default(),
            enqueued_markers: Counter::default(),
            dispatched: Counter::default(),
            retired: Counter::default(),
            command_errors: Counter::default(),
            dma_commands: Counter::default(),
            dma_bytes: Counter::default(),
            builds: Counter::default(),
            exec_wg_launches: Counter::default(),
            exec_ref_launches: Counter::default(),
            exec_wg_fallbacks: Counter::default(),
            prof_cache_l1_hits: Counter::default(),
            prof_cache_l1_misses: Counter::default(),
            prof_cache_l2_hits: Counter::default(),
            prof_cache_l2_misses: Counter::default(),
            opt_const_folded: Counter::default(),
            opt_const_propagated: Counter::default(),
            opt_dce_removed: Counter::default(),
            opt_branches_simplified: Counter::default(),
            opt_cse_replaced: Counter::default(),
            opt_licm_hoisted: Counter::default(),
            serve_cache_hits: Counter::default(),
            serve_cache_misses: Counter::default(),
            serve_cache_evictions: Counter::default(),
            serve_cache_bytes: Gauge::default(),
            serve_cache_capacity_bytes: Gauge::default(),
            serve_launches: Counter::default(),
            serve_rejections: Counter::default(),
            serve_tenants: Mutex::new(BTreeMap::new()),
            serve_launch_wall_us: Histogram::new(LATENCY_BOUNDS),
            compile_seconds: Histogram::new(COMPILE_BOUNDS),
            queue_depth: Gauge::default(),
            queue_depth_peak: Gauge::default(),
            per_kernel_compile: Mutex::new(BTreeMap::new()),
        }
    }

    /// Record one `Program::build` of `kernel` taking `seconds` of wall
    /// time (non-canonical).
    pub fn note_compile(&self, kernel: &str, seconds: f64) {
        self.compile_seconds.observe((seconds * 1.0e6) as u64);
        let mut map = lock(&self.per_kernel_compile);
        let entry = map.entry(kernel.to_string()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += seconds;
    }

    /// Per-kernel compile accounting snapshot: name → (builds, seconds).
    pub fn compile_by_kernel(&self) -> BTreeMap<String, (u64, f64)> {
        lock(&self.per_kernel_compile).clone()
    }

    /// Update (or create) the per-tenant accounting row for `tenant`.
    pub fn note_tenant(&self, tenant: &str, f: impl FnOnce(&mut TenantStats)) {
        let mut map = lock(&self.serve_tenants);
        f(map.entry(tenant.to_string()).or_default());
    }

    /// Per-tenant service accounting snapshot.
    pub fn tenant_stats(&self) -> BTreeMap<String, TenantStats> {
        lock(&self.serve_tenants).clone()
    }
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

/// The process-wide registry.
pub fn metrics() -> &'static Metrics {
    METRICS.get_or_init(Metrics::new)
}

/// Zero every metric (tests and the `report` subcommands use this to
/// measure one workload in isolation).
pub fn reset_metrics() {
    let m = metrics();
    m.kernel_cache_hits.reset();
    m.kernel_cache_misses.reset();
    m.kernel_cache_evictions.reset();
    m.h2d_transfers.reset();
    m.h2d_bytes.reset();
    m.d2h_transfers.reset();
    m.d2h_bytes.reset();
    m.redundant_uploads.reset();
    m.coherence_hits.reset();
    m.transfer_bytes.reset();
    m.enqueued_writes.reset();
    m.enqueued_reads.reset();
    m.enqueued_copies.reset();
    m.enqueued_kernels.reset();
    m.enqueued_markers.reset();
    m.dispatched.reset();
    m.retired.reset();
    m.command_errors.reset();
    m.dma_commands.reset();
    m.dma_bytes.reset();
    m.builds.reset();
    m.exec_wg_launches.reset();
    m.exec_ref_launches.reset();
    m.exec_wg_fallbacks.reset();
    m.prof_cache_l1_hits.reset();
    m.prof_cache_l1_misses.reset();
    m.prof_cache_l2_hits.reset();
    m.prof_cache_l2_misses.reset();
    m.opt_const_folded.reset();
    m.opt_const_propagated.reset();
    m.opt_dce_removed.reset();
    m.opt_branches_simplified.reset();
    m.opt_cse_replaced.reset();
    m.opt_licm_hoisted.reset();
    m.serve_cache_hits.reset();
    m.serve_cache_misses.reset();
    m.serve_cache_evictions.reset();
    m.serve_cache_bytes.reset();
    m.serve_cache_capacity_bytes.reset();
    m.serve_launches.reset();
    m.serve_rejections.reset();
    lock(&m.serve_tenants).clear();
    m.serve_launch_wall_us.reset();
    m.compile_seconds.reset();
    m.queue_depth.reset();
    m.queue_depth_peak.reset();
    lock(&m.per_kernel_compile).clear();
}

fn counter(out: &mut String, name: &str, help: &str, c: &Counter) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {}", c.get());
}

fn gauge(out: &mut String, name: &str, help: &str, g: &Gauge) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {}", g.get());
}

/// Render the registry in Prometheus text exposition format, in a fixed
/// registration order. With `canonical = true` only workload-determined
/// metrics are included — that snapshot is byte-identical across
/// `OCLSIM_THREADS` settings and across in-order vs out-of-order queues
/// for the same workload.
pub fn metrics_text(canonical: bool) -> String {
    let m = metrics();
    let mut out = String::new();
    counter(
        &mut out,
        "hpl_kernel_cache_hits_total",
        "eval() launches served from the kernel cache",
        &m.kernel_cache_hits,
    );
    counter(
        &mut out,
        "hpl_kernel_cache_misses_total",
        "eval() launches that recorded + generated code",
        &m.kernel_cache_misses,
    );
    counter(
        &mut out,
        "hpl_kernel_cache_evictions_total",
        "kernel cache entries evicted",
        &m.kernel_cache_evictions,
    );
    counter(
        &mut out,
        "hpl_h2d_transfers_total",
        "host-to-device uploads issued by coherence",
        &m.h2d_transfers,
    );
    counter(
        &mut out,
        "hpl_h2d_bytes_total",
        "bytes uploaded host-to-device",
        &m.h2d_bytes,
    );
    counter(
        &mut out,
        "hpl_d2h_transfers_total",
        "device-to-host downloads issued by coherence",
        &m.d2h_transfers,
    );
    counter(
        &mut out,
        "hpl_d2h_bytes_total",
        "bytes downloaded device-to-host",
        &m.d2h_bytes,
    );
    counter(
        &mut out,
        "hpl_redundant_uploads_total",
        "uploads issued while the device copy was already valid",
        &m.redundant_uploads,
    );
    counter(
        &mut out,
        "hpl_coherence_hits_total",
        "reads satisfied by an already-valid device copy",
        &m.coherence_hits,
    );
    let _ = writeln!(
        out,
        "# HELP hpl_transfer_bytes distribution of individual transfer sizes"
    );
    m.transfer_bytes
        .render(&mut out, "hpl_transfer_bytes", !canonical);
    counter(
        &mut out,
        "oclsim_enqueued_writes_total",
        "buffer writes admitted to a queue",
        &m.enqueued_writes,
    );
    counter(
        &mut out,
        "oclsim_enqueued_reads_total",
        "buffer reads admitted to a queue",
        &m.enqueued_reads,
    );
    counter(
        &mut out,
        "oclsim_enqueued_copies_total",
        "buffer copies admitted to a queue",
        &m.enqueued_copies,
    );
    counter(
        &mut out,
        "oclsim_enqueued_kernels_total",
        "kernel launches admitted to a queue",
        &m.enqueued_kernels,
    );
    counter(
        &mut out,
        "oclsim_enqueued_markers_total",
        "markers/barriers admitted to a queue",
        &m.enqueued_markers,
    );
    counter(
        &mut out,
        "oclsim_dispatched_total",
        "commands handed to a device scheduler",
        &m.dispatched,
    );
    counter(
        &mut out,
        "oclsim_retired_total",
        "commands completed successfully",
        &m.retired,
    );
    counter(
        &mut out,
        "oclsim_command_errors_total",
        "commands that finished in an error state",
        &m.command_errors,
    );
    counter(
        &mut out,
        "oclsim_dma_commands_total",
        "commands serviced by the DMA channel",
        &m.dma_commands,
    );
    counter(
        &mut out,
        "oclsim_dma_bytes_total",
        "bytes moved by DMA commands",
        &m.dma_bytes,
    );
    counter(
        &mut out,
        "oclsim_builds_total",
        "Program::build invocations",
        &m.builds,
    );
    counter(
        &mut out,
        "oclsim_exec_wg_launches_total",
        "NDRange launches executed by the compiled work-group backend",
        &m.exec_wg_launches,
    );
    counter(
        &mut out,
        "oclsim_exec_ref_launches_total",
        "NDRange launches executed by the reference SIMT interpreter",
        &m.exec_ref_launches,
    );
    counter(
        &mut out,
        "oclsim_exec_wg_fallbacks_total",
        "wg-backend launches that fell back to the reference interpreter",
        &m.exec_wg_fallbacks,
    );
    counter(
        &mut out,
        "oclsim_prof_cache_l1_hits_total",
        "simulated L1 hits on cache-capable devices",
        &m.prof_cache_l1_hits,
    );
    counter(
        &mut out,
        "oclsim_prof_cache_l1_misses_total",
        "simulated L1 misses on cache-capable devices",
        &m.prof_cache_l1_misses,
    );
    counter(
        &mut out,
        "oclsim_prof_cache_l2_hits_total",
        "simulated shared-L2 hits on cache-capable devices",
        &m.prof_cache_l2_hits,
    );
    counter(
        &mut out,
        "oclsim_prof_cache_l2_misses_total",
        "simulated shared-L2 misses (DRAM line fills)",
        &m.prof_cache_l2_misses,
    );
    counter(
        &mut out,
        "oclsim_clc_opt_const_folded_total",
        "expressions folded to constants by the mid-end",
        &m.opt_const_folded,
    );
    counter(
        &mut out,
        "oclsim_clc_opt_const_propagated_total",
        "slot reads replaced with constants/copies by const-prop",
        &m.opt_const_propagated,
    );
    counter(
        &mut out,
        "oclsim_clc_opt_dce_removed_total",
        "dead statements removed by DCE",
        &m.opt_dce_removed,
    );
    counter(
        &mut out,
        "oclsim_clc_opt_branches_simplified_total",
        "branches/loops resolved statically by CFG simplify",
        &m.opt_branches_simplified,
    );
    counter(
        &mut out,
        "oclsim_clc_opt_cse_replaced_total",
        "redundant evaluations replaced by local CSE",
        &m.opt_cse_replaced,
    );
    counter(
        &mut out,
        "oclsim_clc_opt_licm_hoisted_total",
        "loop-invariant expressions hoisted by LICM",
        &m.opt_licm_hoisted,
    );
    counter(
        &mut out,
        "oclsim_serve_cache_hits_total",
        "shared binary-cache lookups served from a resident binary",
        &m.serve_cache_hits,
    );
    counter(
        &mut out,
        "oclsim_serve_cache_misses_total",
        "shared binary-cache lookups that compiled a new binary",
        &m.serve_cache_misses,
    );
    counter(
        &mut out,
        "oclsim_serve_cache_evictions_total",
        "binaries evicted from the shared cache",
        &m.serve_cache_evictions,
    );
    gauge(
        &mut out,
        "oclsim_serve_cache_bytes",
        "bytes resident in the shared binary cache",
        &m.serve_cache_bytes,
    );
    gauge(
        &mut out,
        "oclsim_serve_cache_capacity_bytes",
        "configured capacity of the shared binary cache",
        &m.serve_cache_capacity_bytes,
    );
    counter(
        &mut out,
        "oclsim_serve_launches_total",
        "launches admitted and executed by the service layer",
        &m.serve_launches,
    );
    counter(
        &mut out,
        "oclsim_serve_rejections_total",
        "service requests rejected at admission",
        &m.serve_rejections,
    );
    let tenants = m.tenant_stats();
    if !tenants.is_empty() {
        let _ = writeln!(
            out,
            "# HELP oclsim_serve_tenant per-tenant service accounting"
        );
        for (tenant, t) in &tenants {
            let tenant = escape_label(tenant);
            let _ = writeln!(
                out,
                "oclsim_serve_tenant_launches_total{{tenant=\"{tenant}\"}} {}",
                t.launches
            );
            let _ = writeln!(
                out,
                "oclsim_serve_tenant_rejections_total{{tenant=\"{tenant}\"}} {}",
                t.rejections
            );
            let _ = writeln!(
                out,
                "oclsim_serve_tenant_cache_hits_total{{tenant=\"{tenant}\"}} {}",
                t.cache_hits
            );
            let _ = writeln!(
                out,
                "oclsim_serve_tenant_cache_misses_total{{tenant=\"{tenant}\"}} {}",
                t.cache_misses
            );
        }
    }
    if !canonical {
        let _ = writeln!(
            out,
            "# HELP oclsim_serve_launch_wall_us service launch wall latency distribution (us)"
        );
        m.serve_launch_wall_us
            .render(&mut out, "oclsim_serve_launch_wall_us", true);
        let _ = writeln!(
            out,
            "# HELP oclsim_compile_us Program::build wall time distribution (us)"
        );
        m.compile_seconds
            .render(&mut out, "oclsim_compile_us", true);
        gauge(
            &mut out,
            "oclsim_queue_depth",
            "live commands in the most recently touched queue",
            &m.queue_depth,
        );
        gauge(
            &mut out,
            "oclsim_queue_depth_peak",
            "high-water mark of oclsim_queue_depth",
            &m.queue_depth_peak,
        );
        let per_kernel = m.compile_by_kernel();
        if !per_kernel.is_empty() {
            let _ = writeln!(
                out,
                "# HELP oclsim_kernel_compile_seconds per-kernel compile wall time"
            );
            for (kernel, (count, seconds)) in &per_kernel {
                let kernel = escape_label(kernel);
                let _ = writeln!(
                    out,
                    "oclsim_kernel_compile_count{{kernel=\"{kernel}\"}} {count}"
                );
                let _ = writeln!(
                    out,
                    "oclsim_kernel_compile_seconds_sum{{kernel=\"{kernel}\"}} {seconds:.6}"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Metrics tests mutate the process-global registry; serialize them.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_and_gauges_accumulate() {
        let _g = lock(&SERIAL);
        reset_metrics();
        let m = metrics();
        m.kernel_cache_hits.inc();
        m.kernel_cache_hits.add(2);
        assert_eq!(m.kernel_cache_hits.get(), 3);
        m.queue_depth.set(4);
        m.queue_depth_peak.raise_to(4);
        m.queue_depth_peak.raise_to(2);
        assert_eq!(m.queue_depth_peak.get(), 4);
        reset_metrics();
        assert_eq!(m.kernel_cache_hits.get(), 0);
        assert_eq!(m.queue_depth_peak.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let _g = lock(&SERIAL);
        reset_metrics();
        let m = metrics();
        m.transfer_bytes.observe(100); // <= 1 KiB
        m.transfer_bytes.observe(2048); // <= 64 KiB
        m.transfer_bytes.observe(1 << 30); // +Inf
        assert_eq!(m.transfer_bytes.count(), 3);
        assert_eq!(m.transfer_bytes.sum(), 100 + 2048 + (1 << 30));
        let text = metrics_text(true);
        assert!(
            text.contains("hpl_transfer_bytes_bucket{le=\"1024\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("hpl_transfer_bytes_bucket{le=\"65536\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("hpl_transfer_bytes_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        reset_metrics();
    }

    #[test]
    fn serve_metrics_render_with_sorted_tenant_labels() {
        let _g = lock(&SERIAL);
        reset_metrics();
        let m = metrics();
        m.serve_cache_capacity_bytes.set(1 << 20);
        m.serve_cache_bytes.set(4096);
        m.serve_cache_evictions.add(2);
        m.note_tenant("zeta", |t| t.launches += 5);
        m.note_tenant("alpha", |t| {
            t.launches += 3;
            t.rejections += 1;
        });
        m.serve_launch_wall_us.observe(250);
        let canonical = metrics_text(true);
        assert!(
            canonical.contains("oclsim_serve_cache_capacity_bytes 1048576"),
            "{canonical}"
        );
        assert!(
            canonical.contains("oclsim_serve_cache_evictions_total 2"),
            "{canonical}"
        );
        // tenants render sorted by name, so the snapshot is byte-stable
        let alpha = canonical
            .find("oclsim_serve_tenant_launches_total{tenant=\"alpha\"} 3")
            .expect("alpha row");
        let zeta = canonical
            .find("oclsim_serve_tenant_launches_total{tenant=\"zeta\"} 5")
            .expect("zeta row");
        assert!(alpha < zeta);
        // wall latency is interleaving/wall-clock dependent: non-canonical
        assert!(!canonical.contains("serve_launch_wall_us"), "{canonical}");
        assert!(metrics_text(false).contains("oclsim_serve_launch_wall_us_count 1"),);
        reset_metrics();
    }

    #[test]
    fn adversarial_tenant_names_escape_cleanly() {
        let _g = lock(&SERIAL);
        reset_metrics();
        let m = metrics();
        // a tenant name carrying every character the text exposition
        // format treats specially inside a quoted label value
        let evil = "t\\en\"ant\nx";
        m.note_tenant(evil, |t| t.launches += 1);
        let text = metrics_text(true);
        assert!(
            text.contains("oclsim_serve_tenant_launches_total{tenant=\"t\\\\en\\\"ant\\nx\"} 1"),
            "{text}"
        );
        // no raw newline may survive inside any sample line
        for line in text.lines() {
            assert!(
                !line.contains("tenant=\"t\\en\"") || line.ends_with("} 1"),
                "corrupted line: {line}"
            );
        }
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        reset_metrics();
    }

    #[test]
    fn histogram_exemplars_link_buckets_to_traces() {
        let _g = lock(&SERIAL);
        reset_metrics();
        let m = metrics();
        let t = crate::obs::tenant_obs("exemplar-tenant");
        let id = t.mint();
        m.serve_launch_wall_us.observe_traced(250, Some(id));
        m.serve_launch_wall_us.observe(50_000); // untraced: no exemplar
        assert_eq!(m.serve_launch_wall_us.exemplar(1), Some((id, 250)));
        assert_eq!(m.serve_launch_wall_us.exemplar(3), None);
        // exemplars render in the non-canonical snapshot only
        let full = metrics_text(false);
        assert!(
            full.contains(&format!(
                "oclsim_serve_launch_wall_us_bucket{{le=\"1000\"}} 1 # {{trace_id=\"{id}\"}} 250"
            )),
            "{full}"
        );
        assert!(!metrics_text(true).contains("trace_id"),);
        reset_metrics();
    }

    #[test]
    fn canonical_snapshot_excludes_wall_clock_metrics() {
        let _g = lock(&SERIAL);
        reset_metrics();
        metrics().note_compile("mmul", 0.002);
        let canonical = metrics_text(true);
        assert!(!canonical.contains("oclsim_compile_us"), "{canonical}");
        assert!(!canonical.contains("queue_depth"), "{canonical}");
        assert!(!canonical.contains("mmul"), "{canonical}");
        let full = metrics_text(false);
        assert!(full.contains("oclsim_compile_us_count 1"), "{full}");
        assert!(
            full.contains("oclsim_kernel_compile_count{kernel=\"mmul\"} 1"),
            "{full}"
        );
        reset_metrics();
    }
}
