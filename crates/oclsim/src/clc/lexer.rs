//! Tokenizer for (preprocessed) OpenCL C.

use crate::error::{Error, Result};

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,
    Dot,
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer literal with `u`/`U` and `l`/`L` suffix flags.
    IntLit {
        value: u64,
        unsigned: bool,
        long: bool,
    },
    /// Floating literal; `f32` is true when an `f`/`F` suffix was present.
    FloatLit { value: f64, f32: bool },
    /// Operator / punctuation.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// A token together with its (1-based) source line and column.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: usize,
    pub col: usize,
}

/// Tokenize `src`, which must already be preprocessed.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    // byte index of the start of the current line; `col` below is 1-based
    let mut line_start = 0usize;

    macro_rules! push {
        ($t:expr, $col:expr) => {
            toks.push(Spanned {
                tok: $t,
                line,
                col: $col,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let col = i - line_start + 1;
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                push!(Tok::Ident(src[start..i].to_string()), col);
            }
            _ if c.is_ascii_digit()
                || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit()) =>
            {
                let (tok, len) = lex_number(&src[i..], line, col)?;
                push!(tok, col);
                i += len;
            }
            _ => {
                let (p, len) = lex_punct(&bytes[i..]).ok_or_else(|| {
                    Error::BuildFailure(format!(
                        "lexer, line {line}:{col}: unexpected character `{c}`"
                    ))
                })?;
                push!(Tok::Punct(p), col);
                i += len;
            }
        }
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        line,
        col: bytes.len() - line_start + 1,
    });
    Ok(toks)
}

fn lex_number(s: &str, line: usize, col: usize) -> Result<(Tok, usize)> {
    let bytes = s.as_bytes();
    // hexadecimal
    if s.len() >= 2 && (s.starts_with("0x") || s.starts_with("0X")) {
        let mut i = 2;
        while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
            i += 1;
        }
        if i == 2 {
            return Err(Error::BuildFailure(format!(
                "lexer, line {line}:{col}: bad hex literal"
            )));
        }
        let value = u64::from_str_radix(&s[2..i], 16).map_err(|_| {
            Error::BuildFailure(format!("lexer, line {line}:{col}: hex literal overflows"))
        })?;
        let (unsigned, long, slen) = int_suffix(&bytes[i..]);
        return Ok((
            Tok::IntLit {
                value,
                unsigned,
                long,
            },
            i + slen,
        ));
    }

    let mut i = 0;
    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' {
        is_float = true;
        i += 1;
        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
        }
    }
    if is_float {
        let value: f64 = s[..i].parse().map_err(|_| {
            Error::BuildFailure(format!("lexer, line {line}:{col}: bad float literal"))
        })?;
        let f32suffix = i < bytes.len() && (bytes[i] == b'f' || bytes[i] == b'F');
        let len = i + if f32suffix { 1 } else { 0 };
        Ok((
            Tok::FloatLit {
                value,
                f32: f32suffix,
            },
            len,
        ))
    } else {
        let value: u64 = s[..i].parse().map_err(|_| {
            Error::BuildFailure(format!("lexer, line {line}:{col}: int literal overflows"))
        })?;
        let (unsigned, long, slen) = int_suffix(&bytes[i..]);
        Ok((
            Tok::IntLit {
                value,
                unsigned,
                long,
            },
            i + slen,
        ))
    }
}

fn int_suffix(bytes: &[u8]) -> (bool, bool, usize) {
    let mut unsigned = false;
    let mut long = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'u' | b'U' if !unsigned => unsigned = true,
            b'l' | b'L' if !long => long = true,
            _ => break,
        }
        i += 1;
    }
    (unsigned, long, i)
}

fn lex_punct(bytes: &[u8]) -> Option<(Punct, usize)> {
    use Punct::*;
    let three = |a, b, c| bytes.len() >= 3 && bytes[0] == a && bytes[1] == b && bytes[2] == c;
    let two = |a, b| bytes.len() >= 2 && bytes[0] == a && bytes[1] == b;
    if three(b'<', b'<', b'=') {
        return Some((ShlAssign, 3));
    }
    if three(b'>', b'>', b'=') {
        return Some((ShrAssign, 3));
    }
    if two(b'<', b'<') {
        return Some((Shl, 2));
    }
    if two(b'>', b'>') {
        return Some((Shr, 2));
    }
    if two(b'<', b'=') {
        return Some((Le, 2));
    }
    if two(b'>', b'=') {
        return Some((Ge, 2));
    }
    if two(b'=', b'=') {
        return Some((EqEq, 2));
    }
    if two(b'!', b'=') {
        return Some((Ne, 2));
    }
    if two(b'&', b'&') {
        return Some((AmpAmp, 2));
    }
    if two(b'|', b'|') {
        return Some((PipePipe, 2));
    }
    if two(b'+', b'+') {
        return Some((PlusPlus, 2));
    }
    if two(b'-', b'-') {
        return Some((MinusMinus, 2));
    }
    if two(b'+', b'=') {
        return Some((PlusAssign, 2));
    }
    if two(b'-', b'=') {
        return Some((MinusAssign, 2));
    }
    if two(b'*', b'=') {
        return Some((StarAssign, 2));
    }
    if two(b'/', b'=') {
        return Some((SlashAssign, 2));
    }
    if two(b'%', b'=') {
        return Some((PercentAssign, 2));
    }
    if two(b'&', b'=') {
        return Some((AmpAssign, 2));
    }
    if two(b'|', b'=') {
        return Some((PipeAssign, 2));
    }
    if two(b'^', b'=') {
        return Some((CaretAssign, 2));
    }
    let one = match bytes.first()? {
        b'(' => LParen,
        b')' => RParen,
        b'{' => LBrace,
        b'}' => RBrace,
        b'[' => LBracket,
        b']' => RBracket,
        b';' => Semi,
        b',' => Comma,
        b'+' => Plus,
        b'-' => Minus,
        b'*' => Star,
        b'/' => Slash,
        b'%' => Percent,
        b'&' => Amp,
        b'|' => Pipe,
        b'^' => Caret,
        b'~' => Tilde,
        b'!' => Bang,
        b'<' => Lt,
        b'>' => Gt,
        b'=' => Assign,
        b'?' => Question,
        b':' => Colon,
        b'.' => Dot,
        _ => return None,
    };
    Some((one, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn identifiers_and_punct() {
        let t = kinds("__kernel void f(int a) { a += 1; }");
        assert_eq!(t[0], Tok::Ident("__kernel".into()));
        assert_eq!(t[1], Tok::Ident("void".into()));
        assert!(t.contains(&Tok::Punct(Punct::PlusAssign)));
        assert_eq!(*t.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn integer_literals() {
        assert_eq!(
            kinds("42")[0],
            Tok::IntLit {
                value: 42,
                unsigned: false,
                long: false
            }
        );
        assert_eq!(
            kinds("42u")[0],
            Tok::IntLit {
                value: 42,
                unsigned: true,
                long: false
            }
        );
        assert_eq!(
            kinds("42UL")[0],
            Tok::IntLit {
                value: 42,
                unsigned: true,
                long: true
            }
        );
        assert_eq!(
            kinds("0x1F")[0],
            Tok::IntLit {
                value: 31,
                unsigned: false,
                long: false
            }
        );
        assert_eq!(
            kinds("0xFFFFFFFFFFFFFFFF")[0],
            Tok::IntLit {
                value: u64::MAX,
                unsigned: false,
                long: false
            }
        );
    }

    #[test]
    fn float_literals() {
        assert_eq!(
            kinds("1.5")[0],
            Tok::FloatLit {
                value: 1.5,
                f32: false
            }
        );
        assert_eq!(
            kinds("1.5f")[0],
            Tok::FloatLit {
                value: 1.5,
                f32: true
            }
        );
        assert_eq!(
            kinds(".25")[0],
            Tok::FloatLit {
                value: 0.25,
                f32: false
            }
        );
        assert_eq!(
            kinds("2e3")[0],
            Tok::FloatLit {
                value: 2000.0,
                f32: false
            }
        );
        assert_eq!(
            kinds("1.0e-2f")[0],
            Tok::FloatLit {
                value: 0.01,
                f32: true
            }
        );
    }

    #[test]
    fn float_vs_member_access() {
        // `x.y` must not lex as a float
        let t = kinds("x.y");
        assert_eq!(t[0], Tok::Ident("x".into()));
        assert_eq!(t[1], Tok::Punct(Punct::Dot));
    }

    #[test]
    fn maximal_munch_operators() {
        let t = kinds("a <<= b >> c <= d < e");
        assert!(t.contains(&Tok::Punct(Punct::ShlAssign)));
        assert!(t.contains(&Tok::Punct(Punct::Shr)));
        assert!(t.contains(&Tok::Punct(Punct::Le)));
        assert!(t.contains(&Tok::Punct(Punct::Lt)));
        let t = kinds("i++ + ++j");
        assert_eq!(
            t.iter()
                .filter(|k| **k == Tok::Punct(Punct::PlusPlus))
                .count(),
            2
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn columns_tracked() {
        let toks = lex("ab + c\n  d").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1)); // ab
        assert_eq!((toks[1].line, toks[1].col), (1, 4)); // +
        assert_eq!((toks[2].line, toks[2].col), (1, 6)); // c
        assert_eq!((toks[3].line, toks[3].col), (2, 3)); // d
    }

    #[test]
    fn unexpected_character_diagnosed() {
        assert!(lex("int a = @;").is_err());
        assert!(lex("int $x;").is_err());
    }

    #[test]
    fn empty_input() {
        assert_eq!(kinds(""), vec![Tok::Eof]);
    }
}
