//! The optimizing mid-end: a pass pipeline over the executable IR, built
//! on the [`super::dataflow`] framework.
//!
//! Passes (in pipeline order):
//!
//! 1. **const-prop** — forward constant/copy propagation; slot reads whose
//!    value is provably a constant (or a copy of another slot) are
//!    replaced in place.
//! 2. **const-fold** — bottom-up folding of constant operator trees using
//!    the interpreter's own arithmetic ([`crate::exec::ops`]), plus
//!    integer algebraic identities (`x+0`, `x*1`, `x*0` for pure `x`).
//!    Trapping operations (`/0`, `%0`) are never folded — they must trap
//!    at run time exactly as at O0.
//! 3. **cfg-simplify** — `if`s with constant conditions are spliced to the
//!    taken arm; `while`-style loops with a constant-false condition and
//!    effect-free `if`s with two empty arms are dropped.
//! 4. **dce** — backward liveness; assignments to slots that are never
//!    read again, and pure expression statements, are removed. Only
//!    pure-and-nontrapping right-hand sides are eligible: a dead `x = a/b`
//!    with an unknown divisor stays, because O0 would trap on `b == 0`.
//! 5. **licm** (O2) — pure nontrapping expressions (including address
//!    arithmetic and geometry builtins) that read no slot assigned inside
//!    a loop are computed once into a fresh slot before the loop.
//! 6. **cse** (O2, local) — within straight-line runs, repeated pure
//!    nontrapping subexpressions over identical slot versions are
//!    computed once into a fresh slot.
//!
//! **Span preservation is a hard invariant.** Every statement the mid-end
//! creates carries the span of a real source statement (the statement of
//! the first occurrence for CSE temps, the loop header for LICM temps),
//! and every statement it moves or splices keeps its own span. The
//! interpreter charges all counters through one span-tagged chokepoint,
//! so `report -- annotate` per-line sums equal launch totals for *any*
//! span-complete tree; the tests here assert transformed kernels never
//! invent source lines.
//!
//! O0 returns the module untouched (the reference semantics); O1 runs
//! passes 1–4; O2 adds LICM and CSE. The pipeline iterates to a fixpoint
//! (bounded rounds) because passes expose work for each other: const-prop
//! feeds folding, folding exposes constant branches, splicing exposes
//! dead slots.

use std::collections::{BTreeMap, BTreeSet};

use crate::clc::dataflow::{
    eval_const, fact_at_each_step, pure_nontrapping, solve, used_slots, Cfg, ConstProp, Liveness,
    SlotVal, StepOp,
};
use crate::exec::ir::{BOp, COp, Ex, FuncIr, Module, SlotKind, St, StKind, UOp};
use crate::types::ScalarType;

/// Optimization level for [`optimize`] and `Program` builds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash)]
pub enum OptLevel {
    /// Reference semantics: the IR runs exactly as `sema` produced it.
    O0,
    /// Safe scalar passes: const-prop/fold, CFG simplify, DCE.
    #[default]
    O1,
    /// O1 plus loop-invariant code motion and local CSE.
    O2,
}

impl OptLevel {
    /// The build-option spelling (`-O0`/`-O1`/`-O2`).
    pub fn flag(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
        }
    }

    /// Parse a `-O<n>` build option.
    pub fn from_flag(flag: &str) -> Option<OptLevel> {
        match flag {
            "-O0" => Some(OptLevel::O0),
            "-O1" => Some(OptLevel::O1),
            "-O2" => Some(OptLevel::O2),
            _ => None,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
        })
    }
}

/// Work done by one [`optimize`] run, by pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PassStats {
    /// Operator trees folded to constants.
    pub const_folded: u64,
    /// Slot reads replaced with constants or copy sources.
    pub const_propagated: u64,
    /// Statements removed as dead.
    pub dce_removed: u64,
    /// Branches/loops resolved statically.
    pub branches_simplified: u64,
    /// Redundant evaluations eliminated by CSE (occurrences beyond the
    /// first of each shared expression).
    pub cse_replaced: u64,
    /// Loop-invariant expressions hoisted out of loops.
    pub licm_hoisted: u64,
}

impl PassStats {
    /// Total rewrites across all passes.
    pub fn total(&self) -> u64 {
        self.const_folded
            + self.const_propagated
            + self.dce_removed
            + self.branches_simplified
            + self.cse_replaced
            + self.licm_hoisted
    }

    /// Accumulate another run's work (a program builds several functions;
    /// reports sum over benchmarks).
    pub fn absorb(&mut self, o: &PassStats) {
        self.const_folded += o.const_folded;
        self.const_propagated += o.const_propagated;
        self.dce_removed += o.dce_removed;
        self.branches_simplified += o.branches_simplified;
        self.cse_replaced += o.cse_replaced;
        self.licm_hoisted += o.licm_hoisted;
    }
}

/// Bound on pipeline rounds. Passes expose work for each other, so the
/// pipeline repeats until a round makes no rewrite; the bound only
/// guarantees termination.
const MAX_ROUNDS: usize = 3;

/// Optimize every function of `module` at `level`, returning per-pass
/// statistics. Also bumps the `oclsim_clc_opt_*` telemetry counters.
pub fn optimize(module: &mut Module, level: OptLevel) -> PassStats {
    let mut stats = PassStats::default();
    if level == OptLevel::O0 {
        return stats;
    }
    for f in &mut module.funcs {
        for _ in 0..MAX_ROUNDS {
            let mut changed = 0;
            changed += const_prop(f, &mut stats);
            changed += const_fold(f, &mut stats);
            changed += cfg_simplify(f, &mut stats);
            changed += dce(f, &mut stats);
            if level >= OptLevel::O2 {
                changed += licm(f, &mut stats);
                changed += cse(f, &mut stats);
            }
            if changed == 0 {
                break;
            }
        }
    }
    let m = crate::telemetry::metrics();
    m.opt_const_folded.add(stats.const_folded);
    m.opt_const_propagated.add(stats.const_propagated);
    m.opt_dce_removed.add(stats.dce_removed);
    m.opt_branches_simplified.add(stats.branches_simplified);
    m.opt_cse_replaced.add(stats.cse_replaced);
    m.opt_licm_hoisted.add(stats.licm_hoisted);
    stats
}

// ---- tree-walk helpers ------------------------------------------------------

/// Walk every statement (pre-order, the same numbering as
/// [`super::dataflow::for_each_statement`]) letting `f` rewrite each
/// statement's own expressions; returns the sum of `f`'s counts.
fn rewrite_stmts(
    body: &mut [St],
    sid: &mut usize,
    f: &mut impl FnMut(usize, &mut StKind) -> u64,
) -> u64 {
    let mut n = 0;
    for st in body.iter_mut() {
        let this = *sid;
        *sid += 1;
        n += f(this, &mut st.kind);
        match &mut st.kind {
            StKind::If {
                then_blk, else_blk, ..
            } => {
                n += rewrite_stmts(then_blk, sid, f);
                n += rewrite_stmts(else_blk, sid, f);
            }
            StKind::Loop { body, step, .. } => {
                n += rewrite_stmts(body, sid, f);
                n += rewrite_stmts(step, sid, f);
            }
            _ => {}
        }
    }
    n
}

/// The expressions a statement evaluates itself (not nested blocks').
fn stmt_exprs_mut(kind: &mut StKind) -> Vec<&mut Ex> {
    match kind {
        StKind::SetSlot { value, .. } => vec![value],
        StKind::Store { addr, value, .. } => vec![addr, value],
        StKind::If { cond, .. } | StKind::Loop { cond, .. } => vec![cond],
        StKind::Return(Some(e)) | StKind::ExprSt(e) => vec![e],
        _ => Vec::new(),
    }
}

fn stmt_exprs(kind: &StKind) -> Vec<&Ex> {
    match kind {
        StKind::SetSlot { value, .. } => vec![value],
        StKind::Store { addr, value, .. } => vec![addr, value],
        StKind::If { cond, .. } | StKind::Loop { cond, .. } => vec![cond],
        StKind::Return(Some(e)) | StKind::ExprSt(e) => vec![e],
        _ => Vec::new(),
    }
}

fn expr_children(e: &Ex) -> Vec<&Ex> {
    match e {
        Ex::Const { .. } | Ex::Slot { .. } | Ex::LocalBase { .. } | Ex::PrivBase { .. } => {
            Vec::new()
        }
        Ex::PtrAdd { ptr, offset, .. } => vec![ptr, offset],
        Ex::Load { addr, .. } => vec![addr],
        Ex::Bin { l, r, .. } | Ex::Cmp { l, r, .. } => vec![l, r],
        Ex::LogAnd { l, r } | Ex::LogOr { l, r } => vec![l, r],
        Ex::Un { e, .. } | Ex::Cast { e, .. } => vec![e],
        Ex::CallBuiltin { args, .. } | Ex::CallFunc { args, .. } => args.iter().collect(),
        Ex::Select { cond, t, f, .. } => vec![cond, t, f],
    }
}

fn expr_children_mut(e: &mut Ex) -> Vec<&mut Ex> {
    match e {
        Ex::Const { .. } | Ex::Slot { .. } | Ex::LocalBase { .. } | Ex::PrivBase { .. } => {
            Vec::new()
        }
        Ex::PtrAdd { ptr, offset, .. } => vec![ptr, offset],
        Ex::Load { addr, .. } => vec![addr],
        Ex::Bin { l, r, .. } | Ex::Cmp { l, r, .. } => vec![l, r],
        Ex::LogAnd { l, r } | Ex::LogOr { l, r } => vec![l, r],
        Ex::Un { e, .. } | Ex::Cast { e, .. } => vec![e],
        Ex::CallBuiltin { args, .. } | Ex::CallFunc { args, .. } => args.iter_mut().collect(),
        Ex::Select { cond, t, f, .. } => vec![cond, t, f],
    }
}

// ---- pass 1: constant/copy propagation --------------------------------------

fn const_prop(f: &mut FuncIr, stats: &mut PassStats) -> u64 {
    let by_sid: Vec<Option<Vec<SlotVal>>> = {
        let cfg = Cfg::build(f);
        let mut a = ConstProp::new(f);
        let sol = solve(&cfg, &mut a);
        // fact flowing into each statement's step, by statement id; for a
        // Loop this is the *header* flow-in (joined over the back edge),
        // the only fact valid for every evaluation of the condition
        let mut by_sid = vec![None; cfg.n_statements];
        fact_at_each_step(&cfg, &mut ConstProp::new(f), &sol, |step, fact| {
            if by_sid[step.sid].is_none() {
                by_sid[step.sid] = Some(fact.clone());
            }
        });
        by_sid
    };
    let mut sid = 0usize;
    let count = rewrite_stmts(&mut f.body, &mut sid, &mut |sid, kind| {
        let Some(Some(fact)) = by_sid.get(sid) else {
            return 0; // unreachable statement: leave it alone
        };
        let mut local = 0;
        for e in stmt_exprs_mut(kind) {
            apply_facts(e, fact, &mut local);
        }
        local
    });
    stats.const_propagated += count;
    count
}

/// Replace slot reads that the const-prop facts pin down.
fn apply_facts(e: &mut Ex, fact: &[SlotVal], n: &mut u64) {
    if let Ex::Slot { slot, ty } = e {
        match fact.get(*slot) {
            Some(SlotVal::Const { bits, ty: fty }) if fty == ty => {
                *e = Ex::Const {
                    bits: *bits,
                    ty: *ty,
                };
                *n += 1;
            }
            Some(SlotVal::Copy(src)) if src != slot => {
                // slots hold raw canonical bits, so reading the copy's
                // source under the same node type is exact
                *slot = *src;
                *n += 1;
            }
            _ => {}
        }
        return;
    }
    for c in expr_children_mut(e) {
        apply_facts(c, fact, n);
    }
}

// ---- pass 2: constant folding -----------------------------------------------

fn const_fold(f: &mut FuncIr, stats: &mut PassStats) -> u64 {
    let mut sid = 0usize;
    let count = rewrite_stmts(&mut f.body, &mut sid, &mut |_sid, kind| {
        let mut local = 0;
        for e in stmt_exprs_mut(kind) {
            fold_expr(e, &mut local);
        }
        local
    });
    stats.const_folded += count;
    count
}

fn take(b: &mut Box<Ex>) -> Ex {
    std::mem::replace(
        &mut **b,
        Ex::Const {
            bits: 0,
            ty: ScalarType::I32,
        },
    )
}

/// True when `e` is the integer constant `v` (canonical encoding).
fn is_int_const(e: &Ex, v: u64) -> bool {
    matches!(e, Ex::Const { bits, ty } if ty.is_integer() && *bits == v)
}

fn fold_expr(e: &mut Ex, n: &mut u64) {
    for c in expr_children_mut(e) {
        fold_expr(c, n);
    }
    if matches!(e, Ex::Const { .. }) {
        return;
    }
    // all-constant trees fold through the interpreter's own arithmetic;
    // eval_const refuses trapping cases (/0, %0) so they still trap at
    // run time exactly as at O0
    if let Some((bits, ty)) = eval_const(e, &[]) {
        *e = Ex::Const { bits, ty };
        *n += 1;
        return;
    }
    // integer algebraic identities (floats excluded: -0.0 + 0.0 != -0.0)
    let replacement = match e {
        Ex::Bin { op, ty, l, r } if ty.is_integer() => match op {
            BOp::Add if is_int_const(r, 0) => Some(take(l)),
            BOp::Add if is_int_const(l, 0) => Some(take(r)),
            BOp::Sub if is_int_const(r, 0) => Some(take(l)),
            BOp::Mul if is_int_const(r, 1) => Some(take(l)),
            BOp::Mul if is_int_const(l, 1) => Some(take(r)),
            BOp::Mul
                if (is_int_const(r, 0) && pure_nontrapping(l))
                    || (is_int_const(l, 0) && pure_nontrapping(r)) =>
            {
                Some(Ex::Const { bits: 0, ty: *ty })
            }
            _ => None,
        },
        Ex::Select { cond, t, f, .. } => match **cond {
            // with a constant condition the interpreter only ever
            // evaluates the chosen arm, so dropping the other is exact
            Ex::Const { bits, .. } => Some(if bits != 0 { take(t) } else { take(f) }),
            _ => None,
        },
        _ => None,
    };
    if let Some(r) = replacement {
        *e = r;
        *n += 1;
    }
}

// ---- pass 3: CFG simplification ---------------------------------------------

fn cfg_simplify(f: &mut FuncIr, stats: &mut PassStats) -> u64 {
    let mut n = 0;
    simplify_block(&mut f.body, &mut n);
    stats.branches_simplified += n;
    n
}

fn simplify_block(body: &mut Vec<St>, n: &mut u64) {
    let old = std::mem::take(body);
    for mut st in old {
        match &mut st.kind {
            StKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                simplify_block(then_blk, n);
                simplify_block(else_blk, n);
                if let Ex::Const { bits, .. } = cond {
                    // splice the taken arm in place; inner spans survive
                    let arm = if *bits != 0 {
                        std::mem::take(then_blk)
                    } else {
                        std::mem::take(else_blk)
                    };
                    body.extend(arm);
                    *n += 1;
                    continue;
                }
                if then_blk.is_empty() && else_blk.is_empty() && pure_nontrapping(cond) {
                    *n += 1;
                    continue; // branch with two empty arms and a pure test
                }
                body.push(st);
            }
            StKind::Loop {
                cond,
                body: lb,
                step,
                check_first,
            } => {
                simplify_block(lb, n);
                simplify_block(step, n);
                if *check_first && is_int_const(cond, 0) {
                    *n += 1;
                    continue; // while(false): never entered
                }
                body.push(st);
            }
            _ => body.push(st),
        }
    }
}

// ---- pass 4: dead-code elimination ------------------------------------------

fn dce(f: &mut FuncIr, stats: &mut PassStats) -> u64 {
    let live_after: Vec<Option<crate::clc::dataflow::BitSet>> = {
        let cfg = Cfg::build(f);
        let mut a = Liveness::new(f);
        let sol = solve(&cfg, &mut a);
        // the backward replay hands each step the fact before its
        // (reversed) transfer — i.e. the live set *after* the step in
        // execution order
        let mut by_sid = vec![None; cfg.n_statements];
        fact_at_each_step(&cfg, &mut Liveness::new(f), &sol, |step, fact| {
            if let StepOp::Set { .. } = step.op {
                by_sid[step.sid] = Some(fact.clone());
            }
        });
        by_sid
    };
    let mut n = 0;
    let mut sid = 0usize;
    dce_block(&mut f.body, &live_after, &mut sid, &mut n);
    stats.dce_removed += n;
    n
}

fn dce_block(
    body: &mut Vec<St>,
    live_after: &[Option<crate::clc::dataflow::BitSet>],
    sid: &mut usize,
    n: &mut u64,
) {
    let old = std::mem::take(body);
    for mut st in old {
        let this = *sid;
        *sid += 1;
        match &mut st.kind {
            StKind::SetSlot { slot, value } => {
                if pure_nontrapping(value) {
                    if let Some(Some(live)) = live_after.get(this) {
                        if !live.contains(*slot) {
                            *n += 1;
                            continue; // assigned value is never read again
                        }
                    }
                }
                body.push(st);
            }
            StKind::ExprSt(e) if pure_nontrapping(e) => {
                *n += 1; // pure expression statement: no effect at all
            }
            StKind::If {
                then_blk, else_blk, ..
            } => {
                dce_block(then_blk, live_after, sid, n);
                dce_block(else_blk, live_after, sid, n);
                body.push(st);
            }
            StKind::Loop { body: lb, step, .. } => {
                dce_block(lb, live_after, sid, n);
                dce_block(step, live_after, sid, n);
                body.push(st);
            }
            _ => body.push(st),
        }
    }
}

// ---- pass 5: loop-invariant code motion (O2) --------------------------------

fn licm(f: &mut FuncIr, stats: &mut PassStats) -> u64 {
    let mut n = 0;
    let mut slots = std::mem::take(&mut f.slots);
    licm_block(&mut f.body, &mut slots, &mut n);
    f.slots = slots;
    stats.licm_hoisted += n;
    n
}

fn licm_block(body: &mut Vec<St>, slots: &mut Vec<SlotKind>, n: &mut u64) {
    let old = std::mem::take(body);
    for mut st in old {
        match &mut st.kind {
            StKind::If {
                then_blk, else_blk, ..
            } => {
                licm_block(then_blk, slots, n);
                licm_block(else_blk, slots, n);
                body.push(st);
            }
            StKind::Loop {
                cond,
                body: lb,
                step,
                ..
            } => {
                // inner loops first: their hoisted temps land in this
                // loop's body and the next pipeline round can lift them
                // further if they are invariant here too
                licm_block(lb, slots, n);
                licm_block(step, slots, n);
                let mut assigned = BTreeSet::new();
                collect_assigned(lb, &mut assigned);
                collect_assigned(step, &mut assigned);
                let mut plans: Vec<Ex> = Vec::new();
                scan_invariants(cond, &assigned, &mut plans);
                scan_stmt_invariants(lb, &assigned, &mut plans);
                scan_stmt_invariants(step, &assigned, &mut plans);
                let planned: Vec<(Ex, usize)> = plans
                    .into_iter()
                    .map(|ex| {
                        slots.push(SlotKind::Scalar(ex.ty()));
                        (ex, slots.len() - 1)
                    })
                    .collect();
                if !planned.is_empty() {
                    *n += planned.len() as u64;
                    replace_planned(cond, &planned);
                    replace_planned_stmts(lb, &planned);
                    replace_planned_stmts(step, &planned);
                    for (ex, temp) in &planned {
                        // hoisted temps charge the loop-header line: the
                        // span of the loop statement whose work they lift
                        body.push(St::new(
                            StKind::SetSlot {
                                slot: *temp,
                                value: ex.clone(),
                            },
                            st.span,
                        ));
                    }
                }
                body.push(st);
            }
            _ => body.push(st),
        }
    }
}

fn collect_assigned(body: &[St], out: &mut BTreeSet<usize>) {
    for st in body {
        match &st.kind {
            StKind::SetSlot { slot, .. } => {
                out.insert(*slot);
            }
            StKind::If {
                then_blk, else_blk, ..
            } => {
                collect_assigned(then_blk, out);
                collect_assigned(else_blk, out);
            }
            StKind::Loop { body, step, .. } => {
                collect_assigned(body, out);
                collect_assigned(step, out);
            }
            _ => {}
        }
    }
}

/// Is `e` hoistable out of a loop whose assigned slots are `assigned`?
/// Leaves are never worth a temp; all-constant trees are folding's job.
fn licm_candidate(e: &Ex, assigned: &BTreeSet<usize>) -> bool {
    match e {
        Ex::Const { .. } | Ex::Slot { .. } | Ex::LocalBase { .. } | Ex::PrivBase { .. } => false,
        _ => {
            if !pure_nontrapping(e) || eval_const(e, &[]).is_some() {
                return false;
            }
            let mut uses = Vec::new();
            used_slots(e, &mut uses);
            uses.iter().all(|s| !assigned.contains(s))
        }
    }
}

/// Collect maximal invariant subexpressions (top-down; an invariant tree
/// covers everything inside it).
fn scan_invariants(e: &Ex, assigned: &BTreeSet<usize>, plans: &mut Vec<Ex>) {
    if licm_candidate(e, assigned) {
        if !plans.iter().any(|p| p == e) {
            plans.push(e.clone());
        }
        return;
    }
    for c in expr_children(e) {
        scan_invariants(c, assigned, plans);
    }
}

fn scan_stmt_invariants(body: &[St], assigned: &BTreeSet<usize>, plans: &mut Vec<Ex>) {
    for st in body {
        for e in stmt_exprs(&st.kind) {
            scan_invariants(e, assigned, plans);
        }
        match &st.kind {
            StKind::If {
                then_blk, else_blk, ..
            } => {
                scan_stmt_invariants(then_blk, assigned, plans);
                scan_stmt_invariants(else_blk, assigned, plans);
            }
            StKind::Loop { body, step, .. } => {
                scan_stmt_invariants(body, assigned, plans);
                scan_stmt_invariants(step, assigned, plans);
            }
            _ => {}
        }
    }
}

fn replace_planned(e: &mut Ex, planned: &[(Ex, usize)]) {
    for (p, temp) in planned {
        if e == p {
            *e = Ex::Slot {
                slot: *temp,
                ty: p.ty(),
            };
            return;
        }
    }
    for c in expr_children_mut(e) {
        replace_planned(c, planned);
    }
}

fn replace_planned_stmts(body: &mut [St], planned: &[(Ex, usize)]) {
    for st in body.iter_mut() {
        for e in stmt_exprs_mut(&mut st.kind) {
            replace_planned(e, planned);
        }
        match &mut st.kind {
            StKind::If {
                then_blk, else_blk, ..
            } => {
                replace_planned_stmts(then_blk, planned);
                replace_planned_stmts(else_blk, planned);
            }
            StKind::Loop { body, step, .. } => {
                replace_planned_stmts(body, planned);
                replace_planned_stmts(step, planned);
            }
            _ => {}
        }
    }
}

// ---- pass 6: local common-subexpression elimination (O2) --------------------

fn cse(f: &mut FuncIr, stats: &mut PassStats) -> u64 {
    let mut n = 0;
    let mut slots = std::mem::take(&mut f.slots);
    cse_block(&mut f.body, &mut slots, &mut n);
    f.slots = slots;
    stats.cse_replaced += n;
    n
}

fn cse_block(body: &mut Vec<St>, slots: &mut Vec<SlotKind>, n: &mut u64) {
    for st in body.iter_mut() {
        match &mut st.kind {
            StKind::If {
                then_blk, else_blk, ..
            } => {
                cse_block(then_blk, slots, n);
                cse_block(else_blk, slots, n);
            }
            StKind::Loop { body: lb, step, .. } => {
                cse_block(lb, slots, n);
                cse_block(step, slots, n);
            }
            _ => {}
        }
    }
    // straight-line runs: maximal sequences of Set/Store/ExprSt (control
    // statements and barriers end a run; the mask is constant within one)
    let old = std::mem::take(body);
    let mut run: Vec<St> = Vec::new();
    for st in old {
        let straight = matches!(
            st.kind,
            StKind::SetSlot { .. } | StKind::Store { .. } | StKind::ExprSt(_)
        );
        if straight {
            run.push(st);
        } else {
            process_run(&mut run, slots, n, body);
            body.push(st);
        }
    }
    process_run(&mut run, slots, n, body);
}

/// One shared-expression plan: the expression, the slot versions it read,
/// how often it occurred, and the temp slot once allocated.
struct CsePlan {
    ex: Ex,
    vers: Vec<(usize, u64)>,
    count: u64,
    temp: Option<usize>,
}

/// Candidates are pure, nontrapping, non-leaf and not already constant.
/// Bare address nodes (`PtrAdd`) stay out: a pointer temp hides the base
/// from the access-pattern cost model without saving real work.
fn cse_candidate(e: &Ex) -> bool {
    match e {
        Ex::Const { .. }
        | Ex::Slot { .. }
        | Ex::LocalBase { .. }
        | Ex::PrivBase { .. }
        | Ex::PtrAdd { .. } => false,
        _ => pure_nontrapping(e) && eval_const(e, &[]).is_none(),
    }
}

fn cse_key(e: &Ex, vers: &BTreeMap<usize, u64>) -> Vec<(usize, u64)> {
    let mut uses = Vec::new();
    used_slots(e, &mut uses);
    uses.sort_unstable();
    uses.iter()
        .map(|s| (*s, vers.get(s).copied().unwrap_or(0)))
        .collect()
}

/// Count candidate occurrences at every nesting level. Descending into
/// candidates lets a subtree shared between two *different* larger
/// expressions still be found.
fn scan_cse(e: &Ex, vers: &BTreeMap<usize, u64>, plans: &mut Vec<CsePlan>) {
    if cse_candidate(e) {
        let k = cse_key(e, vers);
        if let Some(p) = plans.iter_mut().find(|p| p.ex == *e && p.vers == k) {
            p.count += 1;
        } else {
            plans.push(CsePlan {
                ex: e.clone(),
                vers: k,
                count: 1,
                temp: None,
            });
        }
    }
    for c in expr_children(e) {
        scan_cse(c, vers, plans);
    }
}

#[allow(clippy::too_many_arguments)]
fn rewrite_cse(
    e: &mut Ex,
    vers: &BTreeMap<usize, u64>,
    plans: &mut Vec<CsePlan>,
    slots: &mut Vec<SlotKind>,
    pending: &mut Vec<St>,
    span: crate::clc::ast::Span,
    n: &mut u64,
) {
    if cse_candidate(e) {
        let k = cse_key(e, vers);
        if let Some(p) = plans
            .iter_mut()
            .find(|p| p.count >= 2 && p.ex == *e && p.vers == k)
        {
            let ty = e.ty();
            let first = p.temp.is_none();
            let temp = match p.temp {
                Some(t) => t,
                None => {
                    slots.push(SlotKind::Scalar(ty));
                    let t = slots.len() - 1;
                    p.temp = Some(t);
                    // the temp charges the line of its first occurrence
                    pending.push(St::new(
                        StKind::SetSlot {
                            slot: t,
                            value: e.clone(),
                        },
                        span,
                    ));
                    t
                }
            };
            *e = Ex::Slot { slot: temp, ty };
            if !first {
                *n += 1;
            }
            return;
        }
    }
    for c in expr_children_mut(e) {
        rewrite_cse(c, vers, plans, slots, pending, span, n);
    }
}

fn process_run(run: &mut Vec<St>, slots: &mut Vec<SlotKind>, n: &mut u64, out: &mut Vec<St>) {
    if run.len() < 2 {
        out.append(run);
        return;
    }
    // phase 1: count occurrences keyed by (expression, slot versions)
    let mut plans: Vec<CsePlan> = Vec::new();
    let mut vers: BTreeMap<usize, u64> = BTreeMap::new();
    for st in run.iter() {
        for e in stmt_exprs(&st.kind) {
            scan_cse(e, &vers, &mut plans);
        }
        if let StKind::SetSlot { slot, .. } = &st.kind {
            *vers.entry(*slot).or_insert(0) += 1;
        }
    }
    if !plans.iter().any(|p| p.count >= 2) {
        out.append(run);
        return;
    }
    // phase 2: replay the identical versioning; materialize each shared
    // expression once, immediately before its first occurrence
    let mut vers: BTreeMap<usize, u64> = BTreeMap::new();
    for mut st in run.drain(..) {
        let span = st.span;
        let mut pending: Vec<St> = Vec::new();
        for e in stmt_exprs_mut(&mut st.kind) {
            rewrite_cse(e, &vers, &mut plans, slots, &mut pending, span, n);
        }
        if let StKind::SetSlot { slot, .. } = &st.kind {
            *vers.entry(*slot).or_insert(0) += 1;
        }
        out.extend(pending);
        out.push(st);
    }
}

// ---- IR pretty-printer ------------------------------------------------------

/// Render `f` as a compact listing: one statement per line, a `L<n>`
/// gutter carrying each statement's source line, slots as `%<id>`. The
/// gutter is the point — diffing a dump before and after [`optimize`]
/// shows both what the passes rewrote *and* that every surviving
/// statement still maps to a real source line (the span-preservation
/// invariant the per-line profiler depends on).
pub fn dump(f: &FuncIr) -> String {
    let mut out = String::new();
    let kind = if f.is_kernel { "kernel" } else { "func" };
    out.push_str(&format!("{} {}(", kind, f.name));
    for (i, _) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("%{}: {}", i, slot_ty(&f.slots[i])));
    }
    out.push_str(") {\n");
    for (i, s) in f.slots.iter().enumerate().skip(f.params.len()) {
        out.push_str(&format!("  %{}: {}\n", i, slot_ty(s)));
    }
    dump_block(&f.body, 1, &mut out);
    out.push_str("}\n");
    out
}

fn slot_ty(s: &SlotKind) -> String {
    match s {
        SlotKind::Scalar(ty) => ty_name(*ty).to_string(),
        SlotKind::Ptr { space, elem } => format!("{}*{:?}", ty_name(*elem), space).to_lowercase(),
    }
}

fn ty_name(ty: ScalarType) -> &'static str {
    match ty {
        ScalarType::Bool => "bool",
        ScalarType::I8 => "i8",
        ScalarType::U8 => "u8",
        ScalarType::I16 => "i16",
        ScalarType::U16 => "u16",
        ScalarType::I32 => "i32",
        ScalarType::U32 => "u32",
        ScalarType::I64 => "i64",
        ScalarType::U64 => "u64",
        ScalarType::F32 => "f32",
        ScalarType::F64 => "f64",
    }
}

fn dump_block(block: &[St], depth: usize, out: &mut String) {
    for st in block {
        let pad = "  ".repeat(depth);
        let gutter = format!("{pad}L{:<3} ", st.span.line);
        match &st.kind {
            StKind::SetSlot { slot, value } => {
                out.push_str(&format!("{gutter}%{} = {}\n", slot, dump_ex(value)));
            }
            StKind::Store {
                addr, space, value, ..
            } => {
                out.push_str(&format!(
                    "{gutter}st.{} [{}] = {}\n",
                    format!("{space:?}").to_lowercase(),
                    dump_ex(addr),
                    dump_ex(value)
                ));
            }
            StKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                out.push_str(&format!("{gutter}if {} {{\n", dump_ex(cond)));
                dump_block(then_blk, depth + 1, out);
                if !else_blk.is_empty() {
                    out.push_str(&format!("{pad}     }} else {{\n"));
                    dump_block(else_blk, depth + 1, out);
                }
                out.push_str(&format!("{pad}     }}\n"));
            }
            StKind::Loop {
                cond,
                body,
                step,
                check_first,
            } => {
                let head = if *check_first { "while" } else { "do-while" };
                out.push_str(&format!("{gutter}{head} {} {{\n", dump_ex(cond)));
                dump_block(body, depth + 1, out);
                if !step.is_empty() {
                    out.push_str(&format!("{pad}     }} step {{\n"));
                    dump_block(step, depth + 1, out);
                }
                out.push_str(&format!("{pad}     }}\n"));
            }
            StKind::Return(e) => match e {
                Some(e) => out.push_str(&format!("{gutter}return {}\n", dump_ex(e))),
                None => out.push_str(&format!("{gutter}return\n")),
            },
            StKind::Break => out.push_str(&format!("{gutter}break\n")),
            StKind::Continue => out.push_str(&format!("{gutter}continue\n")),
            StKind::Barrier { .. } => out.push_str(&format!("{gutter}barrier\n")),
            StKind::ExprSt(e) => out.push_str(&format!("{gutter}{}\n", dump_ex(e))),
        }
    }
}

fn dump_ex(e: &Ex) -> String {
    match e {
        Ex::Const { bits, ty } => match ty {
            ScalarType::F32 => format!("{:?}f32", f32::from_bits(*bits as u32)),
            ScalarType::F64 => format!("{:?}f64", f64::from_bits(*bits)),
            ScalarType::Bool => format!("{}", *bits != 0),
            ScalarType::I8 | ScalarType::I16 | ScalarType::I32 | ScalarType::I64 => {
                format!("{}{}", *bits as i64, ty_name(*ty))
            }
            _ => format!("{}{}", bits, ty_name(*ty)),
        },
        Ex::Slot { slot, .. } => format!("%{slot}"),
        Ex::LocalBase { alloc, .. } => format!("local#{alloc}"),
        Ex::PrivBase { alloc, .. } => format!("priv#{alloc}"),
        Ex::PtrAdd { ptr, offset, .. } => {
            format!("&{}[{}]", dump_ex(ptr), dump_ex(offset))
        }
        Ex::Load { addr, space, .. } => {
            format!(
                "ld.{} [{}]",
                format!("{space:?}").to_lowercase(),
                dump_ex(addr)
            )
        }
        Ex::Bin { op, l, r, .. } => {
            let sym = match op {
                BOp::Add => "+",
                BOp::Sub => "-",
                BOp::Mul => "*",
                BOp::Div => "/",
                BOp::Rem => "%",
                BOp::And => "&",
                BOp::Or => "|",
                BOp::Xor => "^",
                BOp::Shl => "<<",
                BOp::Shr => ">>",
            };
            format!("({} {} {})", dump_ex(l), sym, dump_ex(r))
        }
        Ex::Cmp { op, l, r, .. } => {
            let sym = match op {
                COp::Lt => "<",
                COp::Gt => ">",
                COp::Le => "<=",
                COp::Ge => ">=",
                COp::Eq => "==",
                COp::Ne => "!=",
            };
            format!("({} {} {})", dump_ex(l), sym, dump_ex(r))
        }
        Ex::LogAnd { l, r } => format!("({} && {})", dump_ex(l), dump_ex(r)),
        Ex::LogOr { l, r } => format!("({} || {})", dump_ex(l), dump_ex(r)),
        Ex::Un { op, e, .. } => {
            let sym = match op {
                UOp::Neg => "-",
                UOp::Not => "!",
                UOp::BitNot => "~",
            };
            format!("{sym}{}", dump_ex(e))
        }
        Ex::Cast { to, e, .. } => format!("({})({})", ty_name(*to), dump_ex(e)),
        Ex::CallBuiltin { b, args, .. } => {
            let args: Vec<String> = args.iter().map(dump_ex).collect();
            format!("{b:?}({})", args.join(", "))
        }
        Ex::CallFunc { func, args, .. } => {
            let args: Vec<String> = args.iter().map(dump_ex).collect();
            format!("fn#{func}({})", args.join(", "))
        }
        Ex::Select { cond, t, f, .. } => {
            format!("({} ? {} : {})", dump_ex(cond), dump_ex(t), dump_ex(f))
        }
    }
}

// ---- tests ------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clc::dataflow::for_each_statement;
    use crate::clc::{parser, sema};
    use std::collections::BTreeSet;

    fn compile(src: &str) -> Module {
        let tu = parser::parse(src).expect("parse");
        sema::analyze(&tu).expect("sema")
    }

    fn kernel<'m>(m: &'m Module, name: &str) -> &'m FuncIr {
        &m.funcs[m.kernels[name]]
    }

    fn source_lines(f: &FuncIr) -> BTreeSet<usize> {
        let mut lines = BTreeSet::new();
        for_each_statement(&f.body, &mut |_, st| {
            lines.insert(st.span.line);
        });
        lines
    }

    fn count_stmts(f: &FuncIr) -> usize {
        let mut n = 0;
        for_each_statement(&f.body, &mut |_, _| n += 1);
        n
    }

    #[test]
    fn o0_is_identity() {
        let mut m = compile(
            r#"
__kernel void k(__global int *out) {
    int a = 3;
    int b = a + 4;
    out[get_global_id(0)] = b;
}
"#,
        );
        let before = m.clone();
        let stats = optimize(&mut m, OptLevel::O0);
        assert_eq!(stats, PassStats::default());
        assert_eq!(m, before);
    }

    #[test]
    fn const_chain_folds_to_store_of_constant() {
        let mut m = compile(
            r#"
__kernel void k(__global int *out) {
    int a = 3;
    int b = a + 4;
    int c = b * 2;
    out[get_global_id(0)] = c;
}
"#,
        );
        let stats = optimize(&mut m, OptLevel::O1);
        assert!(stats.const_propagated > 0, "{stats:?}");
        assert!(stats.dce_removed >= 3, "a, b, c all die: {stats:?}");
        let f = kernel(&m, "k");
        let mut stored = None;
        for_each_statement(&f.body, &mut |_, st| {
            if let StKind::Store { value, .. } = &st.kind {
                stored = eval_const(value, &[]);
            }
        });
        assert_eq!(stored, Some((14, ScalarType::I32)));
        // nothing is left but the store
        assert_eq!(count_stmts(f), 1);
    }

    #[test]
    fn constant_branch_is_spliced() {
        let mut m = compile(
            r#"
__kernel void k(__global int *out) {
    int p = 4;
    if (p > 3) {
        out[get_global_id(0)] = 1;
    } else {
        out[get_global_id(0)] = 2;
    }
}
"#,
        );
        let stats = optimize(&mut m, OptLevel::O1);
        assert!(stats.branches_simplified >= 1, "{stats:?}");
        let f = kernel(&m, "k");
        let mut stores = Vec::new();
        for_each_statement(&f.body, &mut |_, st| {
            if let StKind::Store { value, .. } = &st.kind {
                stores.push(eval_const(value, &[]));
            }
        });
        assert_eq!(stores, vec![Some((1, ScalarType::I32))]);
        // no If survives
        for_each_statement(&f.body, &mut |_, st| {
            assert!(!matches!(st.kind, StKind::If { .. }));
        });
    }

    #[test]
    fn dce_keeps_potentially_trapping_dead_code() {
        let mut m = compile(
            r#"
__kernel void k(__global int *out, int n, int d) {
    int dead_pure = n * 3;
    int dead_trap = n / d;
    out[get_global_id(0)] = 7;
}
"#,
        );
        let stats = optimize(&mut m, OptLevel::O2);
        assert!(stats.dce_removed >= 1, "{stats:?}");
        let f = kernel(&m, "k");
        let mut divs = 0;
        let mut muls = 0;
        for_each_statement(&f.body, &mut |_, st| {
            if let StKind::SetSlot { value, .. } = &st.kind {
                if matches!(value, Ex::Bin { op: BOp::Div, .. }) {
                    divs += 1;
                }
                if matches!(value, Ex::Bin { op: BOp::Mul, .. }) {
                    muls += 1;
                }
            }
        });
        assert_eq!(divs, 1, "n/d may trap on d==0 and must survive DCE");
        assert_eq!(muls, 0, "n*3 is pure and dead");
    }

    #[test]
    fn licm_hoists_invariant_address_math() {
        let mut m = compile(
            r#"
__kernel void k(__global int *out, int n) {
    int acc = 0;
    for (int j = 0; j < 64; j = j + 1) {
        acc = acc + n * 4;
    }
    out[get_global_id(0)] = acc;
}
"#,
        );
        let before_lines = source_lines(kernel(&m, "k"));
        let stats = optimize(&mut m, OptLevel::O2);
        assert!(stats.licm_hoisted >= 1, "n * 4 is invariant: {stats:?}");
        let f = kernel(&m, "k");
        // the loop body no longer multiplies
        let mut in_loop_muls = 0;
        for_each_statement(&f.body, &mut |_, st| {
            if let StKind::Loop { body, .. } = &st.kind {
                for inner in body {
                    if let StKind::SetSlot { value, .. } = &inner.kind {
                        let mut has_mul = false;
                        fn find_mul(e: &Ex, found: &mut bool) {
                            if matches!(e, Ex::Bin { op: BOp::Mul, .. }) {
                                *found = true;
                            }
                            for c in expr_children(e) {
                                find_mul(c, found);
                            }
                        }
                        find_mul(value, &mut has_mul);
                        if has_mul {
                            in_loop_muls += 1;
                        }
                    }
                }
            }
        });
        assert_eq!(in_loop_muls, 0, "the multiply moved out of the loop");
        // span preservation: no invented lines
        let after_lines = source_lines(f);
        assert!(
            after_lines.is_subset(&before_lines),
            "optimized spans {after_lines:?} must come from {before_lines:?}"
        );
    }

    #[test]
    fn cse_shares_repeated_subexpressions() {
        let mut m = compile(
            r#"
__kernel void k(__global int *out, int n) {
    int i = (int)get_global_id(0);
    out[i] = (n + 1) * (n + 2);
    out[i + 1] = (n + 1) * (n + 2) + 5;
}
"#,
        );
        let stats = optimize(&mut m, OptLevel::O2);
        assert!(stats.cse_replaced >= 1, "{stats:?}");
    }

    #[test]
    fn spans_survive_full_o2_pipeline() {
        let src = r#"
__kernel void k(__global int *out, __global const int *in, int n) {
    int i = (int)get_global_id(0);
    int t = 0;
    for (int j = 0; j < n; j = j + 1) {
        t = t + in[j] * (n + 3);
    }
    if (i < n) {
        out[i] = t + (n + 3);
    }
}
"#;
        let mut m = compile(src);
        let before_lines = source_lines(kernel(&m, "k"));
        let stats = optimize(&mut m, OptLevel::O2);
        assert!(stats.total() > 0, "pipeline does real work: {stats:?}");
        let after_lines = source_lines(kernel(&m, "k"));
        assert!(
            after_lines.is_subset(&before_lines),
            "no invented source lines: {after_lines:?} vs {before_lines:?}"
        );
        assert!(
            !after_lines.contains(&0),
            "no synthetic (line 0) statements created"
        );
    }

    #[test]
    fn opt_level_flags_round_trip() {
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            assert_eq!(OptLevel::from_flag(level.flag()), Some(level));
        }
        assert_eq!(OptLevel::from_flag("-O3"), None);
        assert_eq!(OptLevel::default(), OptLevel::O1);
        assert!(OptLevel::O0 < OptLevel::O1 && OptLevel::O1 < OptLevel::O2);
    }

    #[test]
    fn pass_stats_absorb_and_total() {
        let mut a = PassStats {
            const_folded: 1,
            const_propagated: 2,
            dce_removed: 3,
            branches_simplified: 4,
            cse_replaced: 5,
            licm_hoisted: 6,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.total(), 2 * b.total());
        assert_eq!(a.total(), 42);
    }

    #[test]
    fn dump_shows_rewrites_and_never_invents_source_lines() {
        // the README's before/after mid-end listing is this kernel
        let src = r#"
__kernel void smooth(__global float *dst, __global const float *src, const int n) {
    int i = (int)get_global_id(0);
    float gain = 2.0f * 0.75f;
    for (int j = 0; j < n; j = j + 1) {
        float w = gain / (float)n;
        dst[i * 8 + j] = src[i * 8 + j] * w;
    }
}
"#;
        let tu = parser::parse(src).expect("parse");
        let mut m = sema::analyze(&tu).expect("sema");
        let before = dump(kernel(&m, "smooth"));
        optimize(&mut m, OptLevel::O2);
        let after = dump(kernel(&m, "smooth"));

        // the fold is visible: `2.0f * 0.75f` became the literal 1.5
        assert!(before.contains("%4 = 1.5f32"), "{before}");
        // ...then propagated into the hoisted division and DCE'd away
        assert!(after.contains("(1.5f32 / (f32)(%2))"), "{after}");
        assert!(!after.contains("%4 = "), "{after}");
        // LICM pulled `i * 8` in front of the loop, CSE shared the address
        let loop_at = after.find("while").expect("loop survives");
        let hoist_at = after.find("(%3 * 8i32)").expect("hoisted index");
        assert!(hoist_at < loop_at, "{after}");

        // every gutter line in the optimized dump names a line that exists
        // in the unoptimized dump — the span-preservation invariant,
        // readable straight off the listing
        let lines = |s: &str| -> BTreeSet<String> {
            s.split_whitespace()
                .filter(|w| w.starts_with('L') && w[1..].chars().all(|c| c.is_ascii_digit()))
                .map(str::to_string)
                .collect()
        };
        assert!(
            lines(&after).is_subset(&lines(&before)),
            "optimized dump invented source lines:\n{after}"
        );
    }
}
