//! Recursive-descent parser for the OpenCL C subset.
//!
//! The grammar covers what data-parallel kernels use in practice:
//! function definitions (kernel and helper), scalar/pointer/array
//! declarations with address-space qualifiers, the full C expression
//! grammar (assignment, ternary, binary/unary operators, casts, calls,
//! indexing, increment/decrement), and `if`/`for`/`while`/`do`/`return`/
//! `break`/`continue`. Out of scope (diagnosed): structs, switch, goto,
//! multi-level pointers, function pointers, and vector types.

use crate::clc::ast::*;
use crate::clc::lexer::{lex, Punct, Spanned, Tok};
use crate::error::{Error, Result};
use crate::types::ScalarType;

/// Parse a preprocessed translation unit.
pub fn parse(src: &str) -> Result<TranslationUnit> {
    let toks = {
        let mut span = crate::telemetry::span("clc", "lex");
        let toks = lex(src)?;
        span.note("tokens", toks.len());
        toks
    };
    let _span = crate::telemetry::span("clc", "parse");
    let mut p = Parser { toks, pos: 0 };
    p.translation_unit()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        let t = &self.toks[self.pos];
        Span::new(t.line, t.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::BuildFailure(format!("parser, line {}: {}", self.span(), msg.into()))
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct, what: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- types -----------------------------------------------------------

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Does an identifier start a type (used for cast disambiguation and
    /// declaration detection)?
    fn is_type_start(&self, s: &str) -> bool {
        matches!(
            s,
            "void"
                | "bool"
                | "char"
                | "uchar"
                | "short"
                | "ushort"
                | "int"
                | "uint"
                | "long"
                | "ulong"
                | "float"
                | "double"
                | "unsigned"
                | "signed"
                | "size_t"
                | "const"
                | "volatile"
                | "__global"
                | "global"
                | "__local"
                | "local"
                | "__constant"
                | "constant"
                | "__private"
                | "private"
        )
    }

    /// Parse optional qualifiers + base scalar type. Returns the address
    /// space (default `Private`) and scalar type.
    fn parse_base_type(&mut self) -> Result<(AddrSpace, Option<ScalarType>, bool)> {
        let mut space = AddrSpace::Private;
        let mut space_explicit = false;
        let mut is_const = false;
        loop {
            match self.peek_ident() {
                Some("const") => {
                    is_const = true;
                    self.bump();
                }
                Some("volatile") | Some("restrict") => {
                    self.bump();
                }
                Some("__global") | Some("global") => {
                    space = AddrSpace::Global;
                    space_explicit = true;
                    self.bump();
                }
                Some("__local") | Some("local") => {
                    space = AddrSpace::Local;
                    space_explicit = true;
                    self.bump();
                }
                Some("__constant") | Some("constant") => {
                    space = AddrSpace::Constant;
                    space_explicit = true;
                    self.bump();
                }
                Some("__private") | Some("private") => {
                    space = AddrSpace::Private;
                    space_explicit = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let _ = space_explicit;
        let scalar = match self.peek_ident() {
            Some("void") => {
                self.bump();
                None
            }
            Some("bool") => {
                self.bump();
                Some(ScalarType::Bool)
            }
            Some("char") => {
                self.bump();
                Some(ScalarType::I8)
            }
            Some("uchar") => {
                self.bump();
                Some(ScalarType::U8)
            }
            Some("short") => {
                self.bump();
                Some(ScalarType::I16)
            }
            Some("ushort") => {
                self.bump();
                Some(ScalarType::U16)
            }
            Some("int") => {
                self.bump();
                Some(ScalarType::I32)
            }
            Some("uint") => {
                self.bump();
                Some(ScalarType::U32)
            }
            Some("long") => {
                self.bump();
                Some(ScalarType::I64)
            }
            Some("ulong") => {
                self.bump();
                Some(ScalarType::U64)
            }
            Some("float") => {
                self.bump();
                Some(ScalarType::F32)
            }
            Some("double") => {
                self.bump();
                Some(ScalarType::F64)
            }
            Some("size_t") => {
                self.bump();
                Some(ScalarType::U64)
            }
            Some("signed") => {
                self.bump();
                match self.peek_ident() {
                    Some("char") => {
                        self.bump();
                        Some(ScalarType::I8)
                    }
                    Some("short") => {
                        self.bump();
                        Some(ScalarType::I16)
                    }
                    Some("long") => {
                        self.bump();
                        Some(ScalarType::I64)
                    }
                    Some("int") => {
                        self.bump();
                        Some(ScalarType::I32)
                    }
                    _ => Some(ScalarType::I32),
                }
            }
            Some("unsigned") => {
                self.bump();
                match self.peek_ident() {
                    Some("char") => {
                        self.bump();
                        Some(ScalarType::U8)
                    }
                    Some("short") => {
                        self.bump();
                        Some(ScalarType::U16)
                    }
                    Some("long") => {
                        self.bump();
                        Some(ScalarType::U64)
                    }
                    Some("int") => {
                        self.bump();
                        Some(ScalarType::U32)
                    }
                    _ => Some(ScalarType::U32),
                }
            }
            other => {
                return Err(self.err(format!("expected a type, found {other:?}")));
            }
        };
        // trailing `const` (e.g. `int const`)
        while self.eat_ident("const") || self.eat_ident("volatile") {
            is_const = true;
        }
        Ok((space, scalar, is_const))
    }

    /// Full type including one optional `*` (after which `restrict`/`const`
    /// are accepted and ignored).
    fn parse_full_type(&mut self) -> Result<(ClType, bool)> {
        let (space, scalar, is_const) = self.parse_base_type()?;
        if self.eat_punct(Punct::Star) {
            if *self.peek() == Tok::Punct(Punct::Star) {
                return Err(self.err("multi-level pointers are not supported"));
            }
            while self.eat_ident("restrict")
                || self.eat_ident("const")
                || self.eat_ident("volatile")
            {}
            let st = scalar.ok_or_else(|| self.err("`void*` pointers are not supported"))?;
            // pointer with no explicit space defaults to global for params
            Ok((ClType::Ptr(space_or_global(space), st), is_const))
        } else {
            match scalar {
                Some(st) => Ok((ClType::Scalar(st), is_const)),
                None => Ok((ClType::Void, is_const)),
            }
        }
    }

    // ---- top level --------------------------------------------------------

    fn translation_unit(&mut self) -> Result<TranslationUnit> {
        let mut tu = TranslationUnit::default();
        while *self.peek() != Tok::Eof {
            tu.funcs.push(self.func_def()?);
        }
        Ok(tu)
    }

    fn func_def(&mut self) -> Result<FuncDef> {
        let span = self.span();
        let mut is_kernel = false;
        while self.eat_ident("__kernel") || self.eat_ident("kernel") {
            is_kernel = true;
        }
        // attributes like __attribute__((...)) are not supported
        let (ret, _) = self.parse_full_type()?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen, "`(` after function name")?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                if self.eat_ident("void") && *self.peek() == Tok::Punct(Punct::RParen) {
                    // `f(void)`
                    self.bump();
                    break;
                }
                let (ty, is_const) = self.parse_full_type()?;
                let pname = self.expect_ident()?;
                if self.eat_punct(Punct::LBracket) {
                    return Err(self.err("array-typed parameters are not supported; use a pointer"));
                }
                params.push(Param {
                    name: pname,
                    ty,
                    is_const,
                });
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma, "`,` or `)` in parameter list")?;
            }
        }
        self.expect_punct(Punct::LBrace, "function body")?;
        let body = self.block_body()?;
        Ok(FuncDef {
            name,
            is_kernel,
            ret,
            params,
            body,
            span,
        })
    }

    // ---- statements -------------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    /// A single statement or a `{}` block flattened into a Vec.
    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>> {
        if self.eat_punct(Punct::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        let kind = if self.eat_punct(Punct::Semi) {
            StmtKind::Empty
        } else if self.eat_punct(Punct::LBrace) {
            StmtKind::Block(self.block_body()?)
        } else if self.eat_ident("if") {
            self.expect_punct(Punct::LParen, "`(` after if")?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen, "`)` after if condition")?;
            let then_blk = self.stmt_or_block()?;
            let else_blk = if self.eat_ident("else") {
                self.stmt_or_block()?
            } else {
                vec![]
            };
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            }
        } else if self.eat_ident("for") {
            self.expect_punct(Punct::LParen, "`(` after for")?;
            let init = if self.eat_punct(Punct::Semi) {
                None
            } else {
                Some(Box::new(self.decl_or_expr_stmt()?))
            };
            let cond = if *self.peek() == Tok::Punct(Punct::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(Punct::Semi, "`;` after for condition")?;
            let step = if *self.peek() == Tok::Punct(Punct::RParen) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(Punct::RParen, "`)` after for clauses")?;
            let body = self.stmt_or_block()?;
            StmtKind::For {
                init,
                cond,
                step,
                body,
            }
        } else if self.eat_ident("while") {
            self.expect_punct(Punct::LParen, "`(` after while")?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen, "`)` after while condition")?;
            let body = self.stmt_or_block()?;
            StmtKind::While { cond, body }
        } else if self.eat_ident("do") {
            let body = self.stmt_or_block()?;
            if !self.eat_ident("while") {
                return Err(self.err("expected `while` after do-body"));
            }
            self.expect_punct(Punct::LParen, "`(` after do..while")?;
            let cond = self.expr()?;
            self.expect_punct(Punct::RParen, "`)` after do..while condition")?;
            self.expect_punct(Punct::Semi, "`;` after do..while")?;
            StmtKind::DoWhile { body, cond }
        } else if self.eat_ident("return") {
            let e = if *self.peek() == Tok::Punct(Punct::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(Punct::Semi, "`;` after return")?;
            StmtKind::Return(e)
        } else if self.eat_ident("break") {
            self.expect_punct(Punct::Semi, "`;` after break")?;
            StmtKind::Break
        } else if self.eat_ident("continue") {
            self.expect_punct(Punct::Semi, "`;` after continue")?;
            StmtKind::Continue
        } else if self
            .peek_ident()
            .is_some_and(|s| matches!(s, "switch" | "goto" | "struct" | "union" | "typedef"))
        {
            return Err(self.err(format!(
                "`{}` is not supported by the oclsim OpenCL C subset",
                self.peek_ident().unwrap()
            )));
        } else {
            return self.decl_or_expr_stmt();
        };
        Ok(Stmt { kind, span })
    }

    /// Used both for normal statements and `for` initialisers.
    fn decl_or_expr_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        if self.peek_ident().is_some_and(|s| self.is_type_start(s)) {
            let (space, scalar, _is_const) = self.parse_base_type()?;
            let base = scalar.ok_or_else(|| self.err("cannot declare `void` variables"))?;
            let mut decls = Vec::new();
            loop {
                let is_pointer = if self.eat_punct(Punct::Star) {
                    while self.eat_ident("restrict") || self.eat_ident("const") {}
                    true
                } else {
                    false
                };
                let name = self.expect_ident()?;
                let array_len = if self.eat_punct(Punct::LBracket) {
                    let e = self.expr()?;
                    self.expect_punct(Punct::RBracket, "`]` after array length")?;
                    Some(e)
                } else {
                    None
                };
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.assign_expr()?)
                } else {
                    None
                };
                decls.push(Declarator {
                    name,
                    array_len,
                    is_pointer,
                    init,
                });
                if self.eat_punct(Punct::Semi) {
                    break;
                }
                self.expect_punct(Punct::Comma, "`,` or `;` in declaration")?;
            }
            Ok(Stmt {
                kind: StmtKind::Decl { space, base, decls },
                span,
            })
        } else {
            let e = self.expr()?;
            self.expect_punct(Punct::Semi, "`;` after expression statement")?;
            Ok(Stmt {
                kind: StmtKind::Expr(e),
                span,
            })
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            Tok::Punct(Punct::Assign) => Some(None),
            Tok::Punct(Punct::PlusAssign) => Some(Some(BinOp::Add)),
            Tok::Punct(Punct::MinusAssign) => Some(Some(BinOp::Sub)),
            Tok::Punct(Punct::StarAssign) => Some(Some(BinOp::Mul)),
            Tok::Punct(Punct::SlashAssign) => Some(Some(BinOp::Div)),
            Tok::Punct(Punct::PercentAssign) => Some(Some(BinOp::Rem)),
            Tok::Punct(Punct::AmpAssign) => Some(Some(BinOp::BitAnd)),
            Tok::Punct(Punct::PipeAssign) => Some(Some(BinOp::BitOr)),
            Tok::Punct(Punct::CaretAssign) => Some(Some(BinOp::BitXor)),
            Tok::Punct(Punct::ShlAssign) => Some(Some(BinOp::Shl)),
            Tok::Punct(Punct::ShrAssign) => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let value = self.assign_expr()?;
            Ok(Expr::Assign {
                op,
                target: Box::new(lhs),
                value: Box::new(value),
            })
        } else {
            Ok(lhs)
        }
    }

    fn ternary_expr(&mut self) -> Result<Expr> {
        let cond = self.binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let t = self.expr()?;
            self.expect_punct(Punct::Colon, "`:` in ternary expression")?;
            let f = self.ternary_expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                t: Box::new(t),
                f: Box::new(f),
            })
        } else {
            Ok(cond)
        }
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let (op, prec) = match self.peek() {
            Tok::Punct(Punct::PipePipe) => (BinOp::LogOr, 1),
            Tok::Punct(Punct::AmpAmp) => (BinOp::LogAnd, 2),
            Tok::Punct(Punct::Pipe) => (BinOp::BitOr, 3),
            Tok::Punct(Punct::Caret) => (BinOp::BitXor, 4),
            Tok::Punct(Punct::Amp) => (BinOp::BitAnd, 5),
            Tok::Punct(Punct::EqEq) => (BinOp::Eq, 6),
            Tok::Punct(Punct::Ne) => (BinOp::Ne, 6),
            Tok::Punct(Punct::Lt) => (BinOp::Lt, 7),
            Tok::Punct(Punct::Gt) => (BinOp::Gt, 7),
            Tok::Punct(Punct::Le) => (BinOp::Le, 7),
            Tok::Punct(Punct::Ge) => (BinOp::Ge, 7),
            Tok::Punct(Punct::Shl) => (BinOp::Shl, 8),
            Tok::Punct(Punct::Shr) => (BinOp::Shr, 8),
            Tok::Punct(Punct::Plus) => (BinOp::Add, 9),
            Tok::Punct(Punct::Minus) => (BinOp::Sub, 9),
            Tok::Punct(Punct::Star) => (BinOp::Mul, 10),
            Tok::Punct(Punct::Slash) => (BinOp::Div, 10),
            Tok::Punct(Punct::Percent) => (BinOp::Rem, 10),
            _ => return None,
        };
        Some((op, prec))
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Bin {
                op,
                l: Box::new(lhs),
                r: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let op = match self.peek() {
            Tok::Punct(Punct::Minus) => Some(UnOp::Neg),
            Tok::Punct(Punct::Plus) => Some(UnOp::Plus),
            Tok::Punct(Punct::Bang) => Some(UnOp::Not),
            Tok::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            Tok::Punct(Punct::PlusPlus) => Some(UnOp::PreInc),
            Tok::Punct(Punct::MinusMinus) => Some(UnOp::PreDec),
            Tok::Punct(Punct::Star) => Some(UnOp::Deref),
            Tok::Punct(Punct::Amp) => Some(UnOp::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary_expr()?;
            return Ok(Expr::Un { op, e: Box::new(e) });
        }
        // cast: `(` followed by a type-start keyword
        if *self.peek() == Tok::Punct(Punct::LParen) {
            if let Tok::Ident(s) = self.peek_at(1) {
                if self.is_type_start(s) {
                    self.bump(); // (
                    let (ty, _) = self.parse_full_type()?;
                    self.expect_punct(Punct::RParen, "`)` after cast type")?;
                    let e = self.unary_expr()?;
                    return Ok(Expr::Cast { ty, e: Box::new(e) });
                }
            }
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat_punct(Punct::LBracket) {
                let index = self.expr()?;
                self.expect_punct(Punct::RBracket, "`]` after index")?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                };
            } else if self.eat_punct(Punct::PlusPlus) {
                e = Expr::Post {
                    op: PostOp::Inc,
                    e: Box::new(e),
                };
            } else if self.eat_punct(Punct::MinusMinus) {
                e = Expr::Post {
                    op: PostOp::Dec,
                    e: Box::new(e),
                };
            } else if *self.peek() == Tok::Punct(Punct::Dot) {
                return Err(self.err("member access (structs/vector components) is not supported"));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.bump() {
            Tok::IntLit {
                value,
                unsigned,
                long,
            } => Ok(Expr::IntLit {
                value,
                unsigned,
                long,
            }),
            Tok::FloatLit { value, f32 } => Ok(Expr::FloatLit { value, f32 }),
            Tok::Ident(name) => {
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma, "`,` or `)` in call arguments")?;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Tok::Punct(Punct::LParen) => {
                let e = self.expr()?;
                self.expect_punct(Punct::RParen, "`)` closing parenthesised expression")?;
                Ok(e)
            }
            other => Err(Error::BuildFailure(format!(
                "parser, line {span}: unexpected token {other:?} in expression"
            ))),
        }
    }
}

fn space_or_global(space: AddrSpace) -> AddrSpace {
    // an unqualified pointer (only legal for helper-function params in real
    // OpenCL 1.x when it aliases a global pointer) defaults to global
    if space == AddrSpace::Private {
        AddrSpace::Global
    } else {
        space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> TranslationUnit {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn minimal_kernel() {
        let tu = parse_ok("__kernel void f(__global float* a) { a[0] = 1.0f; }");
        assert_eq!(tu.funcs.len(), 1);
        let f = &tu.funcs[0];
        assert!(f.is_kernel);
        assert_eq!(f.name, "f");
        assert_eq!(f.ret, ClType::Void);
        assert_eq!(
            f.params[0].ty,
            ClType::Ptr(AddrSpace::Global, ScalarType::F32)
        );
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn saxpy_shape() {
        let tu = parse_ok(
            "__kernel void saxpy(__global double* y, __global const double* x, double a) {
                 int i = get_global_id(0);
                 y[i] = a * x[i] + y[i];
             }",
        );
        let f = &tu.funcs[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[2].ty, ClType::Scalar(ScalarType::F64));
        assert!(matches!(f.body[0].kind, StmtKind::Decl { .. }));
        assert!(matches!(
            f.body[1].kind,
            StmtKind::Expr(Expr::Assign { .. })
        ));
    }

    #[test]
    fn precedence() {
        let tu = parse_ok("void f() { int x = 1 + 2 * 3; }");
        let StmtKind::Decl { decls, .. } = &tu.funcs[0].body[0].kind else {
            panic!()
        };
        let Some(Expr::Bin {
            op: BinOp::Add, r, ..
        }) = &decls[0].init
        else {
            panic!("expected + at top: {:?}", decls[0].init)
        };
        assert!(matches!(**r, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn comparison_binds_looser_than_shift() {
        let tu = parse_ok("void f(int a) { if (a << 1 < 8) { a = 0; } }");
        let StmtKind::If { cond, .. } = &tu.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(cond, Expr::Bin { op: BinOp::Lt, .. }));
    }

    #[test]
    fn assignment_right_associative() {
        let tu = parse_ok("void f(int a, int b) { a = b = 3; }");
        let StmtKind::Expr(Expr::Assign { value, .. }) = &tu.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(**value, Expr::Assign { .. }));
    }

    #[test]
    fn for_loop_with_decl_init() {
        let tu =
            parse_ok("void f(__global int* a, int n) { for (int i = 0; i < n; i++) a[i] = i; }");
        let StmtKind::For {
            init,
            cond,
            step,
            body,
        } = &tu.funcs[0].body[0].kind
        else {
            panic!()
        };
        assert!(matches!(
            init.as_deref().unwrap().kind,
            StmtKind::Decl { .. }
        ));
        assert!(cond.is_some() && step.is_some());
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn for_loop_all_clauses_empty() {
        let tu = parse_ok("void f() { for (;;) break; }");
        let StmtKind::For {
            init, cond, step, ..
        } = &tu.funcs[0].body[0].kind
        else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn local_array_declaration() {
        let tu = parse_ok("__kernel void f() { __local float sdata[64]; sdata[0] = 0.0f; }");
        let StmtKind::Decl { space, base, decls } = &tu.funcs[0].body[0].kind else {
            panic!()
        };
        assert_eq!(*space, AddrSpace::Local);
        assert_eq!(*base, ScalarType::F32);
        assert!(decls[0].array_len.is_some());
    }

    #[test]
    fn multi_declarator() {
        let tu = parse_ok("void f() { int i = 0, j, k = 2; }");
        let StmtKind::Decl { decls, .. } = &tu.funcs[0].body[0].kind else {
            panic!()
        };
        assert_eq!(decls.len(), 3);
        assert!(decls[0].init.is_some() && decls[1].init.is_none() && decls[2].init.is_some());
    }

    #[test]
    fn cast_vs_parenthesised() {
        let tu = parse_ok("void f(float x) { int a = (int)x; float b = (x) + 1.0f; }");
        let StmtKind::Decl { decls, .. } = &tu.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(
            decls[0].init,
            Some(Expr::Cast {
                ty: ClType::Scalar(ScalarType::I32),
                ..
            })
        ));
        let StmtKind::Decl { decls, .. } = &tu.funcs[0].body[1].kind else {
            panic!()
        };
        assert!(matches!(
            decls[0].init,
            Some(Expr::Bin { op: BinOp::Add, .. })
        ));
    }

    #[test]
    fn ternary_and_logical() {
        parse_ok("void f(int a, int b) { int c = a > 0 && b < 4 ? a : b; }");
    }

    #[test]
    fn do_while_and_while() {
        parse_ok("void f(int n) { int i = 0; while (i < n) i++; do { i--; } while (i > 0); }");
    }

    #[test]
    fn unsigned_multiword_types() {
        let tu = parse_ok("void f(unsigned int a, unsigned long b, unsigned c) { }");
        assert_eq!(tu.funcs[0].params[0].ty, ClType::Scalar(ScalarType::U32));
        assert_eq!(tu.funcs[0].params[1].ty, ClType::Scalar(ScalarType::U64));
        assert_eq!(tu.funcs[0].params[2].ty, ClType::Scalar(ScalarType::U32));
    }

    #[test]
    fn helper_function_and_two_kernels() {
        let tu = parse_ok(
            "float sq(float x) { return x * x; }
             __kernel void k1(__global float* a) { a[0] = sq(2.0f); }
             kernel void k2(__global float* a) { a[1] = 1.0f; }",
        );
        assert_eq!(tu.funcs.len(), 3);
        assert!(!tu.funcs[0].is_kernel);
        assert!(tu.funcs[1].is_kernel && tu.funcs[2].is_kernel);
    }

    #[test]
    fn pointer_arithmetic_and_deref() {
        parse_ok("void f(__global float* p, int i) { *(p + i) = *p; }");
    }

    #[test]
    fn unsupported_constructs_diagnosed() {
        assert!(parse("void f() { switch (1) {} }").is_err());
        assert!(parse("struct S { int a; };").is_err());
        assert!(parse("void f(float** p) {}").is_err());
        assert!(parse("void f(float4 v) {}").is_err());
        assert!(parse("void f() { v.x = 1; }").is_err());
    }

    #[test]
    fn error_reports_line() {
        let err = parse("void f() {\n int a = ;\n}").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn error_reports_column() {
        // the offending `;` sits at line 2, column 10
        let err = parse("void f() {\n int a = ;\n}").unwrap_err();
        assert!(err.to_string().contains("line 2:10"), "{err}");
    }

    #[test]
    fn statement_spans_recorded() {
        let tu = parse_ok("void f() {\n    int a = 0;\n}");
        assert_eq!(tu.funcs[0].span, Span::new(1, 1));
        assert_eq!(tu.funcs[0].body[0].span, Span::new(2, 5));
    }

    #[test]
    fn barrier_call_statement() {
        parse_ok("__kernel void f() { barrier(CLK_LOCAL_MEM_FENCE); }");
        parse_ok("__kernel void f() { barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE); }");
    }

    #[test]
    fn compound_assignment_targets() {
        parse_ok("void f(__global float* a, int i) { a[i] += 1.0f; a[i + 1] *= 2.0f; }");
    }
}
