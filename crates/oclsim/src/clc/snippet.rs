//! Shared source-annotation renderer.
//!
//! One gutter/caret format serves every consumer that points at source
//! lines — the kernel sanitizer's diagnostics ([`super::analysis`]) and
//! the per-line profile annotator ([`crate::prof::annotate`]) — so a lint
//! and a hot-line report about the same statement look the same on screen.

/// Width of the line-number gutter for `max_line`.
pub fn gutter_width(max_line: usize) -> usize {
    max_line.max(1).to_string().len()
}

/// One line of source with a `NN | text` gutter.
pub fn gutter_line(line: usize, width: usize, text: &str) -> String {
    format!("{line:>width$} | {text}")
}

/// A gutter-aligned continuation row (no line number), used for carets
/// and labels under a source line.
pub fn gutter_pad(width: usize, text: &str) -> String {
    format!("{:>width$} | {text}", "")
}

/// The 1-based line `line` of `source`, or `None` when out of range.
pub fn source_line(source: &str, line: usize) -> Option<&str> {
    line.checked_sub(1).and_then(|i| source.lines().nth(i))
}

/// Render a caret snippet pointing at `line`:`col` of `source`:
///
/// ```text
///  7 |     dst[x * h + y] = src[y * w + x];
///    |     ^ uncoalesced access
/// ```
///
/// `col` is 1-based; 0 means "column unknown" and anchors the caret at
/// the first non-blank column. Lines outside the source render the label
/// without a snippet.
pub fn render_snippet(source: &str, line: usize, col: usize, label: &str) -> String {
    let Some(text) = source_line(source, line) else {
        return format!("(line {line} not in source): {label}");
    };
    let width = gutter_width(line);
    let caret_col = if col > 0 {
        col - 1
    } else {
        text.len() - text.trim_start().len()
    };
    let mut out = gutter_line(line, width, text);
    out.push('\n');
    out.push_str(&gutter_pad(
        width,
        &format!("{}^ {label}", " ".repeat(caret_col.min(text.len()))),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_points_at_column() {
        let src = "int a;\n  b = a + 1;\nint c;\n";
        let s = render_snippet(src, 2, 3, "write here");
        assert_eq!(s, "2 |   b = a + 1;\n  |   ^ write here");
    }

    #[test]
    fn unknown_column_anchors_at_first_nonblank() {
        let src = "int a;\n    b = 1;\n";
        let s = render_snippet(src, 2, 0, "lint");
        assert!(s.contains("2 |     b = 1;"));
        assert!(s.ends_with("  |     ^ lint"));
    }

    #[test]
    fn out_of_range_line_degrades_gracefully() {
        let s = render_snippet("int a;\n", 99, 1, "gone");
        assert_eq!(s, "(line 99 not in source): gone");
    }

    #[test]
    fn gutter_width_tracks_digits() {
        assert_eq!(gutter_width(7), 1);
        assert_eq!(gutter_width(42), 2);
        assert_eq!(gutter_width(1000), 4);
    }
}
