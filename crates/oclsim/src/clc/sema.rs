//! Semantic analysis: resolves names, checks and propagates types, applies
//! C's usual arithmetic conversions, lowers the AST to the typed executable
//! IR, lays out local/private array allocations, and computes per-parameter
//! read/write summaries (used by launch validation and surfaced to clients
//! like HPL's transfer minimiser).

use std::collections::HashMap;

use crate::clc::ast::{self, AddrSpace, BinOp, ClType, Expr, PostOp, Span, Stmt, StmtKind, UnOp};
use crate::error::{Error, Result};
use crate::exec::ir::{
    ArrayAlloc, BOp, Builtin, COp, Ex, FuncId, FuncIr, Module, ParamInfo, ParamKind, SlotId,
    SlotKind, St, StKind, UOp,
};
use crate::types::{ScalarType, Value};

/// Analyse a parsed translation unit and produce an executable [`Module`].
pub fn analyze(tu: &ast::TranslationUnit) -> Result<Module> {
    let mut sema_span = crate::telemetry::span("clc", "sema");
    sema_span.note("funcs", tu.funcs.len());
    // pass 1: collect signatures so definition order does not matter
    let mut sigs: HashMap<String, FuncId> = HashMap::new();
    for (i, f) in tu.funcs.iter().enumerate() {
        if sigs.insert(f.name.clone(), i).is_some() {
            return Err(err(f.span, format!("duplicate function `{}`", f.name)));
        }
        if builtin_by_name(&f.name).is_some() || is_reserved(&f.name) {
            return Err(err(
                f.span,
                format!("`{}` shadows a built-in function", f.name),
            ));
        }
    }

    let mut module = Module::default();
    {
        let _lower_span = crate::telemetry::span("clc", "lower");
        for f in &tu.funcs {
            let fir = FuncSema::new(tu, &sigs).lower_function(f)?;
            if f.is_kernel {
                module.kernels.insert(f.name.clone(), module.funcs.len());
            }
            module.funcs.push(fir);
        }
    }
    propagate_param_effects(&mut module);
    propagate_barriers_and_fp64(&mut module);
    Ok(module)
}

fn err(line: Span, msg: impl Into<String>) -> Error {
    Error::BuildFailure(format!("sema, line {line}: {}", msg.into()))
}

fn is_reserved(name: &str) -> bool {
    matches!(
        name,
        "barrier" | "mem_fence" | "read_mem_fence" | "write_mem_fence"
    )
}

/// A lowered pointer-valued expression with its static address-space info.
struct PtrEx {
    ex: Ex,
    space: AddrSpace,
    elem: ScalarType,
}

/// What a name refers to.
#[derive(Clone)]
enum Binding {
    Slot(SlotId),
    LocalArray { alloc: usize, elem: ScalarType },
    PrivArray { alloc: usize, elem: ScalarType },
    Const(Value),
}

struct FuncSema<'a> {
    tu: &'a ast::TranslationUnit,
    sigs: &'a HashMap<String, FuncId>,
    scopes: Vec<HashMap<String, Binding>>,
    slots: Vec<SlotKind>,
    local_allocs: Vec<ArrayAlloc>,
    priv_allocs: Vec<ArrayAlloc>,
    is_kernel: bool,
    ret: Option<ScalarType>,
    loop_depth: usize,
}

impl<'a> FuncSema<'a> {
    fn new(tu: &'a ast::TranslationUnit, sigs: &'a HashMap<String, FuncId>) -> Self {
        let mut s = FuncSema {
            tu,
            sigs,
            scopes: vec![HashMap::new()],
            slots: Vec::new(),
            local_allocs: Vec::new(),
            priv_allocs: Vec::new(),
            is_kernel: false,
            ret: None,
            loop_depth: 0,
        };
        // predefined constants
        s.define_const("CLK_LOCAL_MEM_FENCE", Value::U32(1));
        s.define_const("CLK_GLOBAL_MEM_FENCE", Value::U32(2));
        s.define_const("M_PI", Value::F64(std::f64::consts::PI));
        s.define_const("M_PI_F", Value::F32(std::f32::consts::PI));
        s.define_const("M_E", Value::F64(std::f64::consts::E));
        s.define_const("MAXFLOAT", Value::F32(f32::MAX));
        s.define_const("FLT_EPSILON", Value::F32(f32::EPSILON));
        s.define_const("INT_MAX", Value::I32(i32::MAX));
        s.define_const("INT_MIN", Value::I32(i32::MIN));
        s
    }

    fn define_const(&mut self, name: &str, v: Value) {
        self.scopes[0].insert(name.to_string(), Binding::Const(v));
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn bind(&mut self, line: Span, name: &str, b: Binding) -> Result<()> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_string(), b).is_some() {
            return Err(err(line, format!("`{name}` redeclared in the same scope")));
        }
        Ok(())
    }

    fn new_slot(&mut self, kind: SlotKind) -> SlotId {
        self.slots.push(kind);
        self.slots.len() - 1
    }

    // ---- function --------------------------------------------------------

    fn lower_function(mut self, f: &ast::FuncDef) -> Result<FuncIr> {
        self.is_kernel = f.is_kernel;
        self.ret = match f.ret {
            ClType::Void => None,
            ClType::Scalar(t) => Some(t),
            ClType::Ptr(..) => {
                return Err(err(f.span, "pointer return types are not supported"));
            }
        };
        if f.is_kernel && self.ret.is_some() {
            return Err(err(f.span, "kernels must return void"));
        }

        let mut params = Vec::new();
        self.scopes.push(HashMap::new());
        for p in &f.params {
            let (kind, slot_kind) = match p.ty {
                ClType::Scalar(t) => (ParamKind::Scalar(t), SlotKind::Scalar(t)),
                ClType::Ptr(AddrSpace::Global, t) => (
                    ParamKind::GlobalPtr { elem: t },
                    SlotKind::Ptr {
                        space: AddrSpace::Global,
                        elem: t,
                    },
                ),
                ClType::Ptr(AddrSpace::Constant, t) => (
                    ParamKind::ConstantPtr { elem: t },
                    SlotKind::Ptr {
                        space: AddrSpace::Constant,
                        elem: t,
                    },
                ),
                ClType::Ptr(AddrSpace::Local, t) => (
                    ParamKind::LocalPtr { elem: t },
                    SlotKind::Ptr {
                        space: AddrSpace::Local,
                        elem: t,
                    },
                ),
                ClType::Ptr(AddrSpace::Private, _) => {
                    return Err(err(f.span, "private-pointer parameters are not supported"));
                }
                ClType::Void => return Err(err(f.span, "void parameter")),
            };
            if f.is_kernel && matches!(kind, ParamKind::LocalPtr { .. }) {
                // legal OpenCL (size set via clSetKernelArg), but the oclsim
                // host API does not expose local args yet
                return Err(err(
                    f.span,
                    "__local pointer kernel parameters are not supported; declare the \
                     array inside the kernel instead",
                ));
            }
            let slot = self.new_slot(slot_kind);
            self.bind(f.span, &p.name, Binding::Slot(slot))?;
            params.push(ParamInfo {
                name: p.name.clone(),
                kind,
                reads: false,
                writes: false,
            });
        }

        let body = self.lower_block(&f.body)?;
        self.scopes.pop();

        let mut fir = FuncIr {
            name: f.name.clone(),
            is_kernel: f.is_kernel,
            ret: self.ret,
            params,
            slots: self.slots,
            local_allocs: self.local_allocs,
            priv_allocs: self.priv_allocs,
            body,
            uses_fp64: false,
            has_barrier: false,
        };
        compute_direct_effects(&mut fir);
        Ok(fir)
    }

    // ---- statements ------------------------------------------------------

    fn lower_block(&mut self, stmts: &[Stmt]) -> Result<Vec<St>> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for s in stmts {
            self.lower_stmt(s, &mut out)?;
        }
        self.scopes.pop();
        Ok(out)
    }

    fn lower_stmt(&mut self, s: &Stmt, out: &mut Vec<St>) -> Result<()> {
        let line = s.span;
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Block(inner) => {
                let blk = self.lower_block(inner)?;
                out.extend(blk);
            }
            StmtKind::Decl { space, base, decls } => {
                for d in decls {
                    self.lower_declarator(line, *space, *base, d, out)?;
                }
            }
            StmtKind::Expr(e) => self.lower_expr_stmt(line, e, out)?,
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.lower_condition(line, cond)?;
                let t = self.lower_block(then_blk)?;
                let e = self.lower_block(else_blk)?;
                out.push(St::new(
                    StKind::If {
                        cond: c,
                        then_blk: t,
                        else_blk: e,
                    },
                    line,
                ));
            }
            StmtKind::While { cond, body } => {
                let c = self.lower_condition(line, cond)?;
                self.loop_depth += 1;
                let b = self.lower_block(body)?;
                self.loop_depth -= 1;
                out.push(St::new(
                    StKind::Loop {
                        cond: c,
                        body: b,
                        step: vec![],
                        check_first: true,
                    },
                    line,
                ));
            }
            StmtKind::DoWhile { body, cond } => {
                self.loop_depth += 1;
                let b = self.lower_block(body)?;
                self.loop_depth -= 1;
                let c = self.lower_condition(line, cond)?;
                out.push(St::new(
                    StKind::Loop {
                        cond: c,
                        body: b,
                        step: vec![],
                        check_first: false,
                    },
                    line,
                ));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                // the init declaration scopes over cond/step/body
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init, out)?;
                }
                let c = match cond {
                    Some(c) => self.lower_condition(line, c)?,
                    None => Ex::Const {
                        bits: 1,
                        ty: ScalarType::Bool,
                    },
                };
                self.loop_depth += 1;
                let b = self.lower_block(body)?;
                self.loop_depth -= 1;
                let mut st = Vec::new();
                if let Some(step) = step {
                    self.lower_expr_stmt(line, step, &mut st)?;
                }
                self.scopes.pop();
                out.push(St::new(
                    StKind::Loop {
                        cond: c,
                        body: b,
                        step: st,
                        check_first: true,
                    },
                    line,
                ));
            }
            StmtKind::Return(e) => {
                let v = match (e, self.ret) {
                    (None, None) => None,
                    (Some(e), Some(rt)) => {
                        let v = self.lower_value(line, e)?;
                        Some(self.coerce(v, rt))
                    }
                    (Some(_), None) => {
                        return Err(err(line, "void function returns a value"));
                    }
                    (None, Some(_)) => {
                        return Err(err(line, "non-void function returns without a value"));
                    }
                };
                out.push(St::new(StKind::Return(v), line));
            }
            StmtKind::Break => {
                if self.loop_depth == 0 {
                    return Err(err(line, "`break` outside of a loop"));
                }
                out.push(St::new(StKind::Break, line));
            }
            StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(err(line, "`continue` outside of a loop"));
                }
                out.push(St::new(StKind::Continue, line));
            }
        }
        Ok(())
    }

    fn lower_declarator(
        &mut self,
        line: Span,
        space: AddrSpace,
        base: ScalarType,
        d: &ast::Declarator,
        out: &mut Vec<St>,
    ) -> Result<()> {
        if let Some(len_expr) = &d.array_len {
            // array declaration
            if d.is_pointer {
                return Err(err(line, "arrays of pointers are not supported"));
            }
            if d.init.is_some() {
                return Err(err(line, "array initialisers are not supported"));
            }
            let len = self.const_eval_usize(line, len_expr)?;
            if len == 0 {
                return Err(err(line, "zero-length arrays are not allowed"));
            }
            match space {
                AddrSpace::Local => {
                    if !self.is_kernel {
                        return Err(err(
                            line,
                            "__local variables may only be declared in kernel functions",
                        ));
                    }
                    let byte_offset = align_to(
                        self.local_allocs
                            .iter()
                            .map(|a| a.byte_offset + a.byte_len())
                            .max()
                            .unwrap_or(0),
                        base.size(),
                    );
                    let alloc = self.local_allocs.len();
                    self.local_allocs.push(ArrayAlloc {
                        elem: base,
                        len,
                        byte_offset,
                    });
                    self.bind(line, &d.name, Binding::LocalArray { alloc, elem: base })?;
                }
                AddrSpace::Private => {
                    if !self.is_kernel {
                        return Err(err(
                            line,
                            "private arrays in helper functions are not supported",
                        ));
                    }
                    let byte_offset = align_to(
                        self.priv_allocs
                            .iter()
                            .map(|a| a.byte_offset + a.byte_len())
                            .max()
                            .unwrap_or(0),
                        base.size(),
                    );
                    let alloc = self.priv_allocs.len();
                    self.priv_allocs.push(ArrayAlloc {
                        elem: base,
                        len,
                        byte_offset,
                    });
                    self.bind(line, &d.name, Binding::PrivArray { alloc, elem: base })?;
                }
                AddrSpace::Global | AddrSpace::Constant => {
                    return Err(err(
                        line,
                        "global/constant arrays cannot be declared in kernels",
                    ));
                }
            }
            return Ok(());
        }

        if d.is_pointer {
            // pointer variable: `__global float* p = x;`
            let init = d
                .init
                .as_ref()
                .ok_or_else(|| err(line, "pointer variables must be initialised"))?;
            let p = self.lower_pointer(line, init)?;
            if p.elem != base {
                return Err(err(
                    line,
                    format!(
                        "pointer initialiser has element type {}, expected {}",
                        p.elem.cl_name(),
                        base.cl_name()
                    ),
                ));
            }
            let slot = self.new_slot(SlotKind::Ptr {
                space: p.space,
                elem: p.elem,
            });
            self.bind(line, &d.name, Binding::Slot(slot))?;
            out.push(St::new(StKind::SetSlot { slot, value: p.ex }, line));
            return Ok(());
        }

        if space == AddrSpace::Local {
            return Err(err(
                line,
                "__local scalars are not supported; use a 1-element array",
            ));
        }
        let slot = self.new_slot(SlotKind::Scalar(base));
        self.bind(line, &d.name, Binding::Slot(slot))?;
        if let Some(init) = &d.init {
            let v = self.lower_value(line, init)?;
            out.push(St::new(
                StKind::SetSlot {
                    slot,
                    value: self.coerce(v, base),
                },
                line,
            ));
        }
        Ok(())
    }

    /// Expressions in statement position: assignments, inc/dec, and calls.
    fn lower_expr_stmt(&mut self, line: Span, e: &Expr, out: &mut Vec<St>) -> Result<()> {
        match e {
            Expr::Assign { op, target, value } => {
                self.lower_assignment(line, *op, target, value, out)
            }
            Expr::Un {
                op: UnOp::PreInc,
                e,
            }
            | Expr::Post { op: PostOp::Inc, e } => self.lower_incdec(line, e, BinOp::Add, out),
            Expr::Un {
                op: UnOp::PreDec,
                e,
            }
            | Expr::Post { op: PostOp::Dec, e } => self.lower_incdec(line, e, BinOp::Sub, out),
            Expr::Call { name, args } if name == "barrier" => {
                let flags = if args.is_empty() {
                    1 // bare barrier(): local fence
                } else if args.len() == 1 {
                    self.const_eval_u64(line, &args[0])?
                } else {
                    return Err(err(line, "barrier takes at most one flags argument"));
                };
                out.push(St::new(
                    StKind::Barrier {
                        local_fence: flags & 1 != 0,
                        global_fence: flags & 2 != 0,
                    },
                    line,
                ));
                Ok(())
            }
            Expr::Call { name, .. }
                if matches!(
                    name.as_str(),
                    "mem_fence" | "read_mem_fence" | "write_mem_fence"
                ) =>
            {
                // lock-step execution makes intra-group fences no-ops
                Ok(())
            }
            Expr::Call { .. } => {
                let v = self.lower_value(line, e)?;
                out.push(St::new(StKind::ExprSt(v), line));
                Ok(())
            }
            _ => Err(err(
                line,
                "only assignments, increments/decrements and calls may be used as statements",
            )),
        }
    }

    fn lower_incdec(
        &mut self,
        line: Span,
        target: &Expr,
        op: BinOp,
        out: &mut Vec<St>,
    ) -> Result<()> {
        let one = Expr::IntLit {
            value: 1,
            unsigned: false,
            long: false,
        };
        self.lower_assignment(line, Some(op), target, &one, out)
    }

    fn lower_assignment(
        &mut self,
        line: Span,
        op: Option<BinOp>,
        target: &Expr,
        value: &Expr,
        out: &mut Vec<St>,
    ) -> Result<()> {
        match target {
            Expr::Ident(name) => {
                let binding = self
                    .lookup(name)
                    .ok_or_else(|| err(line, format!("use of undeclared identifier `{name}`")))?
                    .clone();
                let Binding::Slot(slot) = binding else {
                    return Err(err(line, format!("`{name}` is not assignable")));
                };
                match self.slots[slot] {
                    SlotKind::Scalar(ty) => {
                        let rhs =
                            self.build_assigned_value(line, op, Ex::Slot { slot, ty }, ty, value)?;
                        out.push(St::new(StKind::SetSlot { slot, value: rhs }, line));
                    }
                    SlotKind::Ptr { space, elem } => {
                        if op.is_some() {
                            return Err(err(
                                line,
                                "compound assignment to pointers is not supported",
                            ));
                        }
                        let p = self.lower_pointer(line, value)?;
                        if p.space != space || p.elem != elem {
                            return Err(err(line, "pointer assignment with mismatched type"));
                        }
                        out.push(St::new(StKind::SetSlot { slot, value: p.ex }, line));
                    }
                }
                Ok(())
            }
            Expr::Index { .. }
            | Expr::Un {
                op: UnOp::Deref, ..
            } => {
                let (addr, space, elem) = self.lower_lvalue_addr(line, target)?;
                let cur = Ex::Load {
                    addr: Box::new(addr.clone()),
                    elem,
                    space,
                };
                if space == AddrSpace::Constant {
                    return Err(err(line, "cannot write through a __constant pointer"));
                }
                let rhs = self.build_assigned_value(line, op, cur, elem, value)?;
                out.push(St::new(
                    StKind::Store {
                        addr,
                        elem,
                        space,
                        value: rhs,
                    },
                    line,
                ));
                Ok(())
            }
            _ => Err(err(line, "invalid assignment target")),
        }
    }

    /// Build the stored value for `target op= value` / `target = value`.
    fn build_assigned_value(
        &mut self,
        line: Span,
        op: Option<BinOp>,
        current: Ex,
        target_ty: ScalarType,
        value: &Expr,
    ) -> Result<Ex> {
        let rhs = self.lower_value(line, value)?;
        match op {
            None => Ok(self.coerce(rhs, target_ty)),
            Some(op) => {
                let combined = self.build_binary(line, op, current, rhs)?;
                Ok(self.coerce(combined, target_ty))
            }
        }
    }

    // ---- expressions -----------------------------------------------------

    /// Lower an expression that must produce a scalar value.
    fn lower_value(&mut self, line: Span, e: &Expr) -> Result<Ex> {
        match e {
            Expr::IntLit {
                value,
                unsigned,
                long,
            } => {
                let ty = match (unsigned, long) {
                    (false, false) => {
                        if *value <= i32::MAX as u64 {
                            ScalarType::I32
                        } else if *value <= i64::MAX as u64 {
                            ScalarType::I64
                        } else {
                            ScalarType::U64
                        }
                    }
                    (true, false) => {
                        if *value <= u32::MAX as u64 {
                            ScalarType::U32
                        } else {
                            ScalarType::U64
                        }
                    }
                    (false, true) => ScalarType::I64,
                    (true, true) => ScalarType::U64,
                };
                Ok(Ex::Const { bits: *value, ty })
            }
            Expr::FloatLit { value, f32 } => {
                if *f32 {
                    Ok(Ex::Const {
                        bits: (*value as f32).to_bits() as u64,
                        ty: ScalarType::F32,
                    })
                } else {
                    Ok(Ex::Const {
                        bits: value.to_bits(),
                        ty: ScalarType::F64,
                    })
                }
            }
            Expr::Ident(name) => {
                let b = self
                    .lookup(name)
                    .ok_or_else(|| err(line, format!("use of undeclared identifier `{name}`")))?
                    .clone();
                match b {
                    Binding::Slot(slot) => match self.slots[slot] {
                        SlotKind::Scalar(ty) => Ok(Ex::Slot { slot, ty }),
                        SlotKind::Ptr { .. } => Err(err(
                            line,
                            format!("pointer `{name}` used as a scalar value"),
                        )),
                    },
                    Binding::Const(v) => Ok(Ex::Const {
                        bits: v.to_bits(),
                        ty: v.scalar_type(),
                    }),
                    Binding::LocalArray { .. } | Binding::PrivArray { .. } => {
                        Err(err(line, format!("array `{name}` used as a scalar value")))
                    }
                }
            }
            Expr::Bin { op, l, r } => {
                if op.is_logical() {
                    let lc = self.lower_condition(line, l)?;
                    let rc = self.lower_condition(line, r)?;
                    return Ok(match op {
                        BinOp::LogAnd => Ex::LogAnd {
                            l: Box::new(lc),
                            r: Box::new(rc),
                        },
                        BinOp::LogOr => Ex::LogOr {
                            l: Box::new(lc),
                            r: Box::new(rc),
                        },
                        _ => unreachable!(),
                    });
                }
                let le = self.lower_value(line, l)?;
                let re = self.lower_value(line, r)?;
                self.build_binary(line, *op, le, re)
            }
            Expr::Un { op, e: inner } => match op {
                UnOp::Plus => self.lower_value(line, inner),
                UnOp::Neg => {
                    let v = self.lower_value(line, e_unwrap(inner));
                    let v = v?;
                    let ty = v.ty().integer_promote();
                    Ok(Ex::Un {
                        op: UOp::Neg,
                        ty,
                        e: Box::new(self.coerce(v, ty)),
                    })
                }
                UnOp::Not => {
                    let c = self.lower_condition(line, inner)?;
                    Ok(Ex::Un {
                        op: UOp::Not,
                        ty: ScalarType::Bool,
                        e: Box::new(c),
                    })
                }
                UnOp::BitNot => {
                    let v = self.lower_value(line, inner)?;
                    let ty = v.ty().integer_promote();
                    if ty.is_float() {
                        return Err(err(line, "`~` applied to a floating-point value"));
                    }
                    Ok(Ex::Un {
                        op: UOp::BitNot,
                        ty,
                        e: Box::new(self.coerce(v, ty)),
                    })
                }
                UnOp::Deref => {
                    let p = self.lower_pointer(line, inner)?;
                    Ok(Ex::Load {
                        addr: Box::new(p.ex),
                        elem: p.elem,
                        space: p.space,
                    })
                }
                UnOp::AddrOf => Err(err(
                    line,
                    "`&` is only supported directly in call arguments",
                )),
                UnOp::PreInc | UnOp::PreDec => Err(err(
                    line,
                    "increment/decrement is only supported in statement position",
                )),
            },
            Expr::Post { .. } => Err(err(
                line,
                "increment/decrement is only supported in statement position",
            )),
            Expr::Assign { .. } => Err(err(
                line,
                "assignment is only supported in statement position",
            )),
            Expr::Ternary { cond, t, f } => {
                let c = self.lower_condition(line, cond)?;
                let tv = self.lower_value(line, t)?;
                let fv = self.lower_value(line, f)?;
                let ty = tv.ty().promote(fv.ty());
                Ok(Ex::Select {
                    cond: Box::new(c),
                    t: Box::new(self.coerce(tv, ty)),
                    f: Box::new(self.coerce(fv, ty)),
                    ty,
                })
            }
            Expr::Index { .. } => {
                let (addr, space, elem) = self.lower_lvalue_addr(line, e)?;
                Ok(Ex::Load {
                    addr: Box::new(addr),
                    elem,
                    space,
                })
            }
            Expr::Cast { ty, e: inner } => {
                let to = match ty {
                    ClType::Scalar(t) => *t,
                    _ => return Err(err(line, "only scalar casts are supported")),
                };
                let v = self.lower_value(line, inner)?;
                Ok(self.coerce(v, to))
            }
            Expr::Call { name, args } => self.lower_call(line, name, args),
        }
    }

    /// Lower an expression used as a branch/loop condition to a Bool value.
    fn lower_condition(&mut self, line: Span, e: &Expr) -> Result<Ex> {
        let v = self.lower_value(line, e)?;
        Ok(self.to_bool(v))
    }

    fn to_bool(&self, v: Ex) -> Ex {
        if v.ty() == ScalarType::Bool {
            return v;
        }
        let ty = v.ty();
        let zero = Ex::Const { bits: 0, ty };
        Ex::Cmp {
            op: COp::Ne,
            ty,
            l: Box::new(v),
            r: Box::new(zero),
        }
    }

    /// Insert a Cast node if needed.
    fn coerce(&self, v: Ex, to: ScalarType) -> Ex {
        let from = v.ty();
        if from == to {
            return v;
        }
        // fold literal casts for cleaner IR and cheaper execution
        if let Ex::Const { bits, ty } = &v {
            if let Some(folded) = fold_cast(*bits, *ty, to) {
                return Ex::Const {
                    bits: folded,
                    ty: to,
                };
            }
        }
        Ex::Cast {
            from,
            to,
            e: Box::new(v),
        }
    }

    fn build_binary(&mut self, line: Span, op: BinOp, l: Ex, r: Ex) -> Result<Ex> {
        if op.is_comparison() {
            let ty = l.ty().promote(r.ty());
            let (l, r) = (self.coerce(l, ty), self.coerce(r, ty));
            let cop = match op {
                BinOp::Lt => COp::Lt,
                BinOp::Gt => COp::Gt,
                BinOp::Le => COp::Le,
                BinOp::Ge => COp::Ge,
                BinOp::Eq => COp::Eq,
                BinOp::Ne => COp::Ne,
                _ => unreachable!(),
            };
            return Ok(Ex::Cmp {
                op: cop,
                ty,
                l: Box::new(l),
                r: Box::new(r),
            });
        }
        let bop = match op {
            BinOp::Add => BOp::Add,
            BinOp::Sub => BOp::Sub,
            BinOp::Mul => BOp::Mul,
            BinOp::Div => BOp::Div,
            BinOp::Rem => BOp::Rem,
            BinOp::BitAnd => BOp::And,
            BinOp::BitOr => BOp::Or,
            BinOp::BitXor => BOp::Xor,
            BinOp::Shl => BOp::Shl,
            BinOp::Shr => BOp::Shr,
            _ if op.is_logical() || op.is_comparison() => {
                unreachable!("handled above")
            }
            _ => unreachable!(),
        };
        let ty = if matches!(bop, BOp::Shl | BOp::Shr) {
            // shift result type follows the (promoted) left operand
            l.ty().integer_promote()
        } else {
            l.ty().promote(r.ty())
        };
        if ty.is_float()
            && matches!(
                bop,
                BOp::Rem | BOp::And | BOp::Or | BOp::Xor | BOp::Shl | BOp::Shr
            )
        {
            return Err(err(
                line,
                format!("operator {bop:?} requires integer operands"),
            ));
        }
        let l = self.coerce(l, ty);
        let r = self.coerce(r, ty);
        // constant folding, as any real compiler performs (macro-expanded
        // expressions like `(256 * 8)` must not cost runtime cycles)
        if let (Ex::Const { bits: lb, .. }, Ex::Const { bits: rb, .. }) = (&l, &r) {
            if let Ok(bits) = crate::exec::ops::bin_op(bop, ty, *lb, *rb) {
                return Ok(Ex::Const { bits, ty });
            }
        }
        Ok(Ex::Bin {
            op: bop,
            ty,
            l: Box::new(l),
            r: Box::new(r),
        })
    }

    // ---- pointers and lvalues ---------------------------------------------

    /// Lower an expression that must produce a pointer.
    fn lower_pointer(&mut self, line: Span, e: &Expr) -> Result<PtrEx> {
        match e {
            Expr::Ident(name) => {
                let b = self
                    .lookup(name)
                    .ok_or_else(|| err(line, format!("use of undeclared identifier `{name}`")))?
                    .clone();
                match b {
                    Binding::Slot(slot) => match self.slots[slot] {
                        SlotKind::Ptr { space, elem } => Ok(PtrEx {
                            ex: Ex::Slot {
                                slot,
                                ty: ScalarType::U64,
                            },
                            space,
                            elem,
                        }),
                        SlotKind::Scalar(_) => {
                            Err(err(line, format!("scalar `{name}` used as a pointer")))
                        }
                    },
                    Binding::LocalArray { alloc, elem } => Ok(PtrEx {
                        ex: Ex::LocalBase { alloc, elem },
                        space: AddrSpace::Local,
                        elem,
                    }),
                    Binding::PrivArray { alloc, elem } => Ok(PtrEx {
                        ex: Ex::PrivBase { alloc, elem },
                        space: AddrSpace::Private,
                        elem,
                    }),
                    Binding::Const(_) => {
                        Err(err(line, format!("constant `{name}` is not a pointer")))
                    }
                }
            }
            Expr::Bin {
                op: BinOp::Add,
                l,
                r,
            } => {
                let p = self.lower_pointer(line, l)?;
                let off = self.lower_value(line, r)?;
                let off = self.coerce(off, ScalarType::I64);
                Ok(PtrEx {
                    elem: p.elem,
                    space: p.space,
                    ex: Ex::PtrAdd {
                        elem_size: p.elem.size(),
                        ptr: Box::new(p.ex),
                        offset: Box::new(off),
                    },
                })
            }
            Expr::Bin {
                op: BinOp::Sub,
                l,
                r,
            } => {
                let p = self.lower_pointer(line, l)?;
                let off = self.lower_value(line, r)?;
                let off = self.coerce(off, ScalarType::I64);
                let neg = Ex::Un {
                    op: UOp::Neg,
                    ty: ScalarType::I64,
                    e: Box::new(off),
                };
                Ok(PtrEx {
                    elem: p.elem,
                    space: p.space,
                    ex: Ex::PtrAdd {
                        elem_size: p.elem.size(),
                        ptr: Box::new(p.ex),
                        offset: Box::new(neg),
                    },
                })
            }
            Expr::Un {
                op: UnOp::AddrOf,
                e: inner,
            } => {
                let (addr, space, elem) = self.lower_lvalue_addr(line, inner)?;
                Ok(PtrEx {
                    ex: addr,
                    space,
                    elem,
                })
            }
            _ => Err(err(
                line,
                "expression is not a supported pointer expression",
            )),
        }
    }

    /// Lower an lvalue (`a[i]` or `*p`) to its address.
    fn lower_lvalue_addr(&mut self, line: Span, e: &Expr) -> Result<(Ex, AddrSpace, ScalarType)> {
        match e {
            Expr::Index { base, index } => {
                let p = self.lower_pointer(line, base)?;
                let idx = self.lower_value(line, index)?;
                let idx = self.coerce(idx, ScalarType::I64);
                let addr = Ex::PtrAdd {
                    elem_size: p.elem.size(),
                    ptr: Box::new(p.ex),
                    offset: Box::new(idx),
                };
                Ok((addr, p.space, p.elem))
            }
            Expr::Un {
                op: UnOp::Deref,
                e: inner,
            } => {
                let p = self.lower_pointer(line, inner)?;
                Ok((p.ex, p.space, p.elem))
            }
            _ => Err(err(line, "expression is not an lvalue")),
        }
    }

    // ---- calls -------------------------------------------------------------

    fn lower_call(&mut self, line: Span, name: &str, args: &[Expr]) -> Result<Ex> {
        if name == "barrier" {
            return Err(err(line, "barrier() may only appear as a statement"));
        }
        if let Some(b) = builtin_by_name(name) {
            return self.lower_builtin(line, name, b, args);
        }
        // `max`/`min`/`abs`/`clamp` dispatch on argument types
        match name {
            "max" | "min" => {
                check_argc(line, name, args, 2)?;
                let a = self.lower_value(line, &args[0])?;
                let b = self.lower_value(line, &args[1])?;
                let ty = a.ty().promote(b.ty());
                let bi = if ty.is_float() {
                    if name == "max" {
                        Builtin::Fmax
                    } else {
                        Builtin::Fmin
                    }
                } else if name == "max" {
                    Builtin::MaxI
                } else {
                    Builtin::MinI
                };
                let (a, b) = (self.coerce(a, ty), self.coerce(b, ty));
                return Ok(Ex::CallBuiltin {
                    b: bi,
                    ty,
                    args: vec![a, b],
                });
            }
            "abs" => {
                check_argc(line, name, args, 1)?;
                let a = self.lower_value(line, &args[0])?;
                let ty = a.ty().integer_promote();
                if ty.is_float() {
                    return Err(err(line, "use fabs() for floating-point absolute value"));
                }
                let a = self.coerce(a, ty);
                return Ok(Ex::CallBuiltin {
                    b: Builtin::AbsI,
                    ty,
                    args: vec![a],
                });
            }
            "clamp" => {
                check_argc(line, name, args, 3)?;
                let x = self.lower_value(line, &args[0])?;
                let lo = self.lower_value(line, &args[1])?;
                let hi = self.lower_value(line, &args[2])?;
                let ty = x.ty().promote(lo.ty()).promote(hi.ty());
                let (maxb, minb) = if ty.is_float() {
                    (Builtin::Fmax, Builtin::Fmin)
                } else {
                    (Builtin::MaxI, Builtin::MinI)
                };
                let x = self.coerce(x, ty);
                let lo = self.coerce(lo, ty);
                let hi = self.coerce(hi, ty);
                let lower = Ex::CallBuiltin {
                    b: maxb,
                    ty,
                    args: vec![x, lo],
                };
                return Ok(Ex::CallBuiltin {
                    b: minb,
                    ty,
                    args: vec![lower, hi],
                });
            }
            _ => {}
        }
        // user function
        let Some(&func) = self.sigs.get(name) else {
            return Err(err(line, format!("call to unknown function `{name}`")));
        };
        let callee = &self.tu.funcs[func];
        if callee.is_kernel {
            return Err(err(
                line,
                format!("kernel `{name}` cannot be called from device code"),
            ));
        }
        if callee.params.len() != args.len() {
            return Err(err(
                line,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    callee.params.len(),
                    args.len()
                ),
            ));
        }
        let ret = match callee.ret {
            ClType::Void => None,
            ClType::Scalar(t) => Some(t),
            ClType::Ptr(..) => return Err(err(line, "pointer return types are not supported")),
        };
        let param_tys: Vec<ClType> = callee.params.iter().map(|p| p.ty).collect();
        let mut lowered = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&param_tys) {
            match pty {
                ClType::Scalar(t) => {
                    let v = self.lower_value(line, a)?;
                    lowered.push(self.coerce(v, *t));
                }
                ClType::Ptr(space, t) => {
                    let p = self.lower_pointer(line, a)?;
                    if p.elem != *t {
                        return Err(err(line, "pointer argument with mismatched element type"));
                    }
                    // unqualified callee pointers default to global; allow
                    // passing local/constant pointers only on exact match
                    if *space != p.space {
                        return Err(err(
                            line,
                            format!(
                                "pointer argument address space mismatch: passing {} to {}",
                                p.space.cl_name(),
                                space.cl_name()
                            ),
                        ));
                    }
                    lowered.push(p.ex);
                }
                ClType::Void => return Err(err(line, "void parameter")),
            }
        }
        // void calls get a dummy I32 result type; StKind::ExprSt discards it
        let ret_ty = ret.unwrap_or(ScalarType::I32);
        Ok(Ex::CallFunc {
            func,
            ret: ret_ty,
            args: lowered,
        })
    }

    fn lower_builtin(&mut self, line: Span, name: &str, b: Builtin, args: &[Expr]) -> Result<Ex> {
        use Builtin::*;
        match b {
            GetGlobalId | GetLocalId | GetGroupId | GetGlobalSize | GetLocalSize | GetNumGroups => {
                check_argc(line, name, args, 1)?;
                let dim = self.lower_value(line, &args[0])?;
                let dim = self.coerce(dim, ScalarType::U32);
                Ok(Ex::CallBuiltin {
                    b,
                    ty: ScalarType::U64,
                    args: vec![dim],
                })
            }
            GetWorkDim => {
                check_argc(line, name, args, 0)?;
                Ok(Ex::CallBuiltin {
                    b,
                    ty: ScalarType::U32,
                    args: vec![],
                })
            }
            Sqrt | Rsqrt | Fabs | Exp | Log | Log2 | Sin | Cos | Tan | Floor | Ceil | Trunc
            | Round => {
                check_argc(line, name, args, 1)?;
                let a = self.lower_value(line, &args[0])?;
                let ty = float_ty(a.ty());
                let a = self.coerce(a, ty);
                Ok(Ex::CallBuiltin {
                    b,
                    ty,
                    args: vec![a],
                })
            }
            Pow | Fmod | Fmax | Fmin => {
                check_argc(line, name, args, 2)?;
                let x = self.lower_value(line, &args[0])?;
                let y = self.lower_value(line, &args[1])?;
                let ty = float_ty(x.ty().promote(y.ty()));
                let x = self.coerce(x, ty);
                let y = self.coerce(y, ty);
                Ok(Ex::CallBuiltin {
                    b,
                    ty,
                    args: vec![x, y],
                })
            }
            Mad | Fma => {
                check_argc(line, name, args, 3)?;
                let x = self.lower_value(line, &args[0])?;
                let y = self.lower_value(line, &args[1])?;
                let z = self.lower_value(line, &args[2])?;
                let ty = float_ty(x.ty().promote(y.ty()).promote(z.ty()));
                let x = self.coerce(x, ty);
                let y = self.coerce(y, ty);
                let z = self.coerce(z, ty);
                Ok(Ex::CallBuiltin {
                    b,
                    ty,
                    args: vec![x, y, z],
                })
            }
            MaxI | MinI | AbsI => unreachable!("dispatched by name above"),
            AtomicAdd | AtomicSub | AtomicXchg | AtomicMin | AtomicMax => {
                check_argc(line, name, args, 2)?;
                self.lower_atomic(line, b, args, true)
            }
            AtomicInc | AtomicDec => {
                check_argc(line, name, args, 1)?;
                self.lower_atomic(line, b, args, false)
            }
        }
    }

    fn lower_atomic(
        &mut self,
        line: Span,
        b: Builtin,
        args: &[Expr],
        has_operand: bool,
    ) -> Result<Ex> {
        let p = self.lower_pointer(line, &args[0])?;
        if !matches!(p.elem, ScalarType::I32 | ScalarType::U32) {
            return Err(err(line, "atomics require int/uint operands"));
        }
        if !matches!(p.space, AddrSpace::Global | AddrSpace::Local) {
            return Err(err(line, "atomics require a global or local pointer"));
        }
        let ty = p.elem;
        let mut lowered = vec![p.ex];
        if has_operand {
            let v = self.lower_value(line, &args[1])?;
            lowered.push(self.coerce(v, ty));
        }
        Ok(Ex::CallBuiltin {
            b,
            ty,
            args: lowered,
        })
    }

    // ---- constant evaluation ----------------------------------------------

    fn const_eval_u64(&mut self, line: Span, e: &Expr) -> Result<u64> {
        let v = self.lower_value(line, e)?;
        const_fold(&v).ok_or_else(|| err(line, "expression must be a compile-time constant"))
    }

    fn const_eval_usize(&mut self, line: Span, e: &Expr) -> Result<usize> {
        Ok(self.const_eval_u64(line, e)? as usize)
    }
}

fn e_unwrap(e: &Expr) -> &Expr {
    e
}

fn check_argc(line: Span, name: &str, args: &[Expr], n: usize) -> Result<()> {
    if args.len() != n {
        Err(err(
            line,
            format!("`{name}` expects {n} argument(s), got {}", args.len()),
        ))
    } else {
        Ok(())
    }
}

fn float_ty(t: ScalarType) -> ScalarType {
    if t == ScalarType::F64 {
        ScalarType::F64
    } else {
        ScalarType::F32
    }
}

fn align_to(x: usize, align: usize) -> usize {
    x.div_ceil(align) * align
}

fn builtin_by_name(name: &str) -> Option<Builtin> {
    use Builtin::*;
    Some(match name {
        "get_global_id" => GetGlobalId,
        "get_local_id" => GetLocalId,
        "get_group_id" => GetGroupId,
        "get_global_size" => GetGlobalSize,
        "get_local_size" => GetLocalSize,
        "get_num_groups" => GetNumGroups,
        "get_work_dim" => GetWorkDim,
        "sqrt" | "native_sqrt" | "half_sqrt" => Sqrt,
        "rsqrt" | "native_rsqrt" => Rsqrt,
        "fabs" => Fabs,
        "exp" | "native_exp" => Exp,
        "log" | "native_log" => Log,
        "log2" | "native_log2" => Log2,
        "pow" | "powr" => Pow,
        "sin" | "native_sin" => Sin,
        "cos" | "native_cos" => Cos,
        "tan" | "native_tan" => Tan,
        "floor" => Floor,
        "ceil" => Ceil,
        "trunc" => Trunc,
        "round" => Round,
        "fmod" => Fmod,
        "fmax" => Fmax,
        "fmin" => Fmin,
        "mad" => Mad,
        "fma" => Fma,
        "atomic_add" | "atom_add" => AtomicAdd,
        "atomic_sub" | "atom_sub" => AtomicSub,
        "atomic_inc" | "atom_inc" => AtomicInc,
        "atomic_dec" | "atom_dec" => AtomicDec,
        "atomic_xchg" | "atom_xchg" => AtomicXchg,
        "atomic_min" | "atom_min" => AtomicMin,
        "atomic_max" | "atom_max" => AtomicMax,
        _ => return None,
    })
}

/// Fold a constant expression to its u64 bits (integers only).
fn const_fold(e: &Ex) -> Option<u64> {
    match e {
        Ex::Const { bits, ty } if ty.is_integer() => Some(*bits),
        Ex::Bin { op, ty, l, r } if ty.is_integer() => {
            let a = const_fold(l)?;
            let b = const_fold(r)?;
            Some(match op {
                BOp::Add => a.wrapping_add(b),
                BOp::Sub => a.wrapping_sub(b),
                BOp::Mul => a.wrapping_mul(b),
                BOp::Div => a.checked_div(b)?,
                BOp::Rem => a.checked_rem(b)?,
                BOp::And => a & b,
                BOp::Or => a | b,
                BOp::Xor => a ^ b,
                BOp::Shl => a.wrapping_shl(b as u32),
                BOp::Shr => a.wrapping_shr(b as u32),
            })
        }
        Ex::Un {
            op: UOp::Neg, e, ..
        } => Some(const_fold(e)?.wrapping_neg()),
        Ex::Cast { e, .. } => const_fold(e),
        _ => None,
    }
}

/// Fold a literal cast at compile time (mirrors the interpreter's cast).
fn fold_cast(bits: u64, from: ScalarType, to: ScalarType) -> Option<u64> {
    use ScalarType::*;
    let as_f64 = |bits: u64, t: ScalarType| -> f64 {
        match t {
            F32 => f32::from_bits(bits as u32) as f64,
            F64 => f64::from_bits(bits),
            U64 | U32 | U16 | U8 | Bool => bits as f64,
            I64 | I32 | I16 | I8 => (bits as i64) as f64,
        }
    };
    Some(match (from.is_float(), to) {
        (_, F32) => ((as_f64(bits, from) as f32).to_bits()) as u64,
        (_, F64) => as_f64(bits, from).to_bits(),
        (true, _) => {
            let f = as_f64(bits, from);
            match to {
                I32 => (f as i32) as i64 as u64,
                U32 => (f as u32) as u64,
                I64 => (f as i64) as u64,
                U64 => f as u64,
                I16 => (f as i16) as i64 as u64,
                U16 => (f as u16) as u64,
                I8 => (f as i8) as i64 as u64,
                U8 => (f as u8) as u64,
                Bool => (f != 0.0) as u64,
                F32 | F64 => unreachable!(),
            }
        }
        (false, _) => match to {
            I32 => (bits as i32) as i64 as u64,
            U32 => (bits as u32) as u64,
            I64 => bits,
            U64 => bits,
            I16 => (bits as i16) as i64 as u64,
            U16 => (bits as u16) as u64,
            I8 => (bits as i8) as i64 as u64,
            U8 => (bits as u8) as u64,
            Bool => (bits != 0) as u64,
            F32 | F64 => unreachable!(),
        },
    })
}

// ---- whole-module analyses --------------------------------------------------

/// Mark per-parameter read/write effects from this function's own body.
fn compute_direct_effects(f: &mut FuncIr) {
    let nparams = f.params.len();
    let mut reads = vec![false; nparams];
    let mut writes = vec![false; nparams];
    walk_stmts(&f.body, &mut |st| {
        if let StKind::Store { addr, .. } = &st.kind {
            if let Some(p) = root_param(addr, nparams) {
                writes[p] = true;
            }
        }
        // atomics write through their pointer argument
        for_each_expr_in_stmt(st, &mut |e| match e {
            Ex::Load { addr, .. } => {
                if let Some(p) = root_param(addr, nparams) {
                    reads[p] = true;
                }
            }
            Ex::CallBuiltin { b, args, .. } if b.is_atomic() => {
                if let Some(p) = root_param(&args[0], nparams) {
                    reads[p] = true;
                    writes[p] = true;
                }
            }
            _ => {}
        });
    });
    for (i, p) in f.params.iter_mut().enumerate() {
        p.reads = reads[i];
        p.writes = writes[i];
    }
}

/// Trace a pointer expression back to the parameter slot it is based on.
fn root_param(e: &Ex, nparams: usize) -> Option<usize> {
    match e {
        Ex::Slot { slot, .. } if *slot < nparams => Some(*slot),
        Ex::PtrAdd { ptr, .. } => root_param(ptr, nparams),
        _ => None,
    }
}

fn walk_stmts(stmts: &[St], f: &mut impl FnMut(&St)) {
    for s in stmts {
        f(s);
        match &s.kind {
            StKind::If {
                then_blk, else_blk, ..
            } => {
                walk_stmts(then_blk, f);
                walk_stmts(else_blk, f);
            }
            StKind::Loop { body, step, .. } => {
                walk_stmts(body, f);
                walk_stmts(step, f);
            }
            _ => {}
        }
    }
}

fn for_each_expr_in_stmt(s: &St, f: &mut impl FnMut(&Ex)) {
    let mut walk = |e: &Ex| walk_expr(e, f);
    match &s.kind {
        StKind::SetSlot { value, .. } => walk(value),
        StKind::Store { addr, value, .. } => {
            walk(addr);
            walk(value);
        }
        StKind::If { cond, .. } => walk(cond),
        StKind::Loop { cond, .. } => walk(cond),
        StKind::Return(Some(e)) => walk(e),
        StKind::ExprSt(e) => walk(e),
        _ => {}
    }
}

fn walk_expr(e: &Ex, f: &mut impl FnMut(&Ex)) {
    f(e);
    match e {
        Ex::PtrAdd { ptr, offset, .. } => {
            walk_expr(ptr, f);
            walk_expr(offset, f);
        }
        Ex::Load { addr, .. } => walk_expr(addr, f),
        Ex::Bin { l, r, .. } | Ex::Cmp { l, r, .. } | Ex::LogAnd { l, r } | Ex::LogOr { l, r } => {
            walk_expr(l, f);
            walk_expr(r, f);
        }
        Ex::Un { e, .. } | Ex::Cast { e, .. } => walk_expr(e, f),
        Ex::CallBuiltin { args, .. } | Ex::CallFunc { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Ex::Select { cond, t, f: fe, .. } => {
            walk_expr(cond, f);
            walk_expr(t, f);
            walk_expr(fe, f);
        }
        _ => {}
    }
}

/// Propagate read/write effects through helper-function calls to a fixpoint:
/// passing a kernel parameter pointer to a helper inherits the helper's
/// effects on that parameter.
fn propagate_param_effects(module: &mut Module) {
    loop {
        let mut changed = false;
        let snapshot: Vec<Vec<(bool, bool)>> = module
            .funcs
            .iter()
            .map(|f| f.params.iter().map(|p| (p.reads, p.writes)).collect())
            .collect();
        for fi in 0..module.funcs.len() {
            let nparams = module.funcs[fi].params.len();
            let mut extra: Vec<(bool, bool)> = vec![(false, false); nparams];
            let body = module.funcs[fi].body.clone();
            walk_stmts(&body, &mut |st| {
                for_each_expr_in_stmt(st, &mut |e| {
                    if let Ex::CallFunc { func, args, .. } = e {
                        for (ai, a) in args.iter().enumerate() {
                            if let Some(p) = root_param(a, nparams) {
                                let (r, w) =
                                    snapshot[*func].get(ai).copied().unwrap_or((false, false));
                                extra[p].0 |= r;
                                extra[p].1 |= w;
                            }
                        }
                    }
                });
            });
            for (pi, (r, w)) in extra.into_iter().enumerate() {
                let p = &mut module.funcs[fi].params[pi];
                if (r && !p.reads) || (w && !p.writes) {
                    changed = true;
                }
                p.reads |= r;
                p.writes |= w;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Compute `uses_fp64` and `has_barrier` transitively through calls.
fn propagate_barriers_and_fp64(module: &mut Module) {
    // direct facts
    let mut fp64 = vec![false; module.funcs.len()];
    let mut barrier = vec![false; module.funcs.len()];
    let mut calls: Vec<Vec<FuncId>> = vec![Vec::new(); module.funcs.len()];
    for (fi, f) in module.funcs.iter().enumerate() {
        if f.params.iter().any(|p| param_is_fp64(&p.kind))
            || f.local_allocs.iter().any(|a| a.elem == ScalarType::F64)
            || f.priv_allocs.iter().any(|a| a.elem == ScalarType::F64)
            || f.ret == Some(ScalarType::F64)
        {
            fp64[fi] = true;
        }
        walk_stmts(&f.body, &mut |st| {
            if matches!(st.kind, StKind::Barrier { .. }) {
                barrier[fi] = true;
            }
            for_each_expr_in_stmt(st, &mut |e| {
                if e.ty() == ScalarType::F64 {
                    fp64[fi] = true;
                }
                if let Ex::CallFunc { func, .. } = e {
                    calls[fi].push(*func);
                }
            });
        });
    }
    // propagate through the (acyclic by construction) call graph
    loop {
        let mut changed = false;
        for fi in 0..module.funcs.len() {
            for &callee in &calls[fi] {
                if fp64[callee] && !fp64[fi] {
                    fp64[fi] = true;
                    changed = true;
                }
                if barrier[callee] && !barrier[fi] {
                    barrier[fi] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (fi, f) in module.funcs.iter_mut().enumerate() {
        f.uses_fp64 = fp64[fi];
        f.has_barrier = barrier[fi];
    }
}

fn param_is_fp64(k: &ParamKind) -> bool {
    matches!(
        k,
        ParamKind::GlobalPtr {
            elem: ScalarType::F64
        } | ParamKind::ConstantPtr {
            elem: ScalarType::F64
        } | ParamKind::LocalPtr {
            elem: ScalarType::F64
        } | ParamKind::Scalar(ScalarType::F64)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clc::parser::parse;

    fn compile(src: &str) -> Module {
        analyze(&parse(src).unwrap()).unwrap_or_else(|e| panic!("sema failed: {e}\n{src}"))
    }

    fn compile_err(src: &str) -> Error {
        match parse(src).and_then(|tu| analyze(&tu)) {
            Ok(_) => panic!("expected failure for:\n{src}"),
            Err(e) => e,
        }
    }

    #[test]
    fn saxpy_lowers() {
        let m = compile(
            "__kernel void saxpy(__global double* y, __global const double* x, double a) {
                 int i = get_global_id(0);
                 y[i] = a * x[i] + y[i];
             }",
        );
        assert_eq!(m.kernels.len(), 1);
        let f = &m.funcs[m.kernels["saxpy"]];
        assert!(f.uses_fp64);
        assert!(!f.has_barrier);
        assert!(
            f.params[0].reads && f.params[0].writes,
            "y is read and written"
        );
        assert!(f.params[1].reads && !f.params[1].writes, "x is read-only");
    }

    #[test]
    fn write_only_param_detected() {
        let m = compile(
            "__kernel void f(__global float* out, __global const float* in) {
                 int i = get_global_id(0);
                 out[i] = in[i];
             }",
        );
        let f = &m.funcs[0];
        assert!(!f.params[0].reads && f.params[0].writes);
        assert!(f.params[1].reads && !f.params[1].writes);
    }

    #[test]
    fn local_array_layout() {
        let m = compile(
            "__kernel void f() {
                 __local float a[10];
                 __local double b[4];
                 a[0] = 1.0f; b[0] = 2.0;
             }",
        );
        let f = &m.funcs[0];
        assert_eq!(f.local_allocs.len(), 2);
        assert_eq!(f.local_allocs[0].byte_offset, 0);
        // 40 bytes of floats, aligned up to 8 for the doubles
        assert_eq!(f.local_allocs[1].byte_offset, 40);
        assert_eq!(f.local_bytes(), 40 + 32);
    }

    #[test]
    fn private_array_allocation() {
        let m = compile("__kernel void f() { float t[16]; t[0] = 0.0f; }");
        assert_eq!(m.funcs[0].priv_allocs.len(), 1);
        assert_eq!(m.funcs[0].priv_bytes_per_lane(), 64);
    }

    #[test]
    fn barrier_statement_and_flags() {
        let m = compile(
            "__kernel void f() { barrier(CLK_LOCAL_MEM_FENCE); \
             barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE); }",
        );
        let f = &m.funcs[0];
        assert!(f.has_barrier);
        assert!(matches!(
            f.body[0].kind,
            StKind::Barrier {
                local_fence: true,
                global_fence: false
            }
        ));
        assert!(matches!(
            f.body[1].kind,
            StKind::Barrier {
                local_fence: true,
                global_fence: true
            }
        ));
    }

    #[test]
    fn fp32_kernel_not_marked_fp64() {
        let m = compile("__kernel void f(__global float* a) { a[0] = 1.0f; }");
        assert!(!m.funcs[0].uses_fp64);
    }

    #[test]
    fn double_arithmetic_marks_fp64() {
        // constant-only double expressions fold away and need no fp64...
        let m = compile("__kernel void f(__global float* a) { a[0] = (float)(1.0 * 2.0); }");
        assert!(
            !m.funcs[0].uses_fp64,
            "folded double constants cost nothing at runtime"
        );
        // ...but double arithmetic on runtime values does (unsuffixed
        // literals are double, so `x * 2.0` promotes to double)
        let m = compile("__kernel void f(__global float* a) { a[0] = (float)(a[0] * 2.0); }");
        assert!(m.funcs[0].uses_fp64);
    }

    #[test]
    fn helper_call_effects_propagate() {
        let m = compile(
            "void store(__global float* p, int i, float v) { p[i] = v; }
             __kernel void k(__global float* out) { store(out, 0, 1.0f); }",
        );
        let k = &m.funcs[m.kernels["k"]];
        assert!(k.params[0].writes, "write through helper must propagate");
    }

    #[test]
    fn helper_barrier_propagates() {
        let m = compile(
            "void sync() { barrier(CLK_LOCAL_MEM_FENCE); }
             __kernel void k() { sync(); }",
        );
        assert!(m.funcs[m.kernels["k"]].has_barrier);
    }

    #[test]
    fn usual_arithmetic_conversions() {
        let m = compile("__kernel void f(__global float* a, int i) { a[0] = i + 1.5f; }");
        // find the Bin node: it must operate at F32 with a cast on i
        let f = &m.funcs[0];
        let mut found = false;
        walk_stmts(&f.body, &mut |st| {
            for_each_expr_in_stmt(st, &mut |e| {
                if let Ex::Bin {
                    op: BOp::Add, ty, ..
                } = e
                {
                    assert_eq!(*ty, ScalarType::F32);
                    found = true;
                }
            });
        });
        assert!(found);
    }

    #[test]
    fn condition_normalised_to_bool() {
        let m = compile("__kernel void f(int n) { if (n) { } while (n - 1) { break; } }");
        let StKind::If { cond, .. } = &m.funcs[0].body[0].kind else {
            panic!()
        };
        assert_eq!(cond.ty(), ScalarType::Bool);
    }

    #[test]
    fn for_loop_lowering() {
        let m = compile(
            "__kernel void f(__global int* a, int n) {
                 for (int i = 0; i < n; i += 2) { a[i] = i; }
             }",
        );
        let body = &m.funcs[0].body;
        // init SetSlot followed by Loop with non-empty step
        assert!(matches!(body[0].kind, StKind::SetSlot { .. }));
        let StKind::Loop {
            step, check_first, ..
        } = &body[1].kind
        else {
            panic!()
        };
        assert!(*check_first && !step.is_empty());
    }

    #[test]
    fn do_while_checks_after() {
        let m = compile("__kernel void f(int n) { do { n = n - 1; } while (n > 0); }");
        let StKind::Loop { check_first, .. } = &m.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(!check_first);
    }

    #[test]
    fn shift_result_follows_left_operand() {
        let m = compile("__kernel void f(__global uint* a, uint x) { a[0] = x >> 3; }");
        let mut seen = false;
        walk_stmts(&m.funcs[0].body, &mut |st| {
            for_each_expr_in_stmt(st, &mut |e| {
                if let Ex::Bin {
                    op: BOp::Shr, ty, ..
                } = e
                {
                    assert_eq!(*ty, ScalarType::U32);
                    seen = true;
                }
            });
        });
        assert!(seen);
    }

    #[test]
    fn pointer_variable_and_arithmetic() {
        compile(
            "__kernel void f(__global float* a, int i) {
                 __global float* p = a + i;
                 *p = 1.0f;
                 p[1] = 2.0f;
             }",
        );
    }

    #[test]
    fn atomic_lowering() {
        let m = compile("__kernel void f(__global int* c) { atomic_add(c, 1); }");
        let f = &m.funcs[0];
        assert!(f.params[0].reads && f.params[0].writes);
    }

    #[test]
    fn max_min_dispatch_on_type() {
        let m = compile(
            "__kernel void f(__global float* a, __global int* b) {
                 a[0] = max(a[1], 2.0f);
                 b[0] = max(b[1], 2);
             }",
        );
        let mut fmax = 0;
        let mut imax = 0;
        walk_stmts(&m.funcs[0].body, &mut |st| {
            for_each_expr_in_stmt(st, &mut |e| {
                if let Ex::CallBuiltin { b, .. } = e {
                    match b {
                        Builtin::Fmax => fmax += 1,
                        Builtin::MaxI => imax += 1,
                        _ => {}
                    }
                }
            });
        });
        assert_eq!((fmax, imax), (1, 1));
    }

    #[test]
    fn errors() {
        assert!(compile_err("__kernel int f() { return 1; }")
            .to_string()
            .contains("kernels must return void"));
        assert!(compile_err("__kernel void f() { g(); }")
            .to_string()
            .contains("unknown function"));
        assert!(compile_err("__kernel void f(int a) { a = b; }")
            .to_string()
            .contains("undeclared"));
        assert!(compile_err("__kernel void f() { break; }")
            .to_string()
            .contains("outside"));
        assert!(compile_err("void h() { __local float s[4]; }")
            .to_string()
            .contains("kernel functions"));
        assert!(
            compile_err("__kernel void f(__constant float* c) { c[0] = 1.0f; }")
                .to_string()
                .contains("__constant")
        );
        assert!(
            compile_err("__kernel void f(int n) { int m = n; int x = barrier(m); }")
                .to_string()
                .contains("statement")
        );
        assert!(compile_err("__kernel void f() { int i; int i; }")
            .to_string()
            .contains("redeclared"));
        assert!(
            compile_err("__kernel void k() {} __kernel void j() { k(); }")
                .to_string()
                .contains("cannot be called")
        );
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        compile("__kernel void f(int i) { { int i = 2; i = i + 1; } }");
    }

    #[test]
    fn const_array_length_expressions() {
        let m = compile("__kernel void f() { __local float s[4 * 8 + 2]; s[0] = 0.0f; }");
        assert_eq!(m.funcs[0].local_allocs[0].len, 34);
        assert!(
            compile_err("__kernel void f(int n) { __local float s[n]; }")
                .to_string()
                .contains("compile-time constant")
        );
    }

    #[test]
    fn duplicate_function_rejected() {
        assert!(compile_err("void f() {} void f() {}")
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn shadowing_builtin_function_rejected() {
        assert!(compile_err("float sqrt(float x) { return x; }")
            .to_string()
            .contains("built-in"));
    }

    #[test]
    fn select_from_ternary() {
        let m =
            compile("__kernel void f(__global float* a, int i) { a[0] = i > 0 ? 1.0f : 2.0f; }");
        let mut seen = false;
        walk_stmts(&m.funcs[0].body, &mut |st| {
            for_each_expr_in_stmt(st, &mut |e| {
                if matches!(e, Ex::Select { .. }) {
                    seen = true;
                }
            });
        });
        assert!(seen);
    }
}
