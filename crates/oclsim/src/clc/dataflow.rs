//! Dataflow analysis framework over the executable IR.
//!
//! The IR ([`crate::exec::ir`]) is a structured statement tree; this module
//! builds an explicit control-flow graph view over it — basic blocks of
//! [`Step`]s with predecessor/successor edges and dominators — and runs a
//! generic worklist fixpoint solver parameterized by an [`Analysis`]
//! implementation. Four concrete analyses are provided:
//!
//! - [`ConstProp`]: constant/copy propagation (which slot holds a known
//!   constant or is a copy of another slot at each point),
//! - [`Intervals`]: integer value ranges with widening, seeded from the
//!   non-negativity of the work-item geometry builtins,
//! - [`Liveness`]: backward slot liveness (the substrate for dead-code
//!   elimination),
//! - [`Uniformity`]: which slots provably hold the same value on every
//!   work-item (launch-uniform) or every work-item of a group
//!   (group-uniform), refined beyond the sanitizer's syntactic AST version
//!   by running to a fixpoint through loops and by tracking the uniformity
//!   of the enclosing branch conditions.
//!
//! Every [`Step`] carries the `sid` (sequential pre-order statement id,
//! see [`for_each_statement`]) and span of the tree statement it came
//! from, so the optimizer ([`super::opt`]) and the sanitizer refinement
//! ([`super::analysis`]) can map CFG-level facts back onto the tree and
//! onto source lines. All iteration orders are deterministic: facts and
//! worklists are index- or BTree-based, never hash-ordered.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::clc::ast::{AddrSpace, Span};
use crate::exec::ir::{BOp, Builtin, COp, Ex, FuncIr, SlotKind, St, StKind, UOp};
use crate::exec::ops;
use crate::types::ScalarType;

// ---- statement numbering ----------------------------------------------------

/// Walk a statement tree in the canonical pre-order, handing each statement
/// its sequential id. The same numbering is used by [`Cfg::build`] and by
/// the tree-rewriting passes in [`super::opt`], which is what lets a pass
/// apply per-`sid` CFG facts back onto the tree.
pub fn for_each_statement<'a>(body: &'a [St], f: &mut impl FnMut(usize, &'a St)) {
    let mut next = 0usize;
    walk(body, &mut next, f);
}

fn walk<'a>(body: &'a [St], next: &mut usize, f: &mut impl FnMut(usize, &'a St)) {
    for st in body {
        let sid = *next;
        *next += 1;
        f(sid, st);
        match &st.kind {
            StKind::If {
                then_blk, else_blk, ..
            } => {
                walk(then_blk, next, f);
                walk(else_blk, next, f);
            }
            StKind::Loop { body, step, .. } => {
                walk(body, next, f);
                walk(step, next, f);
            }
            _ => {}
        }
    }
}

// ---- CFG --------------------------------------------------------------------

/// Index of a basic block within its [`Cfg`].
pub type BlockId = usize;

/// One executable step of a basic block. References point into the
/// function's statement tree; `sid` identifies the owning tree statement.
pub struct Step<'a> {
    /// Pre-order statement id (see [`for_each_statement`]).
    pub sid: usize,
    /// Source span of the owning statement.
    pub span: Span,
    pub op: StepOp<'a>,
}

/// What a [`Step`] does.
pub enum StepOp<'a> {
    /// `SetSlot`: evaluate `value`, write it to `slot`.
    Set { slot: usize, value: &'a Ex },
    /// `Store`: evaluate address and value, write through the pointer.
    Store {
        addr: &'a Ex,
        value: &'a Ex,
        space: AddrSpace,
        elem: ScalarType,
    },
    /// Expression evaluated for effect (`ExprSt`, `Return` values).
    Eval(&'a Ex),
    /// Branch condition of an `If` or `Loop` (the step ends its block).
    Cond(&'a Ex),
    /// Work-group barrier.
    Barrier,
}

/// A basic block: straight-line steps plus explicit edges.
pub struct Block<'a> {
    pub steps: Vec<Step<'a>>,
    pub preds: Vec<BlockId>,
    pub succs: Vec<BlockId>,
    /// Statement ids of the enclosing `If`/`Loop` conditions (innermost
    /// last) — the structural control context of every step in the block.
    /// Exact for this IR because control flow is fully structured.
    pub ctrl: Vec<usize>,
}

/// Control-flow graph of one function.
pub struct Cfg<'a> {
    pub blocks: Vec<Block<'a>>,
    pub entry: BlockId,
    pub exit: BlockId,
    /// Total statements numbered (tree statements, not steps).
    pub n_statements: usize,
}

struct CfgBuilder<'a> {
    blocks: Vec<Block<'a>>,
    cur: BlockId,
    exit: BlockId,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(BlockId, BlockId)>,
    ctrl: Vec<usize>,
    next_sid: usize,
}

impl<'a> CfgBuilder<'a> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            steps: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            ctrl: self.ctrl.clone(),
        });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        self.blocks[from].succs.push(to);
        self.blocks[to].preds.push(from);
    }

    fn push(&mut self, sid: usize, span: Span, op: StepOp<'a>) {
        let cur = self.cur;
        self.blocks[cur].steps.push(Step { sid, span, op });
    }

    fn lower(&mut self, body: &'a [St]) {
        for st in body {
            let sid = self.next_sid;
            self.next_sid += 1;
            match &st.kind {
                StKind::SetSlot { slot, value } => {
                    self.push(sid, st.span, StepOp::Set { slot: *slot, value });
                }
                StKind::Store {
                    addr,
                    elem,
                    space,
                    value,
                } => {
                    self.push(
                        sid,
                        st.span,
                        StepOp::Store {
                            addr,
                            value,
                            space: *space,
                            elem: *elem,
                        },
                    );
                }
                StKind::ExprSt(e) => self.push(sid, st.span, StepOp::Eval(e)),
                StKind::Barrier { .. } => self.push(sid, st.span, StepOp::Barrier),
                StKind::Return(val) => {
                    if let Some(v) = val {
                        self.push(sid, st.span, StepOp::Eval(v));
                    }
                    let cur = self.cur;
                    self.edge(cur, self.exit);
                    // statements after an unconditional return are
                    // unreachable; they land in a fresh block with no preds
                    self.cur = self.new_block();
                }
                StKind::Break => {
                    let (_, brk) = *self
                        .loop_stack
                        .last()
                        .expect("sema guarantees break is inside a loop");
                    let cur = self.cur;
                    self.edge(cur, brk);
                    self.cur = self.new_block();
                }
                StKind::Continue => {
                    let (cont, _) = *self
                        .loop_stack
                        .last()
                        .expect("sema guarantees continue is inside a loop");
                    let cur = self.cur;
                    self.edge(cur, cont);
                    self.cur = self.new_block();
                }
                StKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.push(sid, st.span, StepOp::Cond(cond));
                    let branch = self.cur;
                    self.ctrl.push(sid);
                    let then_entry = self.new_block();
                    let else_entry = self.new_block();
                    self.edge(branch, then_entry);
                    self.edge(branch, else_entry);
                    self.cur = then_entry;
                    self.lower(then_blk);
                    let then_end = self.cur;
                    self.cur = else_entry;
                    self.lower(else_blk);
                    let else_end = self.cur;
                    self.ctrl.pop();
                    let join = self.new_block();
                    self.edge(then_end, join);
                    self.edge(else_end, join);
                    self.cur = join;
                }
                StKind::Loop {
                    cond,
                    body,
                    step,
                    check_first,
                } => {
                    self.ctrl.push(sid);
                    // the header holds the condition; body → step → header
                    // is the back edge; header → exit leaves the loop
                    let header = self.new_block();
                    self.blocks[header].steps.push(Step {
                        sid,
                        span: st.span,
                        op: StepOp::Cond(cond),
                    });
                    let body_entry = self.new_block();
                    let step_entry = self.new_block();
                    self.ctrl.pop();
                    let exit = self.new_block();
                    self.ctrl.push(sid);
                    let pre = self.cur;
                    if *check_first {
                        self.edge(pre, header);
                    } else {
                        // do..while: the body runs once before the first test
                        self.edge(pre, body_entry);
                    }
                    self.edge(header, body_entry);
                    self.edge(header, exit);
                    self.loop_stack.push((step_entry, exit));
                    self.cur = body_entry;
                    self.lower(body);
                    let body_end = self.cur;
                    self.edge(body_end, step_entry);
                    self.cur = step_entry;
                    self.lower(step);
                    let step_end = self.cur;
                    self.edge(step_end, header);
                    self.loop_stack.pop();
                    self.ctrl.pop();
                    self.cur = exit;
                }
            }
        }
    }
}

impl<'a> Cfg<'a> {
    /// Build the CFG view of a function body.
    pub fn build(f: &'a FuncIr) -> Cfg<'a> {
        let mut b = CfgBuilder {
            blocks: Vec::new(),
            cur: 0,
            exit: 0,
            loop_stack: Vec::new(),
            ctrl: Vec::new(),
            next_sid: 0,
        };
        let entry = b.new_block();
        let exit = b.new_block();
        b.cur = entry;
        b.exit = exit;
        b.lower(&f.body);
        // falling off the end of the body returns
        let last = b.cur;
        b.edge(last, exit);
        Cfg {
            blocks: b.blocks,
            entry,
            exit,
            n_statements: b.next_sid,
        }
    }

    /// Reverse post-order over reachable blocks, starting from `entry`.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // iterative DFS with an explicit stack of (block, next-succ-index)
        let mut stack = vec![(self.entry, 0usize)];
        seen[self.entry] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*i];
                *i += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators (Cooper–Harvey–Kennedy over RPO). Unreachable
    /// blocks get `None`; the entry dominates itself.
    pub fn dominators(&self) -> Vec<Option<BlockId>> {
        let rpo = self.rpo();
        let mut rpo_index = vec![usize::MAX; self.blocks.len()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; self.blocks.len()];
        idom[self.entry] = Some(self.entry);
        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = idom[a].expect("processed blocks have an idom");
                }
                while rpo_index[b] > rpo_index[a] {
                    b = idom[b].expect("processed blocks have an idom");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &self.blocks[b].preds {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Does block `a` dominate block `b` (per the given idom tree)?
    pub fn dominates(&self, idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur] {
                Some(p) if p != cur => cur = p,
                _ => return false,
            }
        }
    }
}

// ---- generic worklist solver ------------------------------------------------

/// Analysis direction. For [`Direction::Backward`] the solver walks edges
/// reversed and each block's steps in reverse order; "flow-in" then means
/// the fact at the block's *end* in execution order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    Forward,
    Backward,
}

/// A dataflow problem: a join-semilattice of facts plus a transfer
/// function over [`Step`]s. `transfer` takes `&mut self` so analyses can
/// accumulate global state (e.g. [`Uniformity`] caches branch-condition
/// facts); the solver re-runs to a fixpoint of that state too (see
/// [`Analysis::reset_changed`]).
pub trait Analysis<'a> {
    type Fact: Clone + PartialEq;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    /// Fact at the boundary block (entry for forward, exit for backward).
    fn boundary(&self, cfg: &Cfg<'a>) -> Self::Fact;

    /// Join `other` into `into`. `visits` counts how often the target
    /// block's flow-in has changed — interval analyses widen once it
    /// exceeds a threshold to force termination.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact, visits: u32);

    /// Apply one step. `ctrl` is the owning block's structural control
    /// context (sids of enclosing branch conditions).
    fn transfer(&mut self, step: &Step<'a>, ctrl: &[usize], fact: &mut Self::Fact);

    /// Whether analysis-internal state changed since the last call (the
    /// solver then reruns the worklist until it reports false).
    fn reset_changed(&mut self) -> bool {
        false
    }
}

/// Fixpoint result: per-block facts in the analysis direction.
pub struct Solution<F> {
    /// Fact entering each block (at its start for forward analyses, at its
    /// end for backward ones). `None` = never reached.
    pub flow_in: Vec<Option<F>>,
    /// Fact after all of the block's steps, in the analysis direction.
    pub flow_out: Vec<Option<F>>,
}

/// Run `a` over `cfg` to a fixpoint with a deterministic FIFO worklist.
pub fn solve<'a, A: Analysis<'a>>(cfg: &Cfg<'a>, a: &mut A) -> Solution<A::Fact> {
    let n = cfg.blocks.len();
    let backward = a.direction() == Direction::Backward;
    let boundary_block = if backward { cfg.exit } else { cfg.entry };
    let mut flow_in: Vec<Option<A::Fact>> = vec![None; n];
    let mut flow_out: Vec<Option<A::Fact>> = vec![None; n];
    let mut visits = vec![0u32; n];
    loop {
        let mut queue: VecDeque<BlockId> = VecDeque::new();
        let mut queued = vec![false; n];
        if flow_in[boundary_block].is_none() {
            flow_in[boundary_block] = Some(a.boundary(cfg));
        }
        // re-seed every block already reached so analysis-internal state
        // changes (see reset_changed) propagate everywhere
        for b in 0..n {
            if flow_in[b].is_some() {
                queue.push_back(b);
                queued[b] = true;
            }
        }
        while let Some(b) = queue.pop_front() {
            queued[b] = false;
            let mut fact = flow_in[b].clone().expect("queued blocks are reached");
            let block = &cfg.blocks[b];
            if backward {
                for step in block.steps.iter().rev() {
                    a.transfer(step, &block.ctrl, &mut fact);
                }
            } else {
                for step in &block.steps {
                    a.transfer(step, &block.ctrl, &mut fact);
                }
            }
            let changed_out = flow_out[b].as_ref() != Some(&fact);
            flow_out[b] = Some(fact);
            if !changed_out {
                continue;
            }
            let out = flow_out[b].as_ref().expect("just set");
            let nexts = if backward {
                &cfg.blocks[b].preds
            } else {
                &cfg.blocks[b].succs
            };
            for &s in nexts {
                let update = match &mut flow_in[s] {
                    slot @ None => {
                        *slot = Some(out.clone());
                        true
                    }
                    Some(cur) => {
                        let mut merged = cur.clone();
                        a.join(&mut merged, out, visits[s]);
                        if merged != *cur {
                            visits[s] += 1;
                            flow_in[s] = Some(merged);
                            true
                        } else {
                            false
                        }
                    }
                };
                if update && !queued[s] {
                    queue.push_back(s);
                    queued[s] = true;
                }
            }
        }
        if !a.reset_changed() {
            break;
        }
    }
    Solution { flow_in, flow_out }
}

/// Replay the solved facts through every reached block, calling `visit`
/// with the fact *before* each step's transfer (in the analysis direction:
/// for a backward analysis that is the fact *after* the step in execution
/// order — e.g. liveness-out, exactly what dead-code elimination wants).
pub fn fact_at_each_step<'a, A: Analysis<'a>>(
    cfg: &Cfg<'a>,
    a: &mut A,
    sol: &Solution<A::Fact>,
    mut visit: impl FnMut(&Step<'a>, &A::Fact),
) {
    let backward = a.direction() == Direction::Backward;
    for (b, block) in cfg.blocks.iter().enumerate() {
        let Some(start) = sol.flow_in[b].clone() else {
            continue;
        };
        let mut fact = start;
        if backward {
            for step in block.steps.iter().rev() {
                visit(step, &fact);
                a.transfer(step, &block.ctrl, &mut fact);
            }
        } else {
            for step in &block.steps {
                visit(step, &fact);
                a.transfer(step, &block.ctrl, &mut fact);
            }
        }
    }
}

// ---- purity / trap classification -------------------------------------------

/// True when evaluating `e` has no side effects and can never trap, for
/// any lane values. This is the speculation gate used by DCE, CSE and
/// LICM: loads can fault, integer `Div`/`Rem` traps on a zero divisor
/// (unless the divisor is a provably nonzero constant), atomics and
/// helper calls are side-effecting.
pub fn pure_nontrapping(e: &Ex) -> bool {
    match e {
        Ex::Const { .. } | Ex::Slot { .. } | Ex::LocalBase { .. } | Ex::PrivBase { .. } => true,
        Ex::PtrAdd { ptr, offset, .. } => pure_nontrapping(ptr) && pure_nontrapping(offset),
        Ex::Load { .. } => false,
        Ex::Bin { op, ty, l, r } => {
            let div_ok = !matches!(op, BOp::Div | BOp::Rem)
                || ty.is_float() // float division does not trap
                || matches!(**r, Ex::Const { bits, .. } if bits != 0);
            div_ok && pure_nontrapping(l) && pure_nontrapping(r)
        }
        Ex::Cmp { l, r, .. } => pure_nontrapping(l) && pure_nontrapping(r),
        Ex::LogAnd { l, r } | Ex::LogOr { l, r } => pure_nontrapping(l) && pure_nontrapping(r),
        Ex::Un { e, .. } => pure_nontrapping(e),
        Ex::Cast { e, .. } => pure_nontrapping(e),
        Ex::CallBuiltin { b, args, .. } => !b.is_atomic() && args.iter().all(pure_nontrapping),
        Ex::CallFunc { .. } => false,
        Ex::Select { cond, t, f, .. } => {
            pure_nontrapping(cond) && pure_nontrapping(t) && pure_nontrapping(f)
        }
    }
}

/// Slots read by `e`, in first-use order without duplicates.
pub fn used_slots(e: &Ex, out: &mut Vec<usize>) {
    match e {
        Ex::Slot { slot, .. } => {
            if !out.contains(slot) {
                out.push(*slot);
            }
        }
        Ex::Const { .. } | Ex::LocalBase { .. } | Ex::PrivBase { .. } => {}
        Ex::PtrAdd { ptr, offset, .. } => {
            used_slots(ptr, out);
            used_slots(offset, out);
        }
        Ex::Load { addr, .. } => used_slots(addr, out),
        Ex::Bin { l, r, .. } | Ex::Cmp { l, r, .. } => {
            used_slots(l, out);
            used_slots(r, out);
        }
        Ex::LogAnd { l, r } | Ex::LogOr { l, r } => {
            used_slots(l, out);
            used_slots(r, out);
        }
        Ex::Un { e, .. } | Ex::Cast { e, .. } => used_slots(e, out),
        Ex::CallBuiltin { args, .. } | Ex::CallFunc { args, .. } => {
            for a in args {
                used_slots(a, out);
            }
        }
        Ex::Select { cond, t, f, .. } => {
            used_slots(cond, out);
            used_slots(t, out);
            used_slots(f, out);
        }
    }
}

// ---- constant / copy propagation --------------------------------------------

/// Lattice value of one slot for [`ConstProp`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SlotVal {
    /// No information (lattice top).
    Unknown,
    /// The slot provably holds this constant on every lane.
    Const { bits: u64, ty: ScalarType },
    /// The slot provably holds the same value as another slot.
    Copy(usize),
}

/// Forward constant/copy propagation over slots.
pub struct ConstProp {
    nparams: usize,
    slots: Vec<SlotKind>,
}

impl ConstProp {
    pub fn new(f: &FuncIr) -> ConstProp {
        ConstProp {
            nparams: f.params.len(),
            slots: f.slots.clone(),
        }
    }
}

/// Constant-evaluate `e` under per-slot facts, using the *same* arithmetic
/// as the interpreter ([`crate::exec::ops`]) so folding never diverges from
/// execution. Trapping operations (`Div`/`Rem` with a zero divisor) and
/// loads/calls are never folded. `facts` may be empty for pure
/// context-free folding.
pub fn eval_const(e: &Ex, facts: &[SlotVal]) -> Option<(u64, ScalarType)> {
    match e {
        Ex::Const { bits, ty } => Some((*bits, *ty)),
        Ex::Slot { slot, .. } => match facts.get(*slot)? {
            SlotVal::Const { bits, ty } => Some((*bits, *ty)),
            _ => None,
        },
        Ex::Bin { op, ty, l, r } => {
            let (a, _) = eval_const(l, facts)?;
            let (b, _) = eval_const(r, facts)?;
            ops::bin_op(*op, *ty, a, b).ok().map(|v| (v, *ty))
        }
        Ex::Cmp { op, ty, l, r } => {
            let (a, _) = eval_const(l, facts)?;
            let (b, _) = eval_const(r, facts)?;
            Some((ops::cmp_op(*op, *ty, a, b), ScalarType::Bool))
        }
        Ex::LogAnd { l, r } => {
            let (a, _) = eval_const(l, facts)?;
            if a == 0 {
                return Some((0, ScalarType::Bool)); // short-circuit
            }
            let (b, _) = eval_const(r, facts)?;
            Some(((b != 0) as u64, ScalarType::Bool))
        }
        Ex::LogOr { l, r } => {
            let (a, _) = eval_const(l, facts)?;
            if a != 0 {
                return Some((1, ScalarType::Bool));
            }
            let (b, _) = eval_const(r, facts)?;
            Some(((b != 0) as u64, ScalarType::Bool))
        }
        Ex::Un { op, ty, e } => {
            let (a, _) = eval_const(e, facts)?;
            Some((ops::un_op(*op, *ty, a), *ty))
        }
        Ex::Cast { from, to, e } => {
            let (a, _) = eval_const(e, facts)?;
            Some((ops::cast_bits(a, *from, *to), *to))
        }
        Ex::Select { cond, t, f, ty } => {
            let (c, _) = eval_const(cond, facts)?;
            // only the chosen branch is ever evaluated at run time, so
            // folding it away needs no purity check on the other branch
            let (v, _) = eval_const(if c != 0 { t } else { f }, facts)?;
            Some((v, *ty))
        }
        // builtins, loads, calls and pointer values are never folded
        _ => None,
    }
}

impl<'a> Analysis<'a> for ConstProp {
    type Fact = Vec<SlotVal>;

    fn boundary(&self, _cfg: &Cfg<'a>) -> Self::Fact {
        // parameters hold launch arguments (unknown); every other slot is
        // zero-initialized by the interpreter, which the lattice may use
        self.slots
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                if i < self.nparams {
                    SlotVal::Unknown
                } else {
                    match kind {
                        SlotKind::Scalar(ty) => SlotVal::Const { bits: 0, ty: *ty },
                        SlotKind::Ptr { .. } => SlotVal::Unknown,
                    }
                }
            })
            .collect()
    }

    fn join(&self, into: &mut Self::Fact, other: &Self::Fact, _visits: u32) {
        for (a, b) in into.iter_mut().zip(other) {
            if a != b {
                *a = SlotVal::Unknown;
            }
        }
    }

    fn transfer(&mut self, step: &Step<'a>, _ctrl: &[usize], fact: &mut Self::Fact) {
        if let StepOp::Set { slot, value } = &step.op {
            let new = if let Some((bits, ty)) = eval_const(value, fact) {
                SlotVal::Const { bits, ty }
            } else if let Ex::Slot { slot: src, .. } = value {
                if src == slot {
                    return; // x = x: no change
                }
                match fact[*src] {
                    // collapse copy chains so a later invalidation of the
                    // middle slot cannot orphan the fact
                    SlotVal::Copy(root) => SlotVal::Copy(root),
                    _ => SlotVal::Copy(*src),
                }
            } else {
                SlotVal::Unknown
            };
            if matches!(new, SlotVal::Copy(root) if root == *slot) {
                // x = y where y already holds x's value: x is unchanged
                return;
            }
            // copies of the overwritten slot go stale
            for v in fact.iter_mut() {
                if matches!(v, SlotVal::Copy(s) if s == slot) {
                    *v = SlotVal::Unknown;
                }
            }
            fact[*slot] = new;
        }
    }
}

// ---- integer value-range (interval) analysis --------------------------------

/// A closed integer interval, `i128`-saturating. `TOP` = unbounded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    pub lo: i128,
    pub hi: i128,
}

impl Interval {
    pub const TOP: Interval = Interval {
        lo: i128::MIN,
        hi: i128::MAX,
    };

    pub fn exact(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    pub fn new(lo: i128, hi: i128) -> Interval {
        Interval { lo, hi }
    }

    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    fn union(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    fn intersect(self, o: Interval) -> Interval {
        // an empty intersection can only arise on unreachable paths; keep
        // a well-formed (collapsed) interval
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        if lo > hi {
            Interval { lo, hi: lo }
        } else {
            Interval { lo, hi }
        }
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(o.lo),
            hi: self.hi.saturating_add(o.hi),
        }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(o.hi),
            hi: self.hi.saturating_sub(o.lo),
        }
    }

    fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval {
            lo: *c.iter().min().expect("non-empty"),
            hi: *c.iter().max().expect("non-empty"),
        }
    }
}

/// Value range of an integer [`ScalarType`] (canonical register values).
pub fn type_range(ty: ScalarType) -> Interval {
    match ty {
        ScalarType::Bool => Interval::new(0, 1),
        ScalarType::I8 => Interval::new(i8::MIN as i128, i8::MAX as i128),
        ScalarType::U8 => Interval::new(0, u8::MAX as i128),
        ScalarType::I16 => Interval::new(i16::MIN as i128, i16::MAX as i128),
        ScalarType::U16 => Interval::new(0, u16::MAX as i128),
        ScalarType::I32 => Interval::new(i32::MIN as i128, i32::MAX as i128),
        ScalarType::U32 => Interval::new(0, u32::MAX as i128),
        ScalarType::I64 => Interval::new(i64::MIN as i128, i64::MAX as i128),
        ScalarType::U64 => Interval::new(0, u64::MAX as i128),
        ScalarType::F32 | ScalarType::F64 => Interval::TOP,
    }
}

/// Work-item geometry values are non-negative and fit in the positive
/// `i64` range (global sizes are `usize` counts).
const GEOM_RANGE: Interval = Interval {
    lo: 0,
    hi: i64::MAX as i128,
};

/// How many flow-in changes a block tolerates before joins start widening.
const WIDEN_AFTER: u32 = 4;

/// Forward integer interval analysis over slots.
pub struct Intervals {
    slots: Vec<SlotKind>,
    nparams: usize,
}

impl Intervals {
    pub fn new(f: &FuncIr) -> Intervals {
        Intervals {
            slots: f.slots.clone(),
            nparams: f.params.len(),
        }
    }

    fn slot_range(&self, slot: usize, fact: &[Interval]) -> Interval {
        match self.slots.get(slot) {
            Some(SlotKind::Scalar(ty)) if ty.is_integer() => fact[slot].intersect(type_range(*ty)),
            _ => Interval::TOP,
        }
    }

    /// Range of `e` under the current per-slot ranges. Always intersected
    /// with the static range of the expression's type — canonical register
    /// values never leave it.
    pub fn eval_range(&self, e: &Ex, fact: &[Interval]) -> Interval {
        let raw = self.eval_range_inner(e, fact);
        let ty = e.ty();
        if ty.is_integer() {
            raw.intersect(type_range(ty))
        } else {
            raw
        }
    }

    fn eval_range_inner(&self, e: &Ex, fact: &[Interval]) -> Interval {
        match e {
            Ex::Const { bits, ty } => {
                if ty.is_float() {
                    Interval::TOP
                } else if ty.is_signed() {
                    Interval::exact(*bits as i64 as i128)
                } else {
                    Interval::exact(*bits as i128)
                }
            }
            Ex::Slot { slot, .. } => self.slot_range(*slot, fact),
            Ex::Bin { op, ty, l, r } if ty.is_integer() => {
                let a = self.eval_range(l, fact);
                let b = self.eval_range(r, fact);
                match op {
                    BOp::Add => a.add(b),
                    BOp::Sub => a.sub(b),
                    BOp::Mul => a.mul(b),
                    BOp::Div => {
                        // monotone for a positive constant divisor
                        match (b.lo, b.hi) {
                            (n, m) if n == m && n > 0 => Interval::new(a.lo / n, a.hi / n),
                            _ => Interval::TOP,
                        }
                    }
                    BOp::Rem => match (b.lo, b.hi) {
                        (n, m) if n == m && n != 0 => {
                            let n = n.abs();
                            if a.lo >= 0 {
                                Interval::new(0, n - 1)
                            } else {
                                // sign follows the dividend
                                Interval::new(-(n - 1), n - 1)
                            }
                        }
                        _ => Interval::TOP,
                    },
                    BOp::And => {
                        // a non-negative mask clears the sign bits: the
                        // result uses only the mask's bits
                        match (b.lo, b.hi) {
                            (n, m) if n == m && n >= 0 => Interval::new(0, n),
                            _ => Interval::TOP,
                        }
                    }
                    _ => Interval::TOP,
                }
            }
            Ex::Cmp { .. } | Ex::LogAnd { .. } | Ex::LogOr { .. } => Interval::new(0, 1),
            Ex::Un { op, ty, e } if ty.is_integer() => match op {
                UOp::Neg => {
                    let a = self.eval_range(e, fact);
                    Interval::new(a.hi.saturating_neg(), a.lo.saturating_neg())
                }
                UOp::Not => Interval::new(0, 1),
                UOp::BitNot => Interval::TOP,
            },
            Ex::Cast { from, to, e } if from.is_integer() && to.is_integer() => {
                let a = self.eval_range(e, fact);
                let target = type_range(*to);
                // a representable value converts losslessly; anything else
                // wraps, so fall back to the target type's full range
                if a.lo >= target.lo && a.hi <= target.hi {
                    a
                } else {
                    target
                }
            }
            Ex::CallBuiltin { b, ty, args } => match b {
                _ if b.is_geometry() => GEOM_RANGE,
                Builtin::MaxI if args.len() == 2 => {
                    let a = self.eval_range(&args[0], fact);
                    let c = self.eval_range(&args[1], fact);
                    Interval::new(a.lo.max(c.lo), a.hi.max(c.hi))
                }
                Builtin::MinI if args.len() == 2 => {
                    let a = self.eval_range(&args[0], fact);
                    let c = self.eval_range(&args[1], fact);
                    Interval::new(a.lo.min(c.lo), a.hi.min(c.hi))
                }
                Builtin::AbsI if args.len() == 1 && ty.is_integer() => {
                    let a = self.eval_range(&args[0], fact);
                    let lo = if a.lo <= 0 && a.hi >= 0 {
                        0
                    } else {
                        a.lo.abs().min(a.hi.abs())
                    };
                    Interval::new(lo, a.lo.abs().max(a.hi.abs()))
                }
                _ => Interval::TOP,
            },
            // loads are bounded only by their element type (applied by the
            // caller's type intersection); everything else is unbounded
            _ => Interval::TOP,
        }
    }
}

impl<'a> Analysis<'a> for Intervals {
    type Fact = Vec<Interval>;

    fn boundary(&self, _cfg: &Cfg<'a>) -> Self::Fact {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, kind)| match kind {
                SlotKind::Scalar(ty) if ty.is_integer() => {
                    if i < self.nparams {
                        type_range(*ty)
                    } else {
                        Interval::exact(0) // zero-initialized
                    }
                }
                _ => Interval::TOP,
            })
            .collect()
    }

    fn join(&self, into: &mut Self::Fact, other: &Self::Fact, visits: u32) {
        for (a, b) in into.iter_mut().zip(other) {
            let merged = a.union(*b);
            *a = if visits >= WIDEN_AFTER {
                // widen the growing side to force termination
                Interval {
                    lo: if merged.lo < a.lo {
                        i128::MIN
                    } else {
                        merged.lo
                    },
                    hi: if merged.hi > a.hi {
                        i128::MAX
                    } else {
                        merged.hi
                    },
                }
            } else {
                merged
            };
        }
    }

    fn transfer(&mut self, step: &Step<'a>, _ctrl: &[usize], fact: &mut Self::Fact) {
        if let StepOp::Set { slot, value } = &step.op {
            fact[*slot] = self.eval_range(value, fact);
        }
    }
}

// ---- liveness ---------------------------------------------------------------

/// Dense slot bitset used as the liveness fact.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub fn empty(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    pub fn union_with(&mut self, o: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&o.words) {
            *a |= b;
        }
    }
}

/// Backward slot liveness. A flow fact is the set of slots whose current
/// value may still be read ("live") at that point.
pub struct Liveness {
    nslots: usize,
    scratch: Vec<usize>,
}

impl Liveness {
    pub fn new(f: &FuncIr) -> Liveness {
        Liveness {
            nslots: f.slots.len(),
            scratch: Vec::new(),
        }
    }

    fn gen_uses(&mut self, e: &Ex, fact: &mut BitSet) {
        self.scratch.clear();
        let mut uses = std::mem::take(&mut self.scratch);
        used_slots(e, &mut uses);
        for &s in &uses {
            fact.insert(s);
        }
        self.scratch = uses;
    }
}

impl<'a> Analysis<'a> for Liveness {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self, _cfg: &Cfg<'a>) -> Self::Fact {
        // nothing is live after the function returns (return values flow
        // through an explicit Eval step, not through slots)
        BitSet::empty(self.nslots)
    }

    fn join(&self, into: &mut Self::Fact, other: &Self::Fact, _visits: u32) {
        into.union_with(other);
    }

    fn transfer(&mut self, step: &Step<'a>, _ctrl: &[usize], fact: &mut Self::Fact) {
        match &step.op {
            StepOp::Set { slot, value } => {
                fact.remove(*slot);
                self.gen_uses(value, fact);
            }
            StepOp::Store { addr, value, .. } => {
                self.gen_uses(addr, fact);
                self.gen_uses(value, fact);
            }
            StepOp::Eval(e) | StepOp::Cond(e) => self.gen_uses(e, fact),
            StepOp::Barrier => {}
        }
    }
}

// ---- uniformity -------------------------------------------------------------

/// Uniformity of one slot: `uniform` = identical on every work-item of the
/// launch; `guniform` = identical within each work-group (implied by
/// `uniform`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Uni {
    pub uniform: bool,
    pub guniform: bool,
}

impl Uni {
    pub const BOTH: Uni = Uni {
        uniform: true,
        guniform: true,
    };
    pub const NONE: Uni = Uni {
        uniform: false,
        guniform: false,
    };

    fn and(self, o: Uni) -> Uni {
        Uni {
            uniform: self.uniform && o.uniform,
            guniform: self.guniform && o.guniform,
        }
    }
}

/// Dataflow uniformity: slot facts iterated to a fixpoint through loops,
/// with assignments under divergent control (a branch whose condition is
/// not uniform decides *which* items execute the write) demoted.
///
/// This refines the sanitizer's syntactic AST pass: copies through
/// temporaries, values carried around loop back-edges, and re-convergence
/// after uniform branches are all handled by the fixpoint instead of by
/// one-shot syntactic rules.
pub struct Uniformity {
    slots: Vec<SlotKind>,
    nparams: usize,
    /// Branch-condition uniformity by statement id, accumulated
    /// monotonically (AND) across solver iterations.
    cond_uni: BTreeMap<usize, Uni>,
    changed: bool,
}

impl Uniformity {
    pub fn new(f: &FuncIr) -> Uniformity {
        Uniformity {
            slots: f.slots.clone(),
            nparams: f.params.len(),
            cond_uni: BTreeMap::new(),
            changed: false,
        }
    }

    /// Uniformity of `e` under the current slot facts.
    pub fn eval_uni(&self, e: &Ex, fact: &[Uni]) -> Uni {
        match e {
            Ex::Const { .. } | Ex::LocalBase { .. } | Ex::PrivBase { .. } => Uni::BOTH,
            Ex::Slot { slot, .. } => fact[*slot],
            Ex::PtrAdd { ptr, offset, .. } => {
                self.eval_uni(ptr, fact).and(self.eval_uni(offset, fact))
            }
            Ex::Load { addr, space, .. } => {
                // documented assumption (shared with the AST sanitizer): a
                // load from a uniform address yields a uniform value within
                // one abstract pass; local memory contents may differ per
                // group, so group-uniformity is all a local load keeps
                let a = self.eval_uni(addr, fact);
                Uni {
                    uniform: a.uniform && *space != AddrSpace::Local,
                    guniform: a.guniform,
                }
            }
            Ex::Bin { l, r, .. } | Ex::Cmp { l, r, .. } => {
                self.eval_uni(l, fact).and(self.eval_uni(r, fact))
            }
            Ex::LogAnd { l, r } | Ex::LogOr { l, r } => {
                self.eval_uni(l, fact).and(self.eval_uni(r, fact))
            }
            Ex::Un { e, .. } | Ex::Cast { e, .. } => self.eval_uni(e, fact),
            Ex::CallBuiltin { b, args, .. } => match b {
                Builtin::GetGlobalId | Builtin::GetLocalId => Uni::NONE,
                Builtin::GetGroupId => Uni {
                    uniform: false,
                    guniform: true,
                },
                Builtin::GetGlobalSize
                | Builtin::GetLocalSize
                | Builtin::GetNumGroups
                | Builtin::GetWorkDim => Uni::BOTH,
                _ if b.is_atomic() => Uni::NONE, // each item sees a distinct old value
                _ => args
                    .iter()
                    .fold(Uni::BOTH, |u, a| u.and(self.eval_uni(a, fact))),
            },
            Ex::CallFunc { .. } => Uni::NONE, // not analyzed across calls
            Ex::Select { cond, t, f, .. } => self
                .eval_uni(cond, fact)
                .and(self.eval_uni(t, fact))
                .and(self.eval_uni(f, fact)),
        }
    }

    /// Combined uniformity of the enclosing branch conditions. Conditions
    /// not yet seen default to uniform — the solver re-iterates (see
    /// [`Analysis::reset_changed`]) until the monotone demotion settles.
    fn ctrl_uni(&self, ctrl: &[usize]) -> Uni {
        ctrl.iter().fold(Uni::BOTH, |u, sid| {
            u.and(self.cond_uni.get(sid).copied().unwrap_or(Uni::BOTH))
        })
    }

    /// Branch-condition uniformity observed by the last solve, keyed by
    /// statement id (for [`super::analysis`]'s divergence refinement).
    pub fn cond_uniformity(&self) -> &BTreeMap<usize, Uni> {
        &self.cond_uni
    }
}

impl<'a> Analysis<'a> for Uniformity {
    type Fact = Vec<Uni>;

    fn boundary(&self, _cfg: &Cfg<'a>) -> Self::Fact {
        // every parameter is launch-uniform (set_arg binds one value for
        // the whole NDRange); non-param slots start zero-initialized
        let _ = self.nparams;
        self.slots.iter().map(|_| Uni::BOTH).collect()
    }

    fn join(&self, into: &mut Self::Fact, other: &Self::Fact, _visits: u32) {
        for (a, b) in into.iter_mut().zip(other) {
            *a = a.and(*b);
        }
    }

    fn transfer(&mut self, step: &Step<'a>, ctrl: &[usize], fact: &mut Self::Fact) {
        match &step.op {
            StepOp::Set { slot, value } => {
                // a write under divergent control executes on a
                // data-dependent subset of items: the slot diverges even
                // if the stored value is uniform
                let u = self.eval_uni(value, fact).and(self.ctrl_uni(ctrl));
                fact[*slot] = u;
            }
            StepOp::Cond(e) => {
                let u = self.eval_uni(e, fact);
                let cur = self.cond_uni.get(&step.sid).copied().unwrap_or(Uni::BOTH);
                let merged = cur.and(u);
                if merged != cur {
                    self.cond_uni.insert(step.sid, merged);
                    self.changed = true;
                }
            }
            _ => {}
        }
    }

    fn reset_changed(&mut self) -> bool {
        std::mem::take(&mut self.changed)
    }
}

// ---- per-line IR facts for the sanitizer ------------------------------------

/// Dataflow facts re-keyed by source line, consumed by
/// [`super::analysis`]'s refined sanitizer pass. Lines are the common
/// currency between the AST checker (which owns the diagnostics) and the
/// executable IR (which the analyses run over); where several accesses
/// share a line the facts are met conservatively.
#[derive(Debug, Default, Clone)]
pub struct IrFacts {
    /// line → uniformity meet of every value stored on that line.
    pub store_uni: BTreeMap<usize, Uni>,
    /// line → `Some(bits)` when every store on the line provably stores
    /// that one constant; `None` once any store is non-constant or two
    /// stores disagree.
    pub store_const: BTreeMap<usize, Option<u64>>,
    /// line → (span of the first fixed-extent array access on it, whether
    /// *every* such access is proved in bounds by the interval analysis).
    pub fixed_bounds: BTreeMap<usize, (Span, bool)>,
}

impl IrFacts {
    /// Run constant, interval, and uniformity analysis over `f` and
    /// project the results onto source lines.
    pub fn for_func(f: &FuncIr) -> IrFacts {
        let cfg = Cfg::build(f);
        let mut out = IrFacts::default();

        // constant stored values
        let mut cp = ConstProp::new(f);
        let cp_sol = solve(&cfg, &mut cp);
        fact_at_each_step(&cfg, &mut ConstProp::new(f), &cp_sol, |step, fact| {
            if let StepOp::Store { value, .. } = &step.op {
                if step.span.line == 0 {
                    return;
                }
                let c = eval_const(value, fact).map(|(bits, _)| bits);
                out.store_const
                    .entry(step.span.line)
                    .and_modify(|e| {
                        if *e != c {
                            *e = None;
                        }
                    })
                    .or_insert(c);
            }
        });

        // uniformity of stored values (the solved instance carries the
        // fixpoint branch-condition facts needed to replay transfers)
        let mut un = Uniformity::new(f);
        let un_sol = solve(&cfg, &mut un);
        let un_eval = Uniformity::new(f); // eval_uni reads only slot facts
        fact_at_each_step(&cfg, &mut un, &un_sol, |step, fact| {
            if let StepOp::Store { value, .. } = &step.op {
                if step.span.line == 0 {
                    return;
                }
                let u = un_eval.eval_uni(value, fact);
                out.store_uni
                    .entry(step.span.line)
                    .and_modify(|e| *e = e.and(u))
                    .or_insert(u);
            }
        });

        // interval bounds of fixed-extent (__local/__private) array indices.
        // Widening erases loop-counter upper bounds, so inside canonical
        // counted-loop bodies the solver fact is re-sharpened with the loop
        // guard before evaluating index ranges.
        let guards = collect_counter_guards(f);
        let mut iv = Intervals::new(f);
        let iv_sol = solve(&cfg, &mut iv);
        let iv_eval = Intervals::new(f);
        fact_at_each_step(&cfg, &mut Intervals::new(f), &iv_sol, |step, fact| {
            if step.span.line == 0 {
                return;
            }
            let mut fact = fact.to_vec();
            for g in guards.iter().filter(|g| g.covers(step.sid)) {
                fact[g.slot] = fact[g.slot].intersect(g.bound);
            }
            let exprs: Vec<&Ex> = match &step.op {
                StepOp::Set { value, .. } => vec![value],
                StepOp::Store { addr, value, .. } => vec![addr, value],
                StepOp::Eval(e) | StepOp::Cond(e) => vec![e],
                StepOp::Barrier => Vec::new(),
            };
            for e in exprs {
                scan_fixed_accesses(e, f, &iv_eval, &fact, step.span, &mut out.fixed_bounds);
            }
        });
        out
    }
}

/// A counted loop `for (j = ...; j CMP const; ...)` that checks its
/// condition before every iteration and whose body never reassigns `j`.
/// Every statement in the body therefore executes under a true guard, so
/// the (widened) interval fact for `j` may be intersected with the bound
/// the comparison implies. The loop's *step* block is deliberately
/// excluded — the increment there runs after the access site and may
/// leave the guard range.
struct CounterGuard {
    /// Inclusive pre-order sid range of the loop body.
    body: (usize, usize),
    slot: usize,
    bound: Interval,
}

impl CounterGuard {
    fn covers(&self, sid: usize) -> bool {
        self.body.0 <= sid && sid <= self.body.1
    }
}

/// The slot constraint implied by `cond` evaluating to true, for
/// conditions of the shape `slot CMP integer-constant`.
fn guard_bound(cond: &Ex) -> Option<(usize, Interval)> {
    let Ex::Cmp { op, l, r, .. } = cond else {
        return None;
    };
    let Ex::Slot { slot, ty } = &**l else {
        return None;
    };
    let Ex::Const { bits, ty: cty } = &**r else {
        return None;
    };
    if !ty.is_integer() || !cty.is_integer() {
        return None;
    }
    let k = if cty.is_signed() {
        *bits as i64 as i128
    } else {
        *bits as i128
    };
    let bound = match op {
        COp::Lt => Interval::new(i128::MIN, k - 1),
        COp::Le => Interval::new(i128::MIN, k),
        COp::Gt => Interval::new(k + 1, i128::MAX),
        COp::Ge => Interval::new(k, i128::MAX),
        COp::Eq => Interval::exact(k),
        COp::Ne => return None,
    };
    Some((*slot, bound))
}

/// Collect every loop whose guard soundly bounds its counter throughout
/// the body (condition checked first, counter not reassigned inside).
fn collect_counter_guards(f: &FuncIr) -> Vec<CounterGuard> {
    let mut out = Vec::new();
    for_each_statement(&f.body, &mut |sid, st| {
        let StKind::Loop {
            cond,
            body,
            check_first: true,
            ..
        } = &st.kind
        else {
            return;
        };
        let Some((slot, bound)) = guard_bound(cond) else {
            return;
        };
        let mut assigns = false;
        let mut n = 0usize;
        for_each_statement(body, &mut |_, s| {
            n += 1;
            if matches!(s.kind, StKind::SetSlot { slot: w, .. } if w == slot) {
                assigns = true;
            }
        });
        if assigns || n == 0 {
            return;
        }
        out.push(CounterGuard {
            body: (sid + 1, sid + n),
            slot,
            bound,
        });
    });
    out
}

/// Find `array[idx]` accesses on fixed-extent allocations and record
/// whether the interval analysis proves `0 <= idx < len`.
fn scan_fixed_accesses(
    e: &Ex,
    f: &FuncIr,
    iv: &Intervals,
    fact: &[Interval],
    span: Span,
    out: &mut BTreeMap<usize, (Span, bool)>,
) {
    if let Ex::PtrAdd { ptr, offset, .. } = e {
        let len = match &**ptr {
            Ex::LocalBase { alloc, .. } => f.local_allocs.get(*alloc).map(|a| a.len),
            Ex::PrivBase { alloc, .. } => f.priv_allocs.get(*alloc).map(|a| a.len),
            _ => None,
        };
        if let Some(len) = len {
            let r = iv.eval_range(offset, fact);
            let ok = r.lo >= 0 && r.hi < len as i128;
            out.entry(span.line)
                .and_modify(|(_, all_ok)| *all_ok &= ok)
                .or_insert((span, ok));
        }
    }
    match e {
        Ex::PtrAdd { ptr, offset, .. } => {
            scan_fixed_accesses(ptr, f, iv, fact, span, out);
            scan_fixed_accesses(offset, f, iv, fact, span, out);
        }
        Ex::Load { addr, .. } => scan_fixed_accesses(addr, f, iv, fact, span, out),
        Ex::Bin { l, r, .. } | Ex::Cmp { l, r, .. } => {
            scan_fixed_accesses(l, f, iv, fact, span, out);
            scan_fixed_accesses(r, f, iv, fact, span, out);
        }
        Ex::LogAnd { l, r } | Ex::LogOr { l, r } => {
            scan_fixed_accesses(l, f, iv, fact, span, out);
            scan_fixed_accesses(r, f, iv, fact, span, out);
        }
        Ex::Un { e, .. } | Ex::Cast { e, .. } => scan_fixed_accesses(e, f, iv, fact, span, out),
        Ex::CallBuiltin { args, .. } | Ex::CallFunc { args, .. } => {
            for a in args {
                scan_fixed_accesses(a, f, iv, fact, span, out);
            }
        }
        Ex::Select { cond, t, f: fe, .. } => {
            scan_fixed_accesses(cond, f, iv, fact, span, out);
            scan_fixed_accesses(t, f, iv, fact, span, out);
            scan_fixed_accesses(fe, f, iv, fact, span, out);
        }
        Ex::Const { .. } | Ex::Slot { .. } | Ex::LocalBase { .. } | Ex::PrivBase { .. } => {}
    }
}

// ---- tests ------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clc::{parser, sema};

    fn compile(src: &str) -> crate::exec::ir::Module {
        let tu = parser::parse(src).expect("parse");
        sema::analyze(&tu).expect("sema")
    }

    fn kernel(m: &crate::exec::ir::Module, name: &str) -> FuncIr {
        m.funcs[m.kernels[name]].clone()
    }

    const LOOPY: &str = r#"
__kernel void k(__global int *out, int n) {
    int i = (int)get_global_id(0);
    int base = n * 4;
    int acc = 0;
    for (int j = 0; j < n; j = j + 1) {
        acc = acc + base;
    }
    if (i < n) {
        out[i] = acc;
    }
}
"#;

    #[test]
    fn cfg_structure_and_dominators() {
        let m = compile(LOOPY);
        let f = kernel(&m, "k");
        let cfg = Cfg::build(&f);
        // entry reaches exit; every reachable block's preds/succs agree
        let rpo = cfg.rpo();
        assert!(rpo.contains(&cfg.entry));
        assert!(rpo.contains(&cfg.exit));
        for &b in &rpo {
            for &s in &cfg.blocks[b].succs {
                assert!(cfg.blocks[s].preds.contains(&b));
            }
        }
        // a loop exists: some reachable block has a back edge (a successor
        // that dominates it)
        let idom = cfg.dominators();
        let back_edges = rpo
            .iter()
            .flat_map(|&b| cfg.blocks[b].succs.iter().map(move |&s| (b, s)))
            .filter(|&(b, s)| cfg.dominates(&idom, s, b))
            .count();
        assert_eq!(back_edges, 1, "exactly one loop in the kernel");
        // the entry dominates everything reachable
        for &b in &rpo {
            assert!(cfg.dominates(&idom, cfg.entry, b));
        }
    }

    #[test]
    fn statement_numbering_matches_cfg_sids() {
        let m = compile(LOOPY);
        let f = kernel(&m, "k");
        let cfg = Cfg::build(&f);
        let mut spans = BTreeMap::new();
        for_each_statement(&f.body, &mut |sid, st| {
            spans.insert(sid, st.span);
        });
        assert_eq!(spans.len(), cfg.n_statements);
        for block in &cfg.blocks {
            for step in &block.steps {
                assert_eq!(
                    spans.get(&step.sid),
                    Some(&step.span),
                    "CFG step sid/span must match the tree numbering"
                );
            }
        }
    }

    #[test]
    fn const_prop_proves_loop_invariant_constant() {
        let src = r#"
__kernel void k(__global int *out) {
    int a = 3;
    int b = a + 4;
    int c = b;
    out[get_global_id(0)] = c;
}
"#;
        let m = compile(src);
        let f = kernel(&m, "k");
        let cfg = Cfg::build(&f);
        let mut cp = ConstProp::new(&f);
        let sol = solve(&cfg, &mut cp);
        // at the store, c must be the constant 7
        let mut found = false;
        fact_at_each_step(&cfg, &mut ConstProp::new(&f), &sol, |step, fact| {
            if let StepOp::Store { value, .. } = &step.op {
                assert_eq!(
                    eval_const(value, fact),
                    Some((7, ScalarType::I32)),
                    "store value folds to 7"
                );
                found = true;
            }
        });
        assert!(found, "kernel has a store");
    }

    #[test]
    fn const_prop_kills_facts_across_branches() {
        let src = r#"
__kernel void k(__global int *out, int n) {
    int a = 3;
    if (n > 0) {
        a = 5;
    }
    out[get_global_id(0)] = a;
}
"#;
        let m = compile(src);
        let f = kernel(&m, "k");
        let cfg = Cfg::build(&f);
        let mut cp = ConstProp::new(&f);
        let sol = solve(&cfg, &mut cp);
        fact_at_each_step(&cfg, &mut ConstProp::new(&f), &sol, |step, fact| {
            if let StepOp::Store { value, .. } = &step.op {
                assert_eq!(
                    eval_const(value, fact),
                    None,
                    "3 joined with 5 must not stay constant"
                );
            }
        });
    }

    #[test]
    fn intervals_bound_a_guarded_loop_counter() {
        let src = r#"
__kernel void k(__global int *out) {
    int acc = 0;
    for (int j = 0; j < 8; j = j + 1) {
        acc = acc + 1;
    }
    out[get_global_id(0)] = acc;
}
"#;
        let m = compile(src);
        let f = kernel(&m, "k");
        let cfg = Cfg::build(&f);
        let mut iv = Intervals::new(&f);
        let sol = solve(&cfg, &mut iv);
        // j only ever takes values 0..=8 (8 at the failing test); the
        // widened analysis must at least prove non-negativity without
        // claiming anything above the type range
        let mut checked = false;
        fact_at_each_step(&cfg, &mut Intervals::new(&f), &sol, |step, fact| {
            if let StepOp::Set { slot, value } = &step.op {
                // the increment j = j + 1 (value reads the same slot)
                let mut uses = Vec::new();
                used_slots(value, &mut uses);
                if uses == vec![*slot] && matches!(value, Ex::Bin { op: BOp::Add, .. }) {
                    let r = fact[*slot];
                    assert!(r.lo >= 0, "loop counter proved non-negative: {r:?}");
                    checked = true;
                }
            }
        });
        assert!(checked, "found the increment");
    }

    #[test]
    fn ir_facts_prove_loop_guarded_private_accesses() {
        let src = r#"
__kernel void k(__global float *out, __global const float *in) {
    float tmp[8];
    int i = (int)get_global_id(0);
    for (int j = 0; j < 8; j = j + 1) {
        tmp[j] = in[i * 8 + j];
    }
    float s = 0.0f;
    for (int j = 0; j < 8; j = j + 1) {
        s = s + tmp[j];
    }
    out[i] = s;
}
"#;
        let m = compile(src);
        let f = kernel(&m, "k");
        let facts = IrFacts::for_func(&f);
        // both tmp[j] lines carry fixed-extent accesses, and the counter
        // guard j < 8 sharpens the widened fact back to [0, 7]
        assert_eq!(facts.fixed_bounds.len(), 2, "{:?}", facts.fixed_bounds);
        assert!(
            facts.fixed_bounds.values().all(|(_, ok)| *ok),
            "loop-guarded scratch accesses proved in bounds: {:?}",
            facts.fixed_bounds
        );
    }

    #[test]
    fn counter_guard_refuses_counters_reassigned_in_the_body() {
        let src = r#"
__kernel void k(__global float *out, int n) {
    float tmp[8];
    for (int j = 0; j < 8; j = j + 1) {
        tmp[j] = 0.0f;
        if (n > 4) {
            j = n;
        }
        tmp[j] = 1.0f;
    }
    out[0] = tmp[0];
}
"#;
        let m = compile(src);
        let f = kernel(&m, "k");
        let facts = IrFacts::for_func(&f);
        // the body reassigns j, so the guard must NOT apply — neither
        // tmp[j] line may claim an in-bounds proof
        let unproved = facts.fixed_bounds.values().filter(|(_, ok)| !*ok).count();
        assert_eq!(
            unproved, 2,
            "reassigned counter must stay unproved: {:?}",
            facts.fixed_bounds
        );
    }

    #[test]
    fn intervals_prove_masked_index_bounds() {
        let src = r#"
__kernel void k(__global int *out) {
    int i = (int)get_global_id(0);
    int j = i & 15;
    out[j] = 1;
}
"#;
        let m = compile(src);
        let f = kernel(&m, "k");
        let cfg = Cfg::build(&f);
        let mut iv = Intervals::new(&f);
        let sol = solve(&cfg, &mut iv);
        let mut found = false;
        let replay = Intervals::new(&f);
        fact_at_each_step(&cfg, &mut Intervals::new(&f), &sol, |step, fact| {
            if let StepOp::Store {
                addr: Ex::PtrAdd { offset, .. },
                ..
            } = &step.op
            {
                let r = replay.eval_range(offset, fact);
                assert_eq!((r.lo, r.hi), (0, 15), "masked index proved in [0,15]");
                found = true;
            }
        });
        assert!(found, "kernel has an indexed store");
    }

    #[test]
    fn liveness_finds_dead_store_and_live_accumulator() {
        let src = r#"
__kernel void k(__global int *out) {
    int dead = 42;
    int live = 7;
    out[get_global_id(0)] = live;
}
"#;
        let m = compile(src);
        let f = kernel(&m, "k");
        let cfg = Cfg::build(&f);
        let mut lv = Liveness::new(&f);
        let sol = solve(&cfg, &mut lv);
        // at the Set of `dead`, the assigned slot must be dead afterwards;
        // at the Set of `live` it must be live afterwards
        let mut dead_checked = false;
        let mut live_checked = false;
        fact_at_each_step(&cfg, &mut Liveness::new(&f), &sol, |step, live_after| {
            if let StepOp::Set { slot, value } = &step.op {
                if let Some((42, _)) = eval_const(value, &[]) {
                    assert!(!live_after.contains(*slot), "42 is never read");
                    dead_checked = true;
                }
                if let Some((7, _)) = eval_const(value, &[]) {
                    assert!(live_after.contains(*slot), "7 is stored to memory");
                    live_checked = true;
                }
            }
        });
        assert!(dead_checked && live_checked);
    }

    #[test]
    fn uniformity_tracks_copies_and_divergent_writes() {
        let src = r#"
__kernel void k(__global int *out, int n) {
    int u = n * 2;
    int v = u;
    int g = (int)get_group_id(0);
    int d = 0;
    if ((int)get_global_id(0) < n) {
        d = 1;
    }
    int w = 0;
    if (n > 3) {
        w = 5;
    }
    out[get_global_id(0)] = v + g + d + w;
}
"#;
        let m = compile(src);
        let f = kernel(&m, "k");
        let cfg = Cfg::build(&f);
        let mut un = Uniformity::new(&f);
        let sol = solve(&cfg, &mut un);
        // inspect the final store's operand slots via the flow facts
        let mut seen = Vec::new();
        let mut replay = Uniformity::new(&f);
        // replay must accumulate the same condition facts the solve did
        replay.cond_uni = un.cond_uniformity().clone();
        fact_at_each_step(&cfg, &mut replay, &sol, |step, fact| {
            if let StepOp::Store { value, .. } = &step.op {
                seen.push(Uniformity::new(&f).eval_uni(value, fact));
            }
        });
        assert_eq!(seen.len(), 1);
        // the sum mixes gid-dependent data: not uniform in any sense
        assert_eq!(seen[0], Uni::NONE);
        // and slot-level claims: find facts at the store
        let mut checked = false;
        let mut replay2 = Uniformity::new(&f);
        replay2.cond_uni = un.cond_uniformity().clone();
        fact_at_each_step(&cfg, &mut replay2, &sol, |step, fact| {
            if let StepOp::Store { .. } = &step.op {
                // slots in declaration order after the params: u, v, g, d, w
                // (sema allocates value slots sequentially past the params)
                let base = f.params.len();
                assert_eq!(fact[base], Uni::BOTH, "u = n*2 is uniform");
                assert_eq!(fact[base + 1], Uni::BOTH, "v copies a uniform");
                assert_eq!(
                    fact[base + 2],
                    Uni {
                        uniform: false,
                        guniform: true
                    },
                    "group id is group-uniform"
                );
                assert_eq!(fact[base + 3], Uni::NONE, "write under divergent branch");
                assert_eq!(fact[base + 4], Uni::BOTH, "write under uniform branch");
                checked = true;
            }
        });
        assert!(checked);
        let _ = sol;
    }

    #[test]
    fn uniformity_loop_fixpoint_demotes_carried_values() {
        // `x` becomes item-dependent on iteration 1; the fixpoint must
        // carry that demotion around the back edge
        let src = r#"
__kernel void k(__global int *out, int n) {
    int x = 0;
    for (int j = 0; j < n; j = j + 1) {
        x = x + (int)get_local_id(0);
    }
    out[get_global_id(0)] = x;
}
"#;
        let m = compile(src);
        let f = kernel(&m, "k");
        let cfg = Cfg::build(&f);
        let mut un = Uniformity::new(&f);
        let sol = solve(&cfg, &mut un);
        let mut checked = false;
        let mut replay = Uniformity::new(&f);
        replay.cond_uni = un.cond_uniformity().clone();
        fact_at_each_step(&cfg, &mut replay, &sol, |step, fact| {
            if let StepOp::Store { .. } = &step.op {
                let base = f.params.len();
                assert_eq!(fact[base], Uni::NONE, "x absorbed a lane-varying term");
                checked = true;
            }
        });
        assert!(checked);
    }

    #[test]
    fn pure_nontrapping_classification() {
        let c1 = Ex::Const {
            bits: 1,
            ty: ScalarType::I32,
        };
        let c0 = Ex::Const {
            bits: 0,
            ty: ScalarType::I32,
        };
        let slot = Ex::Slot {
            slot: 0,
            ty: ScalarType::I32,
        };
        let div_const = Ex::Bin {
            op: BOp::Div,
            ty: ScalarType::I32,
            l: Box::new(slot.clone()),
            r: Box::new(c1.clone()),
        };
        assert!(pure_nontrapping(&div_const), "divisor is a nonzero const");
        let div_zero = Ex::Bin {
            op: BOp::Div,
            ty: ScalarType::I32,
            l: Box::new(slot.clone()),
            r: Box::new(c0),
        };
        assert!(!pure_nontrapping(&div_zero), "constant zero divisor traps");
        let div_slot = Ex::Bin {
            op: BOp::Div,
            ty: ScalarType::I32,
            l: Box::new(c1.clone()),
            r: Box::new(slot.clone()),
        };
        assert!(!pure_nontrapping(&div_slot), "unknown divisor may trap");
        let fdiv = Ex::Bin {
            op: BOp::Div,
            ty: ScalarType::F32,
            l: Box::new(c1.clone()),
            r: Box::new(slot.clone()),
        };
        assert!(pure_nontrapping(&fdiv), "float division never traps");
        let load = Ex::Load {
            addr: Box::new(slot.clone()),
            elem: ScalarType::I32,
            space: AddrSpace::Global,
        };
        assert!(!pure_nontrapping(&load), "loads can fault");
        let atomic = Ex::CallBuiltin {
            b: Builtin::AtomicAdd,
            ty: ScalarType::I32,
            args: vec![slot.clone(), c1.clone()],
        };
        assert!(!pure_nontrapping(&atomic), "atomics are side-effecting");
        let geom = Ex::CallBuiltin {
            b: Builtin::GetGlobalId,
            ty: ScalarType::U64,
            args: vec![c1],
        };
        assert!(pure_nontrapping(&geom), "geometry queries are pure");
    }

    #[test]
    fn eval_const_uses_interpreter_arithmetic() {
        // -7 / 2 truncates toward zero exactly like the interpreter
        let l = Ex::Const {
            bits: (-7i64) as u64,
            ty: ScalarType::I32,
        };
        let r = Ex::Const {
            bits: 2,
            ty: ScalarType::I32,
        };
        let div = Ex::Bin {
            op: BOp::Div,
            ty: ScalarType::I32,
            l: Box::new(l),
            r: Box::new(r),
        };
        let (bits, ty) = eval_const(&div, &[]).expect("folds");
        assert_eq!(ty, ScalarType::I32);
        assert_eq!(
            bits,
            ops::bin_op(BOp::Div, ScalarType::I32, (-7i64) as u64, 2).unwrap()
        );
        // division by a constant zero must NOT fold (it traps at run time)
        let div0 = Ex::Bin {
            op: BOp::Div,
            ty: ScalarType::I32,
            l: Box::new(Ex::Const {
                bits: 7,
                ty: ScalarType::I32,
            }),
            r: Box::new(Ex::Const {
                bits: 0,
                ty: ScalarType::I32,
            }),
        };
        assert_eq!(eval_const(&div0, &[]), None);
    }
}
