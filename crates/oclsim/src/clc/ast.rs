//! Abstract syntax tree for the OpenCL C subset.

use std::fmt;

use crate::types::ScalarType;

/// A source position: 1-based line and column. A column of 0 means "column
/// unknown" (e.g. positions synthesised for generated code) and is omitted
/// from the rendered form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    pub line: usize,
    pub col: usize,
}

impl Span {
    /// Construct a span from a 1-based line and column.
    pub fn new(line: usize, col: usize) -> Span {
        Span { line, col }
    }

    /// A span carrying only a line (column unknown).
    pub fn line_only(line: usize) -> Span {
        Span { line, col: 0 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col == 0 {
            write!(f, "{}", self.line)
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// OpenCL address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrSpace {
    /// `__global`: device memory visible to every work-item.
    Global,
    /// `__local`: per-work-group scratchpad.
    Local,
    /// `__constant`: host-writable, kernel-read-only memory.
    Constant,
    /// `__private`: per-work-item registers/stack (the default).
    Private,
}

impl AddrSpace {
    /// OpenCL C spelling.
    pub fn cl_name(self) -> &'static str {
        match self {
            AddrSpace::Global => "__global",
            AddrSpace::Local => "__local",
            AddrSpace::Constant => "__constant",
            AddrSpace::Private => "__private",
        }
    }
}

/// A (possibly pointer) type as written in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClType {
    Void,
    Scalar(ScalarType),
    /// One level of pointer indirection with an address space.
    Ptr(AddrSpace, ScalarType),
}

/// Binary operators (also used as the `op` of compound assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// True for operators whose result is `bool`/`int` 0-or-1.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for `&&` / `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }
}

/// Prefix unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `+e` (no-op, kept for fidelity)
    Plus,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
    /// `*e`
    Deref,
    /// `&e`
    AddrOf,
}

/// Postfix `++` / `--`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostOp {
    Inc,
    Dec,
}

/// Expressions. Assignments are expressions syntactically (as in C);
/// semantic analysis restricts them to statement-like positions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit {
        value: u64,
        unsigned: bool,
        long: bool,
    },
    FloatLit {
        value: f64,
        f32: bool,
    },
    Ident(String),
    Bin {
        op: BinOp,
        l: Box<Expr>,
        r: Box<Expr>,
    },
    Un {
        op: UnOp,
        e: Box<Expr>,
    },
    Post {
        op: PostOp,
        e: Box<Expr>,
    },
    Assign {
        op: Option<BinOp>,
        target: Box<Expr>,
        value: Box<Expr>,
    },
    Ternary {
        cond: Box<Expr>,
        t: Box<Expr>,
        f: Box<Expr>,
    },
    Call {
        name: String,
        args: Vec<Expr>,
    },
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Cast {
        ty: ClType,
        e: Box<Expr>,
    },
}

/// One variable declared by a declaration statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    pub name: String,
    /// `Some(len_expr)` for `T name[len]` array declarators.
    pub array_len: Option<Expr>,
    /// Extra pointer level on the declarator (`T *name`).
    pub is_pointer: bool,
    pub init: Option<Expr>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `__local float s[N];`, `int i = 0, j;` ...
    Decl {
        space: AddrSpace,
        base: ScalarType,
        decls: Vec<Declarator>,
    },
    Expr(Expr),
    If {
        cond: Expr,
        then_blk: Vec<Stmt>,
        else_blk: Vec<Stmt>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    DoWhile {
        body: Vec<Stmt>,
        cond: Expr,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: ClType,
    /// `const`-qualified (informational; `__constant` is what matters).
    pub is_const: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub is_kernel: bool,
    pub ret: ClType,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    pub funcs: Vec<FuncDef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogAnd.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }

    #[test]
    fn addr_space_names() {
        assert_eq!(AddrSpace::Global.cl_name(), "__global");
        assert_eq!(AddrSpace::Private.cl_name(), "__private");
    }

    #[test]
    fn span_rendering() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
        assert_eq!(Span::line_only(12).to_string(), "12");
    }
}
