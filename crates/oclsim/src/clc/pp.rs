//! Minimal C preprocessor for OpenCL C sources.
//!
//! Supports what the benchmark kernels (NAS/SHOC/AMD-APP style) need:
//! `//` and `/* */` comments, line continuations, object-like `#define`,
//! `#undef`, `#ifdef` / `#ifndef` / `#else` / `#endif`, and `-D` build
//! options. Function-like macros and `#include` are diagnosed as
//! unsupported rather than silently mis-expanded.

use std::collections::HashMap;

use crate::error::{Error, Result};

/// Expand preprocessor directives and macros in `source`.
///
/// `defines` holds the `-D` build options (name → replacement, empty string
/// for a bare `-D NAME`).
pub fn preprocess(source: &str, defines: &HashMap<String, String>) -> Result<String> {
    let no_comments = strip_comments(source);
    let joined = join_continuations(&no_comments);

    let mut macros: HashMap<String, String> = defines.clone();
    let mut out = String::with_capacity(joined.len());
    // condition stack: (currently_active, any_branch_taken)
    let mut cond: Vec<(bool, bool)> = Vec::new();

    for (lineno, line) in joined.lines().enumerate() {
        let active = cond.iter().all(|&(a, _)| a);
        let trimmed = line.trim_start();
        if let Some(directive) = trimmed.strip_prefix('#') {
            let directive = directive.trim_start();
            let (name, rest) = split_word(directive);
            match name {
                "define" if active => {
                    let (mname, body) = split_word(rest);
                    if mname.is_empty() {
                        return Err(pp_err(lineno, "#define without a name"));
                    }
                    if body.starts_with('(') || rest.starts_with(&format!("{mname}(")) {
                        return Err(pp_err(
                            lineno,
                            "function-like macros are not supported by oclsim",
                        ));
                    }
                    macros.insert(mname.to_string(), body.trim().to_string());
                }
                "undef" if active => {
                    let (mname, _) = split_word(rest);
                    macros.remove(mname);
                }
                "ifdef" => {
                    let (mname, _) = split_word(rest);
                    let taken = active && macros.contains_key(mname);
                    cond.push((taken, taken));
                }
                "ifndef" => {
                    let (mname, _) = split_word(rest);
                    let taken = active && !macros.contains_key(mname);
                    cond.push((taken, taken));
                }
                "else" => {
                    let (a, taken) = cond
                        .pop()
                        .ok_or_else(|| pp_err(lineno, "#else without matching #if"))?;
                    let parent_active = cond.iter().all(|&(x, _)| x);
                    let _ = a;
                    cond.push((parent_active && !taken, true));
                }
                "endif" => {
                    cond.pop()
                        .ok_or_else(|| pp_err(lineno, "#endif without matching #if"))?;
                }
                "pragma" => { /* OPENCL EXTENSION pragmas etc. are accepted and ignored */ }
                "include" => {
                    return Err(pp_err(lineno, "#include is not supported by oclsim"));
                }
                _ if !active => { /* skipped branch: ignore unknown directives */ }
                other => {
                    return Err(pp_err(lineno, &format!("unsupported directive #{other}")));
                }
            }
            out.push('\n'); // keep line numbering stable
            continue;
        }
        if active {
            out.push_str(&expand_line(line, &macros, lineno)?);
        }
        out.push('\n');
    }
    if !cond.is_empty() {
        return Err(Error::BuildFailure("unterminated #if block".into()));
    }
    Ok(out)
}

fn pp_err(lineno: usize, msg: &str) -> Error {
    Error::BuildFailure(format!("preprocessor, line {}: {msg}", lineno + 1))
}

fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    (&s[..end], &s[end..])
}

/// Replace comments with spaces, preserving newlines so diagnostics keep
/// their line numbers.
fn strip_comments(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            out.push(' ');
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Join lines ending in a backslash, preserving the physical line count:
/// every newline consumed by a continuation is re-emitted as a blank line
/// after the joined logical line, so all later lines — and therefore all
/// later diagnostics and per-line counters — keep their original numbers.
fn join_continuations(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut deferred = 0usize; // newlines owed once the logical line ends
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' && i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
            out.push(' ');
            deferred += 1;
            i += 2;
        } else if bytes[i] == b'\n' {
            out.push('\n');
            out.extend(std::iter::repeat_n('\n', deferred));
            deferred = 0;
            i += 1;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out.extend(std::iter::repeat_n('\n', deferred));
    out
}

/// Expand object-like macros in one line, with a recursion guard.
fn expand_line(line: &str, macros: &HashMap<String, String>, lineno: usize) -> Result<String> {
    let mut cur = line.to_string();
    for _ in 0..32 {
        let (next, changed) = expand_once(&cur, macros);
        if !changed {
            return Ok(next);
        }
        cur = next;
    }
    Err(pp_err(
        lineno,
        "macro expansion too deep (recursive #define?)",
    ))
}

fn expand_once(line: &str, macros: &HashMap<String, String>) -> (String, bool) {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut changed = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &line[start..i];
            if let Some(body) = macros.get(word) {
                out.push_str(body);
                changed = true;
            } else {
                out.push_str(word);
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    (out, changed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(src: &str) -> String {
        preprocess(src, &HashMap::new()).unwrap()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let src = "int a; // trailing\nint /* mid */ b;\n/* multi\nline */ int c;";
        let out = pp(src);
        assert!(out.contains("int a;"));
        assert!(!out.contains("trailing"));
        assert!(out.contains("int   b;"));
        assert!(out.contains("int c;"));
        assert_eq!(
            out.lines().count(),
            src.lines().count(),
            "line numbering preserved"
        );
    }

    #[test]
    fn object_macro_expansion() {
        let out = pp("#define N 128\n#define TWO_N (N*2)\nint a[TWO_N];\n");
        assert!(out.contains("int a[(128*2)];"), "{out}");
    }

    #[test]
    fn undef_stops_expansion() {
        let out = pp("#define N 4\n#undef N\nint a = N;\n");
        assert!(out.contains("int a = N;"));
    }

    #[test]
    fn ifdef_branches() {
        let src = "#define USE_A\n#ifdef USE_A\nint a;\n#else\nint b;\n#endif\n";
        let out = pp(src);
        assert!(out.contains("int a;") && !out.contains("int b;"));
        let src = "#ifdef MISSING\nint a;\n#else\nint b;\n#endif\n";
        let out = pp(src);
        assert!(!out.contains("int a;") && out.contains("int b;"));
    }

    #[test]
    fn ifndef_and_nested_conditionals() {
        let src = "#ifndef X\n#ifdef Y\nint a;\n#endif\nint b;\n#endif\n";
        let out = pp(src);
        assert!(out.contains("int b;") && !out.contains("int a;"));
    }

    #[test]
    fn build_option_defines() {
        let mut defs = HashMap::new();
        defs.insert("M".to_string(), "8".to_string());
        let out = preprocess("int x = M;", &defs).unwrap();
        assert!(out.contains("int x = 8;"));
    }

    #[test]
    fn word_boundaries_respected() {
        let out = pp("#define N 9\nint NN = N; int aN = 1;\n");
        // `NN` and `aN` must not be rewritten; the lone `N` must be
        assert!(out.contains("int NN = 9;"), "{out}");
        assert!(out.contains("int aN = 1;"), "{out}");
    }

    #[test]
    fn recursive_macro_diagnosed() {
        let err = preprocess("#define A B\n#define B A\nint x = A;\n", &HashMap::new());
        assert!(err.is_err());
    }

    #[test]
    fn function_like_macro_rejected() {
        assert!(preprocess("#define F(x) ((x)*2)\n", &HashMap::new()).is_err());
    }

    #[test]
    fn include_rejected_pragma_ignored() {
        assert!(preprocess("#include \"foo.h\"\n", &HashMap::new()).is_err());
        assert!(preprocess(
            "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nint a;\n",
            &HashMap::new()
        )
        .is_ok());
    }

    #[test]
    fn line_continuation() {
        let out = pp("#define LONG 1 + \\\n 2\nint x = LONG;\n");
        let squeezed: String = out.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(squeezed.contains("intx=1+2;"), "{out}");
    }

    #[test]
    fn continuations_preserve_line_numbers() {
        // Macro-heavy source: a 3-physical-line #define followed by code.
        // Every line after the continuation must keep its original number.
        let src = "#define A 1 + \\\n 2 + \\\n 3\nint x = A;\nint y;\n";
        let out = pp(src);
        assert_eq!(
            out.lines().count(),
            src.lines().count(),
            "physical line count preserved:\n{out}"
        );
        let lines: Vec<&str> = out.lines().collect();
        let squeezed: String = lines[3].chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(squeezed, "intx=1+2+3;", "{out}");
        assert_eq!(lines[4].trim(), "int y;", "{out}");
    }

    #[test]
    fn continuation_inside_code_keeps_later_lines() {
        let src = "int a = 1 +\\\n 2;\nint b;\n";
        let out = pp(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert_eq!(out.lines().nth(2).unwrap().trim(), "int b;");
    }

    #[test]
    fn unterminated_if_diagnosed() {
        assert!(preprocess("#ifdef A\nint x;\n", &HashMap::new()).is_err());
    }
}
