//! Static kernel sanitizer: barrier-divergence, cross-work-item race, and
//! out-of-bounds checking over the parsed (and semantically checked) AST.
//!
//! The analysis abstract-interprets each kernel once, tracking every integer
//! value as an **affine polynomial** over symbolic coordinates — global id,
//! local id, group id, scalar parameters, bounded loop counters, and opaque
//! unknowns — together with two uniformity bits (uniform within a work-group
//! / uniform across the whole NDRange). Three checkers run over the result:
//!
//! * **Barrier divergence** — a `barrier(...)` (or a call to a helper that
//!   contains one) reached while any enclosing branch or loop condition
//!   depends on the work-item id is undefined behaviour; flagged as an error.
//! * **Races** — every global/local memory access is recorded with its index
//!   polynomial and its *barrier epoch* (the count of group-level barriers
//!   executed so far; loop bodies are walked twice so cross-iteration pairs
//!   land in the right epochs). Two accesses to the same buffer in the same
//!   epoch, at least one a write, are then proven benign (injective per-item
//!   index, guard-derived disjoint intervals, or uniform address with a
//!   uniform value) or reported. Unprovable pairs downgrade to warnings;
//!   distinct work-items writing provably different values through the same
//!   address is a definite race (error).
//! * **Out of bounds** — constant/bounded indices into `__local`/`__private`
//!   arrays are checked against their declared extents at build time, and
//!   unguarded global accesses are kept as [`LaunchAccess`] records so an
//!   enqueue can evaluate them against the bound buffers and geometry and
//!   reject the launch before execution (see `Kernel::lint_launch`).
//!
//! Known limits (see DESIGN.md for the full list): read-write overlaps on
//! *global* memory are not checked (in-place relaxation patterns such as
//! Floyd–Warshall are deliberately accepted), helper-function bodies are not
//! race-analysed (only their barrier/id usage propagates), injectivity of
//! multi-axis indices assumes the kernel is launched with as many axes as it
//! queries, and barriers inside `if` bodies do not advance the epoch.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use crate::clc::ast::{self, AddrSpace, BinOp, ClType, Expr, PostOp, Span, Stmt, StmtKind, UnOp};
use crate::clc::dataflow::IrFacts;
use crate::clc::{parser, pp, sema};
use crate::error::Result;
use crate::exec::ir::Module as IrModule;

// ---------------------------------------------------------------------------
// public diagnostics types
// ---------------------------------------------------------------------------

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a conservative finding ruled out (or an access proved
    /// safe) by the IR dataflow analyses. Never fails a build.
    Note,
    /// Possible problem the analysis could not prove either way.
    Warning,
    /// Definite problem (undefined behaviour or a guaranteed fault).
    Error,
}

/// Which checker produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagKind {
    BarrierDivergence,
    DataRace,
    OutOfBounds,
    /// A conservative finding demoted (or an access positively verified) by
    /// the dataflow-backed refinement; always [`Severity::Note`].
    ProvedSafe,
    /// The compiled work-group backend declined this kernel and it will run
    /// on the reference SIMT interpreter; always [`Severity::Note`].
    BackendFallback,
}

impl DiagKind {
    fn label(self) -> &'static str {
        match self {
            DiagKind::BarrierDivergence => "barrier-divergence",
            DiagKind::DataRace => "race",
            DiagKind::OutOfBounds => "out-of-bounds",
            DiagKind::ProvedSafe => "proved-safe",
            DiagKind::BackendFallback => "backend-fallback",
        }
    }
}

/// One structured, span-carrying finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub kernel: String,
    pub span: Span,
    pub severity: Severity,
    pub kind: DiagKind,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(
            f,
            "{sev}[{}] kernel `{}`, line {}: {}",
            self.kind.label(),
            self.kernel,
            self.span,
            self.message
        )
    }
}

impl Diagnostic {
    /// Render the diagnostic with a caret snippet of the offending source
    /// line, using the same gutter format as the profile annotator (see
    /// [`crate::clc::snippet`]):
    ///
    /// ```text
    /// warning[uncoalesced] kernel `t`, line 3: stride-N access
    ///  3 |     dst[x * h + y] = v;
    ///    |     ^ stride-N access
    /// ```
    pub fn render_with_source(&self, source: &str) -> String {
        format!(
            "{self}\n{}",
            super::snippet::render_snippet(source, self.span.line, self.span.col, &self.message)
        )
    }
}

/// How strictly build/launch react to analysis findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strictness {
    /// Skip the analysis entirely.
    Off,
    /// Record findings in the build log / diagnostics sink, never fail.
    #[default]
    Warn,
    /// Error-severity findings fail the build or reject the launch.
    Deny,
}

/// The result of analysing a translation unit.
#[derive(Debug, Default)]
pub struct Analysis {
    pub diagnostics: Vec<Diagnostic>,
    /// Per-kernel records used by the enqueue-time bounds check.
    pub kernels: HashMap<String, KernelSummary>,
}

/// Per-kernel analysis results kept beyond build time.
#[derive(Debug, Default)]
pub struct KernelSummary {
    pub launch_accesses: Vec<LaunchAccess>,
}

/// An unconditional global-memory access whose index polynomial can be
/// range-evaluated once the launch geometry and scalar arguments are known.
#[derive(Debug, Clone)]
pub struct LaunchAccess {
    /// Kernel parameter index of the buffer being accessed.
    pub param: usize,
    pub param_name: String,
    /// Element size in bytes.
    pub elem_size: usize,
    pub is_write: bool,
    pub span: Span,
    idx: Poly,
}

impl LaunchAccess {
    /// Inclusive element-index bounds of this access for the given geometry
    /// (`global`/`local` per axis) and integer scalar argument values by
    /// parameter index. `None` when a needed scalar is missing/non-integer.
    pub fn element_bounds(
        &self,
        global: &[usize; 3],
        local: &[usize; 3],
        scalars: &HashMap<usize, i128>,
    ) -> Option<(i128, i128)> {
        let rng = |s: &Sym| -> Option<(i128, i128)> {
            match *s {
                Sym::Gid(d) => Some((0, global[d as usize] as i128 - 1)),
                Sym::Lid(d) => Some((0, local[d as usize] as i128 - 1)),
                Sym::Grp(d) => Some((
                    0,
                    (global[d as usize] / local[d as usize].max(1)) as i128 - 1,
                )),
                Sym::Param(p) => scalars.get(&(p as usize)).map(|&v| (v, v)),
                Sym::LoopVar { lo, hi, .. } => Some((lo as i128, hi as i128)),
                Sym::Opaque { .. } => None,
            }
        };
        let mut total = (self.idx.k, self.idx.k);
        for (mono, &c) in &self.idx.terms {
            let mut iv = (c, c);
            for s in mono {
                iv = mul_iv(iv, rng(s)?);
            }
            total = (total.0 + iv.0, total.1 + iv.1);
        }
        Some(total)
    }
}

fn mul_iv(a: (i128, i128), b: (i128, i128)) -> (i128, i128) {
    let c = [a.0 * b.0, a.0 * b.1, a.1 * b.0, a.1 * b.1];
    (*c.iter().min().unwrap(), *c.iter().max().unwrap())
}

// ---------------------------------------------------------------------------
// symbolic domain
// ---------------------------------------------------------------------------

/// A symbolic coordinate. `Ord` so monomials have a canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Sym {
    /// `get_global_id(d)`
    Gid(u8),
    /// `get_local_id(d)`
    Lid(u8),
    /// `get_group_id(d)`
    Grp(u8),
    /// Scalar kernel parameter (by parameter index).
    Param(u16),
    /// A `for` counter with compile-time bounds `lo..=hi`.
    LoopVar { id: u32, lo: i64, hi: i64 },
    /// An unknown value; `varying` = may differ between work-items of a group.
    Opaque { id: u32, varying: bool },
}

/// An affine (multi-linear) polynomial: sum of `coeff * product(syms)` plus a
/// constant. Monomials are sorted symbol vectors, so equality is structural.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Poly {
    terms: BTreeMap<Vec<Sym>, i128>,
    k: i128,
}

impl Poly {
    fn konst(k: i128) -> Poly {
        Poly {
            terms: BTreeMap::new(),
            k,
        }
    }

    fn sym(s: Sym) -> Poly {
        let mut terms = BTreeMap::new();
        terms.insert(vec![s], 1);
        Poly { terms, k: 0 }
    }

    fn is_const(&self) -> Option<i128> {
        self.terms.is_empty().then_some(self.k)
    }

    fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        out.k += other.k;
        for (m, c) in &other.terms {
            let e = out.terms.entry(m.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(m);
            }
        }
        out
    }

    fn neg(&self) -> Poly {
        Poly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), -c)).collect(),
            k: -self.k,
        }
    }

    fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.neg())
    }

    fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::konst(self.k * other.k);
        for (m, c) in &self.terms {
            if other.k != 0 {
                let e = out.terms.entry(m.clone()).or_insert(0);
                *e += c * other.k;
            }
        }
        for (m, c) in &other.terms {
            if self.k != 0 {
                let e = out.terms.entry(m.clone()).or_insert(0);
                *e += c * self.k;
            }
        }
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let mut m: Vec<Sym> = m1.iter().chain(m2.iter()).copied().collect();
                m.sort();
                let e = out.terms.entry(m).or_insert(0);
                *e += c1 * c2;
            }
        }
        out.terms.retain(|_, c| *c != 0);
        out
    }

    fn syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.terms.keys().flat_map(|m| m.iter().copied())
    }

    /// Does any monomial reference a symbol that differs between work-items
    /// of one group (or, with `cross_group`, between any two work-items)?
    fn item_dependent(&self, cross_group: bool) -> bool {
        self.syms().any(|s| match s {
            Sym::Gid(_) | Sym::Lid(_) => true,
            Sym::Grp(_) => cross_group,
            Sym::Opaque { varying, .. } => varying,
            Sym::Param(_) | Sym::LoopVar { .. } => false,
        })
    }
}

/// Abstract value: optional index polynomial plus uniformity bits.
#[derive(Debug, Clone)]
struct AVal {
    poly: Option<Poly>,
    /// Same for every work-item of one work-group.
    uniform: bool,
    /// Same for every work-item of the whole NDRange.
    guniform: bool,
}

impl AVal {
    fn konst(k: i128) -> AVal {
        AVal {
            poly: Some(Poly::konst(k)),
            uniform: true,
            guniform: true,
        }
    }

    fn top(uniform: bool, guniform: bool) -> AVal {
        AVal {
            poly: None,
            uniform,
            guniform,
        }
    }
}

/// Which buffer an access touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Buf {
    Param(u16),
    Local(u32),
    Priv(u32),
}

/// A pointer-valued abstract value.
#[derive(Debug, Clone)]
struct PtrVal {
    buf: Option<Buf>,
    space: AddrSpace,
    elem_size: usize,
    offset: AVal,
}

/// A guard-derived bound on a single symbol.
#[derive(Debug, Clone)]
struct Cons {
    sym: Sym,
    lo: Option<Poly>,
    hi: Option<Poly>,
    eq: Option<Poly>,
}

/// One entry of the control-flow guard stack.
#[derive(Debug, Clone)]
struct GuardEntry {
    uniform: bool,
    cons: Vec<Cons>,
    /// True for `for` loops with compile-time bounds: such guards do not
    /// restrict which work-items execute the body, so accesses under them
    /// stay eligible for the launch-time bounds check.
    const_loop: bool,
}

/// One recorded memory access.
#[derive(Debug, Clone)]
struct Access {
    buf: Buf,
    space: AddrSpace,
    idx: Option<Poly>,
    is_write: bool,
    /// For writes: stored value uniform within a group / across the range.
    value_uniform: bool,
    value_guniform: bool,
    epoch: u32,
    cons: Vec<Cons>,
    span: Span,
}

#[derive(Clone)]
enum Var {
    Scalar(AVal),
    Ptr(PtrVal),
    Arr {
        buf: Buf,
        space: AddrSpace,
        elem_size: usize,
    },
}

/// Per-function facts propagated over the call graph.
#[derive(Default, Clone)]
struct FuncMeta {
    has_barrier: bool,
    uses_varying: bool,
    uses_group: bool,
}

// ---------------------------------------------------------------------------
// entry points
// ---------------------------------------------------------------------------

/// Analyse a parsed translation unit (assumed to have passed `sema`).
pub fn analyze_tu(tu: &ast::TranslationUnit) -> Analysis {
    analyze_tu_inner(tu, None)
}

/// Analyse a translation unit with IR-dataflow refinement: per-line
/// constant/uniformity facts about stored values demote conservative race
/// warnings to [`Severity::Note`] findings of kind [`DiagKind::ProvedSafe`],
/// and interval analysis adds positive "proved in bounds" notes for
/// fixed-extent array accesses. `module` must be the (unoptimized) sema
/// output for the same translation unit. Error-severity findings are never
/// affected — only warnings can be demoted, and only notes can be added.
pub fn analyze_tu_refined(tu: &ast::TranslationUnit, module: &IrModule) -> Analysis {
    analyze_tu_inner(tu, Some(module))
}

fn analyze_tu_inner(tu: &ast::TranslationUnit, module: Option<&IrModule>) -> Analysis {
    let metas = compute_func_metas(tu);
    let mut out = Analysis::default();
    for f in &tu.funcs {
        if !f.is_kernel {
            continue;
        }
        let mut ck = Checker::new(tu, &metas, f);
        ck.ir = module
            .and_then(|m| m.kernels.get(&f.name).map(|&id| &m.funcs[id]))
            .map(IrFacts::for_func);
        ck.run(f);
        if let Some(ir) = &ck.ir {
            // positive verdicts: every fixed-extent array access on the line
            // is proved in bounds by the interval analysis
            let notes: Vec<(usize, Span)> = ir
                .fixed_bounds
                .iter()
                .filter(|(_, &(_, ok))| ok)
                .map(|(&line, &(span, _))| (line, span))
                .collect();
            for (_, span) in notes {
                ck.diags.push(Diagnostic {
                    kernel: f.name.clone(),
                    span,
                    severity: Severity::Note,
                    kind: DiagKind::ProvedSafe,
                    message: "fixed-array access proved in bounds by value-range analysis"
                        .to_string(),
                });
            }
        }
        let mut seen = HashSet::new();
        for d in ck.diags {
            if seen.insert((d.span, d.kind)) {
                out.diagnostics.push(d);
            }
        }
        out.kernels.insert(
            f.name.clone(),
            KernelSummary {
                launch_accesses: ck.launch,
            },
        );
    }
    out.diagnostics
        .sort_by_key(|d| (d.kernel.clone(), d.span, std::cmp::Reverse(d.severity)));
    out
}

/// Preprocess, parse, sema-check, and analyse a source string. Convenience
/// entry for tools (the `report -- lint` table) that lint raw OpenCL C.
pub fn analyze_source(source: &str) -> Result<Analysis> {
    let src = pp::preprocess(source, &HashMap::new())?;
    let tu = parser::parse(&src)?;
    sema::analyze(&tu)?;
    Ok(analyze_tu(&tu))
}

/// [`analyze_source`] with the IR-dataflow refinement of
/// [`analyze_tu_refined`] applied.
pub fn analyze_source_refined(source: &str) -> Result<Analysis> {
    let src = pp::preprocess(source, &HashMap::new())?;
    let tu = parser::parse(&src)?;
    let module = sema::analyze(&tu)?;
    Ok(analyze_tu_refined(&tu, &module))
}

fn compute_func_metas(tu: &ast::TranslationUnit) -> HashMap<String, FuncMeta> {
    let mut metas: HashMap<String, FuncMeta> = HashMap::new();
    let mut calls: HashMap<String, HashSet<String>> = HashMap::new();
    for f in &tu.funcs {
        let mut m = FuncMeta::default();
        let mut callees = HashSet::new();
        for s in &f.body {
            scan_stmt(s, &mut m, &mut callees);
        }
        metas.insert(f.name.clone(), m);
        calls.insert(f.name.clone(), callees);
    }
    // propagate transitively to a fixpoint (call graphs here are tiny)
    loop {
        let mut changed = false;
        for f in &tu.funcs {
            let merged = calls[&f.name]
                .iter()
                .filter_map(|c| metas.get(c).cloned())
                .fold(FuncMeta::default(), |a, b| FuncMeta {
                    has_barrier: a.has_barrier || b.has_barrier,
                    uses_varying: a.uses_varying || b.uses_varying,
                    uses_group: a.uses_group || b.uses_group,
                });
            let m = metas.get_mut(&f.name).expect("inserted above");
            let next = FuncMeta {
                has_barrier: m.has_barrier || merged.has_barrier,
                uses_varying: m.uses_varying || merged.uses_varying,
                uses_group: m.uses_group || merged.uses_group,
            };
            if next.has_barrier != m.has_barrier
                || next.uses_varying != m.uses_varying
                || next.uses_group != m.uses_group
            {
                *m = next;
                changed = true;
            }
        }
        if !changed {
            return metas;
        }
    }
}

fn scan_stmt(s: &Stmt, m: &mut FuncMeta, callees: &mut HashSet<String>) {
    match &s.kind {
        StmtKind::Decl { decls, .. } => {
            for d in decls {
                if let Some(e) = &d.array_len {
                    scan_expr_rec(e, m, callees);
                }
                if let Some(e) = &d.init {
                    scan_expr_rec(e, m, callees);
                }
            }
        }
        StmtKind::Expr(e) => scan_expr_rec(e, m, callees),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            scan_expr_rec(cond, m, callees);
            for s in then_blk.iter().chain(else_blk) {
                scan_stmt(s, m, callees);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                scan_stmt(i, m, callees);
            }
            if let Some(c) = cond {
                scan_expr_rec(c, m, callees);
            }
            if let Some(st) = step {
                scan_expr_rec(st, m, callees);
            }
            for s in body {
                scan_stmt(s, m, callees);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            scan_expr_rec(cond, m, callees);
            for s in body {
                scan_stmt(s, m, callees);
            }
        }
        StmtKind::Return(Some(e)) => scan_expr_rec(e, m, callees),
        StmtKind::Block(body) => {
            for s in body {
                scan_stmt(s, m, callees);
            }
        }
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
    }
}

fn scan_expr_rec(e: &Expr, m: &mut FuncMeta, callees: &mut HashSet<String>) {
    match e {
        Expr::Call { name, args } => {
            match name.as_str() {
                "barrier" => m.has_barrier = true,
                "get_global_id" | "get_local_id" => m.uses_varying = true,
                "get_group_id" => m.uses_group = true,
                _ => {
                    callees.insert(name.clone());
                }
            }
            for a in args {
                scan_expr_rec(a, m, callees);
            }
        }
        Expr::Bin { l, r, .. } => {
            scan_expr_rec(l, m, callees);
            scan_expr_rec(r, m, callees);
        }
        Expr::Un { e, .. } | Expr::Post { e, .. } | Expr::Cast { e, .. } => {
            scan_expr_rec(e, m, callees)
        }
        Expr::Assign { target, value, .. } => {
            scan_expr_rec(target, m, callees);
            scan_expr_rec(value, m, callees);
        }
        Expr::Ternary { cond, t, f } => {
            scan_expr_rec(cond, m, callees);
            scan_expr_rec(t, m, callees);
            scan_expr_rec(f, m, callees);
        }
        Expr::Index { base, index } => {
            scan_expr_rec(base, m, callees);
            scan_expr_rec(index, m, callees);
        }
        Expr::IntLit { .. } | Expr::FloatLit { .. } | Expr::Ident(_) => {}
    }
}

// ---------------------------------------------------------------------------
// the per-kernel checker
// ---------------------------------------------------------------------------

struct Checker<'a> {
    metas: &'a HashMap<String, FuncMeta>,
    kernel: String,
    scopes: Vec<HashMap<String, Var>>,
    guards: Vec<GuardEntry>,
    epoch: u32,
    in_if_depth: usize,
    control_poisoned: bool,
    next_id: u32,
    accesses: Vec<Access>,
    launch: Vec<LaunchAccess>,
    diags: Vec<Diagnostic>,
    used_axes: [bool; 3],
    /// Display names for local/private arrays and params, by `Buf`.
    buf_names: HashMap<Buf, String>,
    /// Declared extents of local/private arrays, by `Buf`.
    arr_lens: HashMap<Buf, i128>,
    /// Per-line IR dataflow facts for the refined pass; `None` runs the
    /// purely syntactic PR 2 analysis.
    ir: Option<IrFacts>,
}

impl<'a> Checker<'a> {
    fn new(
        tu: &'a ast::TranslationUnit,
        metas: &'a HashMap<String, FuncMeta>,
        f: &ast::FuncDef,
    ) -> Self {
        let mut used_axes = [false; 3];
        collect_used_axes(tu, metas, f, &mut used_axes);
        Checker {
            metas,
            kernel: f.name.clone(),
            scopes: vec![HashMap::new()],
            guards: Vec::new(),
            epoch: 0,
            in_if_depth: 0,
            control_poisoned: false,
            next_id: 0,
            accesses: Vec::new(),
            launch: Vec::new(),
            diags: Vec::new(),
            used_axes,
            buf_names: HashMap::new(),
            arr_lens: HashMap::new(),
            ir: None,
        }
    }

    fn fresh(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id
    }

    fn diag(&mut self, span: Span, severity: Severity, kind: DiagKind, message: String) {
        self.diags.push(Diagnostic {
            kernel: self.kernel.clone(),
            span,
            severity,
            kind,
            message,
        });
    }

    fn run(&mut self, f: &ast::FuncDef) {
        // predefined integer constants the corpus uses in flag expressions
        self.scopes[0].insert("CLK_LOCAL_MEM_FENCE".into(), Var::Scalar(AVal::konst(1)));
        self.scopes[0].insert("CLK_GLOBAL_MEM_FENCE".into(), Var::Scalar(AVal::konst(2)));
        for (i, p) in f.params.iter().enumerate() {
            let var = match p.ty {
                ClType::Scalar(t) => {
                    if t.is_float() {
                        Var::Scalar(AVal::top(true, true))
                    } else {
                        Var::Scalar(AVal {
                            poly: Some(Poly::sym(Sym::Param(i as u16))),
                            uniform: true,
                            guniform: true,
                        })
                    }
                }
                ClType::Ptr(space, t) => {
                    self.buf_names.insert(Buf::Param(i as u16), p.name.clone());
                    Var::Ptr(PtrVal {
                        buf: Some(Buf::Param(i as u16)),
                        space,
                        elem_size: t.size(),
                        offset: AVal::konst(0),
                    })
                }
                ClType::Void => continue,
            };
            self.scopes[0].insert(p.name.clone(), var);
        }
        self.walk_block(&f.body);
        self.report_races(f);
    }

    // ---- environment ----------------------------------------------------

    fn lookup(&self, name: &str) -> Option<&Var> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn set_var(&mut self, name: &str, v: Var) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return;
            }
        }
        // sema guarantees declarations precede use; tolerate otherwise
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), v);
    }

    fn declare(&mut self, name: &str, v: Var) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), v);
    }

    fn havoc(&mut self, names: &HashSet<String>) {
        for name in names {
            let (uniform, guniform) = match self.lookup(name) {
                Some(Var::Scalar(v)) => (v.uniform, v.guniform),
                Some(_) => continue, // pointers/arrays keep their binding
                None => continue,
            };
            let id = self.fresh();
            self.set_var(
                name,
                Var::Scalar(AVal {
                    poly: Some(Poly::sym(Sym::Opaque {
                        id,
                        varying: !uniform,
                    })),
                    uniform,
                    guniform,
                }),
            );
        }
    }

    fn guards_uniform(&self) -> bool {
        self.guards.iter().all(|g| g.uniform)
    }

    fn flat_cons(&self) -> Vec<Cons> {
        self.guards.iter().flat_map(|g| g.cons.clone()).collect()
    }

    // ---- statements ------------------------------------------------------

    fn walk_block(&mut self, stmts: &[Stmt]) {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.walk_stmt(s);
        }
        self.scopes.pop();
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        let span = s.span;
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Block(inner) => self.walk_block(inner),
            StmtKind::Decl { space, base, decls } => {
                for d in decls {
                    if let Some(len_e) = &d.array_len {
                        let len = self
                            .eval(len_e, span)
                            .poly
                            .and_then(|p| p.is_const())
                            .unwrap_or(i128::MAX);
                        let buf = match space {
                            AddrSpace::Local => Buf::Local(self.fresh()),
                            _ => Buf::Priv(self.fresh()),
                        };
                        self.buf_names.insert(buf, d.name.clone());
                        self.arr_lens.insert(buf, len);
                        self.declare(
                            &d.name,
                            Var::Arr {
                                buf,
                                space: if *space == AddrSpace::Local {
                                    AddrSpace::Local
                                } else {
                                    AddrSpace::Private
                                },
                                elem_size: base.size(),
                            },
                        );
                    } else if d.is_pointer {
                        let v = d
                            .init
                            .as_ref()
                            .and_then(|e| self.eval_ptr(e, span))
                            .unwrap_or(PtrVal {
                                buf: None,
                                space: AddrSpace::Global,
                                elem_size: base.size(),
                                offset: AVal::top(false, false),
                            });
                        self.declare(&d.name, Var::Ptr(v));
                    } else {
                        let v = match &d.init {
                            Some(e) => self.eval(e, span),
                            None => AVal::top(true, true),
                        };
                        self.declare(&d.name, Var::Scalar(v));
                    }
                }
            }
            StmtKind::Expr(e) => self.walk_expr_stmt(e, span),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (uniform, cons, neg) = self.eval_cond(cond, span);
                let assigned = collect_assigned(then_blk)
                    .union(&collect_assigned(else_blk))
                    .cloned()
                    .collect::<HashSet<_>>();
                self.in_if_depth += 1;
                self.guards.push(GuardEntry {
                    uniform,
                    cons,
                    const_loop: false,
                });
                self.walk_block(then_blk);
                self.guards.pop();
                if !else_blk.is_empty() {
                    self.guards.push(GuardEntry {
                        uniform,
                        cons: neg,
                        const_loop: false,
                    });
                    self.walk_block(else_blk);
                    self.guards.pop();
                }
                self.in_if_depth -= 1;
                // join: values assigned under the branch become unknown; a
                // varying condition makes them varying
                for name in &assigned {
                    if let Some(Var::Scalar(v)) = self.lookup(name) {
                        let (u, g) = (v.uniform && uniform, v.guniform && uniform);
                        let id = self.fresh();
                        self.set_var(
                            name,
                            Var::Scalar(AVal {
                                poly: Some(Poly::sym(Sym::Opaque { id, varying: !u })),
                                uniform: u,
                                guniform: g,
                            }),
                        );
                    }
                }
            }
            StmtKind::While { cond, body } => {
                let assigned = collect_assigned(body);
                for _pass in 0..2 {
                    self.havoc(&assigned);
                    let (uniform, cons, _) = self.eval_cond(cond, span);
                    self.guards.push(GuardEntry {
                        uniform,
                        cons,
                        const_loop: false,
                    });
                    self.walk_block(body);
                    self.guards.pop();
                }
                self.havoc(&assigned);
            }
            StmtKind::DoWhile { body, cond } => {
                let assigned = collect_assigned(body);
                for _pass in 0..2 {
                    self.havoc(&assigned);
                    // body of iteration 1 runs unconditionally: uniformity of
                    // the exit condition still gates barriers in later
                    // iterations, but its constraints do not hold in the body
                    let (uniform, _, _) = self.eval_cond(cond, span);
                    self.guards.push(GuardEntry {
                        uniform,
                        cons: vec![],
                        const_loop: false,
                    });
                    self.walk_block(body);
                    self.guards.pop();
                }
                self.havoc(&assigned);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.walk_stmt(init);
                }
                let counter =
                    self.match_const_counter(init.as_deref(), cond.as_ref(), step.as_ref());
                let mut assigned = collect_assigned(body);
                if let Some(st) = step {
                    collect_assigned_expr(st, &mut assigned);
                }
                if let Some((name, lo, hi)) = counter {
                    let id = self.fresh();
                    self.set_var(
                        &name,
                        Var::Scalar(AVal {
                            poly: Some(Poly::sym(Sym::LoopVar { id, lo, hi })),
                            uniform: true,
                            guniform: true,
                        }),
                    );
                    assigned.remove(&name);
                    for _pass in 0..2 {
                        self.havoc(&assigned);
                        self.guards.push(GuardEntry {
                            uniform: true,
                            cons: vec![],
                            const_loop: true,
                        });
                        self.walk_block(body);
                        self.guards.pop();
                    }
                    self.havoc(&assigned);
                } else {
                    for _pass in 0..2 {
                        self.havoc(&assigned);
                        let (uniform, cons, _) = match cond {
                            Some(c) => self.eval_cond(c, span),
                            None => (true, vec![], vec![]),
                        };
                        self.guards.push(GuardEntry {
                            uniform,
                            cons,
                            const_loop: false,
                        });
                        self.walk_block(body);
                        if let Some(st) = step {
                            self.walk_expr_stmt(st, span);
                        }
                        self.guards.pop();
                    }
                    self.havoc(&assigned);
                }
                self.scopes.pop();
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.eval(e, span);
                }
                if !self.guards_uniform() {
                    self.control_poisoned = true;
                }
            }
            StmtKind::Break | StmtKind::Continue => {
                if !self.guards_uniform() {
                    self.control_poisoned = true;
                }
            }
        }
    }

    /// `for (int i = LO; i < HI; i += C)` with constant LO/HI/C>0 yields a
    /// bounded loop-variable symbol instead of an opaque havoc.
    fn match_const_counter(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
    ) -> Option<(String, i64, i64)> {
        let StmtKind::Decl { decls, .. } = &init?.kind else {
            return None;
        };
        let [d] = decls.as_slice() else { return None };
        let lo = match d.init.as_ref()? {
            Expr::IntLit { value, .. } => *value as i64,
            _ => return None,
        };
        let Expr::Bin {
            op: op @ (BinOp::Lt | BinOp::Le),
            l,
            r,
        } = cond?
        else {
            return None;
        };
        let Expr::Ident(n) = l.as_ref() else {
            return None;
        };
        if *n != d.name {
            return None;
        }
        let bound = self.eval(r, Span::default()).poly?.is_const()?;
        let hi = if *op == BinOp::Lt { bound - 1 } else { bound } as i64;
        // step must increment the same counter by a positive constant
        let step_ok = match step? {
            Expr::Un {
                op: UnOp::PreInc,
                e,
            }
            | Expr::Post { op: PostOp::Inc, e } => {
                matches!(e.as_ref(), Expr::Ident(m) if *m == d.name)
            }
            Expr::Assign {
                op: Some(BinOp::Add),
                target,
                value,
            } => {
                matches!(target.as_ref(), Expr::Ident(m) if *m == d.name)
                    && matches!(value.as_ref(), Expr::IntLit { value, .. } if *value > 0)
            }
            _ => false,
        };
        (step_ok && hi >= lo).then(|| (d.name.clone(), lo, hi))
    }

    fn walk_expr_stmt(&mut self, e: &Expr, span: Span) {
        match e {
            Expr::Assign { op, target, value } => {
                let v = self.eval(value, span);
                let v = match op {
                    None => v,
                    Some(_) => {
                        // compound assignment also reads the target
                        let cur = self.eval(target, span);
                        self.combine_unknown(&cur, &v)
                    }
                };
                self.assign_to(target, v, span);
            }
            Expr::Un {
                op: UnOp::PreInc | UnOp::PreDec,
                e: t,
            }
            | Expr::Post { e: t, .. } => {
                let cur = self.eval(t, span);
                let one = AVal::konst(1);
                let v = AVal {
                    poly: match (&cur.poly, &one.poly) {
                        (Some(a), Some(b)) => Some(a.add(b)),
                        _ => None,
                    },
                    uniform: cur.uniform,
                    guniform: cur.guniform,
                };
                // note: decrement adds the wrong constant, but the poly is
                // only used when the counter is not havocked, which sema-level
                // statement inc/dec in loops always is
                let v = if matches!(
                    e,
                    Expr::Un {
                        op: UnOp::PreDec,
                        ..
                    } | Expr::Post {
                        op: PostOp::Dec,
                        ..
                    }
                ) {
                    AVal {
                        poly: cur.poly.map(|p| p.sub(&Poly::konst(1))),
                        ..v
                    }
                } else {
                    v
                };
                self.assign_to(t, v, span);
            }
            Expr::Call { name, args } if name == "barrier" => {
                for a in args {
                    self.eval(a, span);
                }
                self.check_barrier(span);
            }
            _ => {
                self.eval(e, span);
            }
        }
    }

    fn check_barrier(&mut self, span: Span) {
        if !self.guards_uniform() || self.control_poisoned {
            self.diag(
                span,
                Severity::Error,
                DiagKind::BarrierDivergence,
                "barrier() is reachable under non-uniform control flow: an enclosing \
                 condition (or an earlier return/break under one) depends on the \
                 work-item id, so work-items of one group may disagree on reaching it"
                    .into(),
            );
        }
        if self.in_if_depth == 0 {
            // barriers inside `if` bodies do not separate epochs (conservative)
            self.epoch += 1;
        }
    }

    fn combine_unknown(&mut self, a: &AVal, b: &AVal) -> AVal {
        AVal::top(a.uniform && b.uniform, a.guniform && b.guniform)
    }

    fn assign_to(&mut self, target: &Expr, v: AVal, span: Span) {
        match target {
            Expr::Ident(name) => match self.lookup(name) {
                Some(Var::Scalar(_)) | None => self.set_var(name, Var::Scalar(v)),
                Some(Var::Ptr(_)) | Some(Var::Arr { .. }) => {
                    // pointer reassignment: lose tracking conservatively
                    if let Some(Var::Ptr(p)) = self.lookup(name).cloned() {
                        self.set_var(
                            name,
                            Var::Ptr(PtrVal {
                                buf: None,
                                offset: AVal::top(false, false),
                                ..p
                            }),
                        );
                    }
                }
            },
            Expr::Index { .. }
            | Expr::Un {
                op: UnOp::Deref, ..
            } => {
                if let Some((ptr, idx)) = self.lvalue_addr(target, span) {
                    self.record_write(&ptr, idx, &v, span);
                }
            }
            _ => {}
        }
    }

    /// Resolve `a[i]` / `*p` to (pointer target, element index).
    fn lvalue_addr(&mut self, e: &Expr, span: Span) -> Option<(PtrVal, AVal)> {
        match e {
            Expr::Index { base, index } => {
                let p = self.eval_ptr(base, span)?;
                let i = self.eval(index, span);
                let idx = AVal {
                    poly: match (&p.offset.poly, &i.poly) {
                        (Some(a), Some(b)) => Some(a.add(b)),
                        _ => None,
                    },
                    uniform: p.offset.uniform && i.uniform,
                    guniform: p.offset.guniform && i.guniform,
                };
                Some((p, idx))
            }
            Expr::Un {
                op: UnOp::Deref,
                e: inner,
            } => {
                let p = self.eval_ptr(inner, span)?;
                let idx = p.offset.clone();
                Some((p, idx))
            }
            _ => None,
        }
    }

    fn eval_ptr(&mut self, e: &Expr, span: Span) -> Option<PtrVal> {
        match e {
            Expr::Ident(name) => match self.lookup(name).cloned() {
                Some(Var::Ptr(p)) => Some(p),
                Some(Var::Arr {
                    buf,
                    space,
                    elem_size,
                }) => Some(PtrVal {
                    buf: Some(buf),
                    space,
                    elem_size,
                    offset: AVal::konst(0),
                }),
                _ => None,
            },
            Expr::Bin {
                op: op @ (BinOp::Add | BinOp::Sub),
                l,
                r,
            } => {
                let p = self.eval_ptr(l, span)?;
                let off = self.eval(r, span);
                let delta = match (&p.offset.poly, &off.poly) {
                    (Some(a), Some(b)) => Some(if *op == BinOp::Add {
                        a.add(b)
                    } else {
                        a.sub(b)
                    }),
                    _ => None,
                };
                Some(PtrVal {
                    offset: AVal {
                        poly: delta,
                        uniform: p.offset.uniform && off.uniform,
                        guniform: p.offset.guniform && off.guniform,
                    },
                    ..p
                })
            }
            Expr::Un {
                op: UnOp::AddrOf,
                e: inner,
            } => {
                let (p, idx) = self.lvalue_addr(inner, span)?;
                Some(PtrVal { offset: idx, ..p })
            }
            Expr::Cast { e, .. } => self.eval_ptr(e, span),
            _ => None,
        }
    }

    // ---- expression evaluation ------------------------------------------

    fn eval(&mut self, e: &Expr, span: Span) -> AVal {
        match e {
            Expr::IntLit { value, .. } => AVal::konst(*value as i128),
            Expr::FloatLit { .. } => AVal::top(true, true),
            Expr::Ident(name) => match self.lookup(name) {
                Some(Var::Scalar(v)) => v.clone(),
                _ => AVal::top(true, true),
            },
            Expr::Bin { op, l, r } => {
                let a = self.eval(l, span);
                let b = self.eval(r, span);
                let uniform = a.uniform && b.uniform;
                let guniform = a.guniform && b.guniform;
                let poly = match (op, &a.poly, &b.poly) {
                    (BinOp::Add, Some(x), Some(y)) => Some(x.add(y)),
                    (BinOp::Sub, Some(x), Some(y)) => Some(x.sub(y)),
                    (BinOp::Mul, Some(x), Some(y)) => Some(x.mul(y)),
                    (BinOp::Div, Some(x), Some(y)) => match (x.is_const(), y.is_const()) {
                        (Some(a), Some(b)) if b != 0 => Some(Poly::konst(a / b)),
                        _ => None,
                    },
                    (BinOp::Rem, Some(x), Some(y)) => match (x.is_const(), y.is_const()) {
                        (Some(a), Some(b)) if b != 0 => Some(Poly::konst(a % b)),
                        _ => None,
                    },
                    (BinOp::Shl, Some(x), Some(y)) => match y.is_const() {
                        Some(s) if (0..63).contains(&s) => Some(x.mul(&Poly::konst(1i128 << s))),
                        _ => None,
                    },
                    (BinOp::Shr, Some(x), Some(y)) => match (x.is_const(), y.is_const()) {
                        (Some(a), Some(s)) if (0..63).contains(&s) => Some(Poly::konst(a >> s)),
                        _ => None,
                    },
                    _ => None,
                };
                AVal {
                    poly,
                    uniform,
                    guniform,
                }
            }
            Expr::Un { op, e: inner } => match op {
                UnOp::Neg => {
                    let v = self.eval(inner, span);
                    AVal {
                        poly: v.poly.map(|p| p.neg()),
                        ..v
                    }
                }
                UnOp::Plus => self.eval(inner, span),
                UnOp::Deref => self.eval_load(inner, None, span),
                UnOp::AddrOf => AVal::top(false, false),
                _ => {
                    let v = self.eval(inner, span);
                    AVal::top(v.uniform, v.guniform)
                }
            },
            Expr::Post { e: inner, .. } => self.eval(inner, span),
            Expr::Assign { target, value, .. } => {
                // assignments only appear in statement position post-sema,
                // but stay safe for unchecked inputs
                let v = self.eval(value, span);
                self.assign_to(target, v.clone(), span);
                v
            }
            Expr::Ternary { cond, t, f } => {
                let (cu, _, _) = self.eval_cond(cond, span);
                let a = self.eval(t, span);
                let b = self.eval(f, span);
                AVal::top(cu && a.uniform && b.uniform, cu && a.guniform && b.guniform)
            }
            Expr::Index { base, index } => self.eval_load(base, Some(index), span),
            Expr::Cast { e: inner, .. } => self.eval(inner, span),
            Expr::Call { name, args } => self.eval_call(name, args, span),
        }
    }

    /// Load through `base[index]` (or `*base` when `index` is None).
    fn eval_load(&mut self, base: &Expr, index: Option<&Expr>, span: Span) -> AVal {
        let p = self.eval_ptr(base, span);
        let idx = match (&p, index) {
            (Some(p), Some(ie)) => {
                let i = self.eval(ie, span);
                AVal {
                    poly: match (&p.offset.poly, &i.poly) {
                        (Some(a), Some(b)) => Some(a.add(b)),
                        _ => None,
                    },
                    uniform: p.offset.uniform && i.uniform,
                    guniform: p.offset.guniform && i.guniform,
                }
            }
            (Some(p), None) => p.offset.clone(),
            (None, Some(ie)) => {
                self.eval(ie, span);
                AVal::top(false, false)
            }
            (None, None) => AVal::top(false, false),
        };
        match p {
            Some(p) => self.record_read(&p, idx, span),
            None => AVal::top(false, false),
        }
    }

    fn eval_call(&mut self, name: &str, args: &[Expr], span: Span) -> AVal {
        // id/geometry builtins
        let axis = |s: &mut Self, args: &[Expr]| -> Option<u8> {
            match args.first() {
                Some(e) => s
                    .eval(e, span)
                    .poly
                    .and_then(|p| p.is_const())
                    .filter(|d| (0..3).contains(d))
                    .map(|d| d as u8),
                None => None,
            }
        };
        match name {
            "get_global_id" | "get_local_id" | "get_group_id" => {
                let d = axis(self, args);
                match d {
                    Some(d) => {
                        self.used_axes[d as usize] = true;
                        let (sym, uniform, guniform) = match name {
                            "get_global_id" => (Sym::Gid(d), false, false),
                            "get_local_id" => (Sym::Lid(d), false, false),
                            _ => (Sym::Grp(d), true, false),
                        };
                        AVal {
                            poly: Some(Poly::sym(sym)),
                            uniform,
                            guniform,
                        }
                    }
                    None => {
                        self.used_axes = [true; 3];
                        AVal::top(false, false)
                    }
                }
            }
            "get_global_size" | "get_local_size" | "get_num_groups" | "get_work_dim" => {
                for a in args {
                    self.eval(a, span);
                }
                let id = self.fresh();
                AVal {
                    poly: Some(Poly::sym(Sym::Opaque { id, varying: false })),
                    uniform: true,
                    guniform: true,
                }
            }
            "barrier" => {
                // expression-position barrier is rejected by sema; be safe
                self.check_barrier(span);
                AVal::top(true, true)
            }
            "mem_fence" | "read_mem_fence" | "write_mem_fence" => AVal::top(true, true),
            _ if name.starts_with("atomic_") || name.starts_with("atom_") => {
                // atomics are synchronised by definition: evaluate the
                // address and operand but record no racing access
                if let Some(a0) = args.first() {
                    self.eval_ptr(a0, span);
                }
                for a in args.iter().skip(1) {
                    self.eval(a, span);
                }
                AVal::top(false, false)
            }
            _ => {
                let mut uniform = true;
                let mut guniform = true;
                for a in args {
                    let v = self.eval(a, span);
                    uniform &= v.uniform;
                    guniform &= v.guniform;
                }
                if let Some(meta) = self.metas.get(name) {
                    if meta.has_barrier {
                        self.check_barrier(span);
                    }
                    if meta.uses_varying {
                        uniform = false;
                        guniform = false;
                    }
                    if meta.uses_group {
                        guniform = false;
                    }
                }
                // math builtins: uniformity of the result follows the args
                AVal::top(uniform, guniform)
            }
        }
    }

    /// Condition evaluation: uniformity plus simple single-symbol constraints
    /// (and their negation for the `else` branch).
    fn eval_cond(&mut self, e: &Expr, span: Span) -> (bool, Vec<Cons>, Vec<Cons>) {
        match e {
            Expr::Bin {
                op: op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne),
                l,
                r,
            } => {
                let a = self.eval(l, span);
                let b = self.eval(r, span);
                let uniform = a.uniform && b.uniform;
                let (mut cons, mut neg) = (vec![], vec![]);
                if let (Some(pa), Some(pb)) = (&a.poly, &b.poly) {
                    if let Some((s, c)) = single_sym(pa) {
                        // s + c OP pb  =>  s OP pb - c
                        let rhs = pb.sub(&Poly::konst(c));
                        add_cons(&mut cons, &mut neg, s, *op, rhs);
                    } else if let Some((s, c)) = single_sym(pb) {
                        // pa OP s + c  =>  s FLIP(OP) pa - c
                        let rhs = pa.sub(&Poly::konst(c));
                        add_cons(&mut cons, &mut neg, s, flip(*op), rhs);
                    }
                }
                (uniform, cons, neg)
            }
            Expr::Bin {
                op: BinOp::LogAnd,
                l,
                r,
            } => {
                let (ul, cl, _) = self.eval_cond(l, span);
                let (ur, cr, _) = self.eval_cond(r, span);
                // the negation of a conjunction is a disjunction: no usable
                // per-symbol bounds survive it
                (ul && ur, cl.into_iter().chain(cr).collect(), vec![])
            }
            Expr::Bin {
                op: BinOp::LogOr,
                l,
                r,
            } => {
                let (ul, _, nl) = self.eval_cond(l, span);
                let (ur, _, nr) = self.eval_cond(r, span);
                (ul && ur, vec![], nl.into_iter().chain(nr).collect())
            }
            Expr::Un {
                op: UnOp::Not,
                e: inner,
            } => {
                let (u, c, n) = self.eval_cond(inner, span);
                (u, n, c)
            }
            _ => {
                let v = self.eval(e, span);
                (v.uniform, vec![], vec![])
            }
        }
    }

    // ---- access recording ------------------------------------------------

    fn record_read(&mut self, p: &PtrVal, idx: AVal, span: Span) -> AVal {
        self.check_static_oob(p, &idx, span);
        if let Some(buf) = p.buf {
            if p.space == AddrSpace::Local {
                self.accesses.push(Access {
                    buf,
                    space: p.space,
                    idx: idx.poly.clone(),
                    is_write: false,
                    value_uniform: true,
                    value_guniform: true,
                    epoch: self.epoch,
                    cons: self.flat_cons(),
                    span,
                });
            }
        }
        // the loaded value is uniform iff the address is (nobody mutates the
        // buffer concurrently as far as a single abstract pass is concerned)
        let id = self.fresh();
        AVal {
            poly: Some(Poly::sym(Sym::Opaque {
                id,
                varying: !idx.uniform,
            })),
            uniform: idx.uniform,
            guniform: idx.guniform && p.space != AddrSpace::Local,
        }
    }

    fn record_write(&mut self, p: &PtrVal, idx: AVal, value: &AVal, span: Span) {
        self.check_static_oob(p, &idx, span);
        let Some(buf) = p.buf else { return };
        match p.space {
            AddrSpace::Global | AddrSpace::Local => {
                self.accesses.push(Access {
                    buf,
                    space: p.space,
                    idx: idx.poly.clone(),
                    is_write: true,
                    value_uniform: value.uniform,
                    value_guniform: value.guniform,
                    epoch: self.epoch,
                    cons: self.flat_cons(),
                    span,
                });
            }
            AddrSpace::Private | AddrSpace::Constant => {}
        }
        // unguarded global writes/reads feed the launch-time bounds check
        if p.space == AddrSpace::Global {
            self.maybe_record_launch(p, &idx, true, span);
        }
    }

    fn maybe_record_launch(&mut self, p: &PtrVal, idx: &AVal, is_write: bool, span: Span) {
        let Some(Buf::Param(param)) = p.buf else {
            return;
        };
        let Some(poly) = &idx.poly else { return };
        if !self.guards.iter().all(|g| g.const_loop) {
            return;
        }
        if poly.syms().any(|s| matches!(s, Sym::Opaque { .. })) {
            return;
        }
        self.launch.push(LaunchAccess {
            param: param as usize,
            param_name: self
                .buf_names
                .get(&Buf::Param(param))
                .cloned()
                .unwrap_or_default(),
            elem_size: p.elem_size,
            is_write,
            span,
            idx: poly.clone(),
        });
    }

    /// Definite build-time OOB on fixed-extent (`__local`/`__private`) arrays.
    fn check_static_oob(&mut self, p: &PtrVal, idx: &AVal, span: Span) {
        let Some(buf) = p.buf else { return };
        let Some(&len) = self.arr_lens.get(&buf) else {
            return;
        };
        if len == i128::MAX {
            return;
        }
        let Some(poly) = &idx.poly else { return };
        let name = self.buf_names.get(&buf).cloned().unwrap_or_default();
        if let Some(c) = poly.is_const() {
            if c < 0 || c >= len {
                self.diag(
                    span,
                    Severity::Error,
                    DiagKind::OutOfBounds,
                    format!("index {c} is out of bounds for `{name}` (length {len})"),
                );
            }
            return;
        }
        // constant bounds under the active guards (e.g. a bounded counter)
        let cons = self.flat_cons();
        let (lo, hi) = bounds(poly, &cons);
        if let Some(lo) = lo.as_ref().and_then(|p| p.is_const()) {
            if lo >= len {
                self.diag(
                    span,
                    Severity::Error,
                    DiagKind::OutOfBounds,
                    format!("index is at least {lo}, out of bounds for `{name}` (length {len})"),
                );
            }
        }
        let _ = hi;
    }

    // ---- race reporting ---------------------------------------------------

    fn report_races(&mut self, f: &ast::FuncDef) {
        let _ = f;
        let accesses = std::mem::take(&mut self.accesses);
        for (i, a) in accesses.iter().enumerate() {
            for b in accesses.iter().skip(i) {
                if a.buf != b.buf || a.epoch != b.epoch {
                    continue;
                }
                if !a.is_write && !b.is_write {
                    continue;
                }
                // global read-write overlap is deliberately unchecked (only
                // writes are recorded for global buffers); local buffers see
                // write-write and read-write pairs
                let (w, x) = if a.is_write { (a, b) } else { (b, a) };
                if let Some((severity, msg)) = self.judge_pair(w, x) {
                    let name = self
                        .buf_names
                        .get(&w.buf)
                        .cloned()
                        .unwrap_or_else(|| "<buffer>".into());
                    let what = if x.is_write {
                        "write-write"
                    } else {
                        "read-write"
                    };
                    let other = if std::ptr::eq(w, x) {
                        String::new()
                    } else {
                        format!(" (other access at line {})", x.span)
                    };
                    let kind = if severity == Severity::Note {
                        DiagKind::ProvedSafe
                    } else {
                        DiagKind::DataRace
                    };
                    self.diag(
                        w.span,
                        severity,
                        kind,
                        format!("{msg}: {what} conflict on `{name}` between work-items with no intervening barrier{other}"),
                    );
                }
            }
        }
    }

    /// `None` = proven benign; otherwise severity + headline.
    fn judge_pair(&self, w: &Access, x: &Access) -> Option<(Severity, String)> {
        let cross_group = w.space == AddrSpace::Global;
        let (Some(pw), Some(px)) = (&w.idx, &x.idx) else {
            if let Some(note) = self.ir_same_value_note(w, x, cross_group) {
                return Some(note);
            }
            return Some((
                Severity::Warning,
                "possible data race (index not analysable)".into(),
            ));
        };
        let w_fixed = !pw.item_dependent(cross_group);
        let x_fixed = !px.item_dependent(cross_group);
        if w_fixed && x_fixed {
            if pw == px {
                let val_ok = |acc: &Access| {
                    !acc.is_write
                        || if cross_group {
                            acc.value_guniform
                        } else {
                            acc.value_uniform
                        }
                };
                if val_ok(w) && val_ok(x) {
                    return None; // every work-item stores the same value
                }
                return Some((
                    Severity::Error,
                    "data race: work-items store differing values to one address".into(),
                ));
            }
            if pw.sub(px).is_const().is_some_and(|c| c != 0) {
                return None; // two distinct fixed cells
            }
            if let Some(note) = self.ir_same_value_note(w, x, cross_group) {
                return Some(note);
            }
            return Some((Severity::Warning, "possible data race".into()));
        }
        if pw == px && self.injective_per_item(pw, w.space, &w.cons, &x.cons) {
            return None; // distinct work-items touch distinct cells
        }
        // guard-aware symbolic interval disjointness
        let (_, w_hi) = bounds(pw, &w.cons);
        let (x_lo, _) = bounds(px, &x.cons);
        if gap_positive(&x_lo, &w_hi) {
            return None;
        }
        let (_, x_hi) = bounds(px, &x.cons);
        let (w_lo, _) = bounds(pw, &w.cons);
        if gap_positive(&w_lo, &x_hi) {
            return None;
        }
        if let Some(note) = self.ir_same_value_note(w, x, cross_group) {
            return Some(note);
        }
        Some((Severity::Warning, "possible data race".into()))
    }

    /// IR-dataflow demotion of a would-be race warning: if every write in
    /// the pair provably stores a value that is identical across the
    /// conflicting work-items, a collision — whether or not the indices
    /// overlap — cannot produce divergent memory contents, mirroring the
    /// uniform-address/uniform-value rule the syntactic pass already applies.
    /// Two *distinct* write sites additionally need the same constant bits
    /// (per-site uniformity alone allows two different uniform values).
    fn ir_same_value_note(
        &self,
        w: &Access,
        x: &Access,
        cross_group: bool,
    ) -> Option<(Severity, String)> {
        let ir = self.ir.as_ref()?;
        if !w.is_write {
            return None;
        }
        let uni_ok = |acc: &Access| -> bool {
            if !acc.is_write {
                return true;
            }
            match ir.store_uni.get(&acc.span.line) {
                Some(u) => {
                    if cross_group {
                        u.guniform
                    } else {
                        u.uniform
                    }
                }
                None => false,
            }
        };
        if !uni_ok(w) || !uni_ok(x) {
            return None;
        }
        let same_site = std::ptr::eq(w, x) || w.span.line == x.span.line;
        if !same_site && x.is_write {
            let cw = ir.store_const.get(&w.span.line).copied().flatten()?;
            let cx = ir.store_const.get(&x.span.line).copied().flatten()?;
            if cw != cx {
                return None;
            }
        }
        Some((
            Severity::Note,
            "data race ruled out (dataflow proves all work-items store one value)".into(),
        ))
    }

    /// Is the index injective over the executing work-items? Requires the
    /// polynomial to separate every queried axis (mixed-radix / tiling
    /// coefficients are presumed well-formed — documented assumption), with
    /// bounded loop counters absorbed by a gcd-vs-spread argument.
    fn injective_per_item(
        &self,
        p: &Poly,
        space: AddrSpace,
        cons_a: &[Cons],
        cons_b: &[Cons],
    ) -> bool {
        let pinned = |s: Sym| {
            cons_a.iter().any(|c| c.sym == s && c.eq.is_some())
                && cons_b.iter().any(|c| c.sym == s && c.eq.is_some())
        };
        let syms: HashSet<Sym> = p.syms().collect();
        if syms
            .iter()
            .any(|s| matches!(s, Sym::Opaque { varying: true, .. }))
        {
            return false;
        }
        let has = |s: Sym| syms.contains(&s);
        for d in 0..3u8 {
            if !self.used_axes[d as usize] {
                continue;
            }
            let lid_ok = pinned(Sym::Lid(d)) || has(Sym::Lid(d)) || has(Sym::Gid(d));
            if !lid_ok {
                return false;
            }
            if space == AddrSpace::Global {
                let grp_ok = pinned(Sym::Grp(d)) || has(Sym::Grp(d)) || has(Sym::Gid(d));
                if !grp_ok {
                    return false;
                }
            }
        }
        // bounded loop counters shift the index within one work-item's
        // footprint; require the per-item stride to clear the total spread
        let mut spread: i128 = 0;
        let mut strides: Vec<i128> = Vec::new();
        for (mono, &c) in &p.terms {
            let item_syms = mono
                .iter()
                .filter(|s| matches!(s, Sym::Gid(_) | Sym::Lid(_) | Sym::Grp(_)))
                .count();
            let loop_syms = mono
                .iter()
                .filter(|s| matches!(s, Sym::LoopVar { .. }))
                .count();
            if loop_syms > 0 {
                if mono.len() > 1 {
                    return false; // loop counter multiplied by a symbol
                }
                let Sym::LoopVar { lo, hi, .. } = mono[0] else {
                    unreachable!()
                };
                spread += c.abs() * (hi as i128 - lo as i128);
            } else if item_syms > 0 && mono.len() == 1 {
                strides.push(c.abs());
            }
        }
        if spread == 0 {
            return true;
        }
        let g = strides.into_iter().fold(0i128, gcd);
        g > spread
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// `p` as `1*sym + c`?
fn single_sym(p: &Poly) -> Option<(Sym, i128)> {
    if p.terms.len() != 1 {
        return None;
    }
    let (m, &c) = p.terms.iter().next().unwrap();
    (m.len() == 1 && c == 1).then(|| (m[0], p.k))
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn add_cons(cons: &mut Vec<Cons>, neg: &mut Vec<Cons>, s: Sym, op: BinOp, rhs: Poly) {
    let mk = |lo: Option<Poly>, hi: Option<Poly>, eq: Option<Poly>| Cons { sym: s, lo, hi, eq };
    match op {
        BinOp::Lt => {
            cons.push(mk(None, Some(rhs.sub(&Poly::konst(1))), None));
            neg.push(mk(Some(rhs), None, None));
        }
        BinOp::Le => {
            cons.push(mk(None, Some(rhs.clone()), None));
            neg.push(mk(Some(rhs.add(&Poly::konst(1))), None, None));
        }
        BinOp::Gt => {
            cons.push(mk(Some(rhs.add(&Poly::konst(1))), None, None));
            neg.push(mk(None, Some(rhs), None));
        }
        BinOp::Ge => {
            cons.push(mk(Some(rhs.clone()), None, None));
            neg.push(mk(None, Some(rhs.sub(&Poly::konst(1))), None));
        }
        BinOp::Eq => {
            cons.push(mk(None, None, Some(rhs)));
        }
        BinOp::Ne => {
            neg.push(mk(None, None, Some(rhs)));
        }
        _ => {}
    }
}

/// Symbolic range of a symbol under the active constraints.
fn sym_range(s: Sym, cons: &[Cons]) -> (Option<Poly>, Option<Poly>) {
    if matches!(s, Sym::Param(_) | Sym::Opaque { varying: false, .. }) {
        // a group-uniform unknown has one value per group: the exact symbol
        // is always a tighter interval than any guard-derived bound on it
        return (Some(Poly::sym(s)), Some(Poly::sym(s)));
    }
    for c in cons {
        if c.sym != s {
            continue;
        }
        if let Some(eq) = &c.eq {
            return (Some(eq.clone()), Some(eq.clone()));
        }
        let lo = c.lo.clone().or_else(|| default_lo(s));
        let hi = c.hi.clone().or_else(|| default_hi(s));
        return (lo, hi);
    }
    (default_lo(s), default_hi(s))
}

fn default_lo(s: Sym) -> Option<Poly> {
    match s {
        Sym::Gid(_) | Sym::Lid(_) | Sym::Grp(_) => Some(Poly::konst(0)),
        Sym::LoopVar { lo, .. } => Some(Poly::konst(lo as i128)),
        // a uniform unknown / scalar parameter is one fixed value: exact
        Sym::Opaque { varying: false, .. } | Sym::Param(_) => Some(Poly::sym(s)),
        Sym::Opaque { varying: true, .. } => None,
    }
}

fn default_hi(s: Sym) -> Option<Poly> {
    match s {
        Sym::LoopVar { hi, .. } => Some(Poly::konst(hi as i128)),
        Sym::Opaque { varying: false, .. } | Sym::Param(_) => Some(Poly::sym(s)),
        _ => None,
    }
}

/// Symbolic interval of `p` under `cons` (either side may be unknown).
fn bounds(p: &Poly, cons: &[Cons]) -> (Option<Poly>, Option<Poly>) {
    let mut lo = Some(Poly::konst(p.k));
    let mut hi = Some(Poly::konst(p.k));
    for (mono, &c) in &p.terms {
        let (mlo, mhi) = if mono.len() == 1 {
            let (slo, shi) = sym_range(mono[0], cons);
            if c >= 0 {
                (
                    slo.map(|b| b.mul(&Poly::konst(c))),
                    shi.map(|b| b.mul(&Poly::konst(c))),
                )
            } else {
                (
                    shi.map(|b| b.mul(&Poly::konst(c))),
                    slo.map(|b| b.mul(&Poly::konst(c))),
                )
            }
        } else {
            // products: only constant factor ranges are combined
            let mut iv = Some((c, c));
            for s in mono {
                let (slo, shi) = sym_range(*s, cons);
                iv = match (
                    iv,
                    slo.and_then(|p| p.is_const()),
                    shi.and_then(|p| p.is_const()),
                ) {
                    (Some(iv), Some(a), Some(b)) => Some(mul_iv(iv, (a, b))),
                    _ => None,
                };
            }
            match iv {
                Some((a, b)) => (Some(Poly::konst(a)), Some(Poly::konst(b))),
                None => (None, None),
            }
        };
        lo = match (lo, mlo) {
            (Some(a), Some(b)) => Some(a.add(&b)),
            _ => None,
        };
        hi = match (hi, mhi) {
            (Some(a), Some(b)) => Some(a.add(&b)),
            _ => None,
        };
    }
    (lo, hi)
}

/// Is `lo - hi` a positive constant (the intervals have a gap)?
fn gap_positive(lo: &Option<Poly>, hi: &Option<Poly>) -> bool {
    match (lo, hi) {
        (Some(lo), Some(hi)) => lo.sub(hi).is_const().is_some_and(|g| g > 0),
        _ => false,
    }
}

fn collect_assigned(stmts: &[Stmt]) -> HashSet<String> {
    let mut out = HashSet::new();
    for s in stmts {
        collect_assigned_stmt(s, &mut out);
    }
    out
}

fn collect_assigned_stmt(s: &Stmt, out: &mut HashSet<String>) {
    match &s.kind {
        StmtKind::Expr(e) => collect_assigned_expr(e, out),
        StmtKind::Decl { decls, .. } => {
            // declarations shadow; treat as assigned so outer same-name vars
            // are not confused across passes (conservative but harmless)
            for d in decls {
                out.insert(d.name.clone());
            }
        }
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            for s in then_blk.iter().chain(else_blk) {
                collect_assigned_stmt(s, out);
            }
        }
        StmtKind::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                collect_assigned_stmt(i, out);
            }
            if let Some(st) = step {
                collect_assigned_expr(st, out);
            }
            for s in body {
                collect_assigned_stmt(s, out);
            }
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            for s in body {
                collect_assigned_stmt(s, out);
            }
        }
        StmtKind::Block(body) => {
            for s in body {
                collect_assigned_stmt(s, out);
            }
        }
        StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
    }
}

fn collect_assigned_expr(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Assign { target, value, .. } => {
            if let Expr::Ident(n) = target.as_ref() {
                out.insert(n.clone());
            }
            collect_assigned_expr(value, out);
        }
        Expr::Un {
            op: UnOp::PreInc | UnOp::PreDec,
            e,
        }
        | Expr::Post { e, .. } => {
            if let Expr::Ident(n) = e.as_ref() {
                out.insert(n.clone());
            }
        }
        Expr::Bin { l, r, .. } => {
            collect_assigned_expr(l, out);
            collect_assigned_expr(r, out);
        }
        Expr::Ternary { cond, t, f } => {
            collect_assigned_expr(cond, out);
            collect_assigned_expr(t, out);
            collect_assigned_expr(f, out);
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_assigned_expr(a, out);
            }
        }
        Expr::Index { base, index } => {
            collect_assigned_expr(base, out);
            collect_assigned_expr(index, out);
        }
        Expr::Un { e, .. } | Expr::Cast { e, .. } => collect_assigned_expr(e, out),
        Expr::IntLit { .. } | Expr::FloatLit { .. } | Expr::Ident(_) => {}
    }
}

fn collect_used_axes(
    tu: &ast::TranslationUnit,
    metas: &HashMap<String, FuncMeta>,
    f: &ast::FuncDef,
    axes: &mut [bool; 3],
) {
    // a pre-scan over the kernel and every reachable helper: which axes does
    // the kernel query? (drives the well-dimensioned-launch assumption)
    let mut worklist = vec![f.name.clone()];
    let mut seen = HashSet::new();
    while let Some(name) = worklist.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        let Some(def) = tu.funcs.iter().find(|g| g.name == name) else {
            continue;
        };
        let mut meta = FuncMeta::default();
        let mut callees = HashSet::new();
        for s in &def.body {
            scan_axes_stmt(s, axes, &mut meta, &mut callees);
        }
        worklist.extend(callees.into_iter().filter(|c| metas.contains_key(c)));
    }
}

fn scan_axes_stmt(
    s: &Stmt,
    axes: &mut [bool; 3],
    meta: &mut FuncMeta,
    callees: &mut HashSet<String>,
) {
    fn visit_expr(e: &Expr, axes: &mut [bool; 3], callees: &mut HashSet<String>) {
        if let Expr::Call { name, args } = e {
            if matches!(
                name.as_str(),
                "get_global_id" | "get_local_id" | "get_group_id"
            ) {
                match args.first() {
                    Some(Expr::IntLit { value, .. }) if *value < 3 => {
                        axes[*value as usize] = true;
                    }
                    _ => *axes = [true; 3],
                }
            } else {
                callees.insert(name.clone());
            }
            for a in args {
                visit_expr(a, axes, callees);
            }
            return;
        }
        match e {
            Expr::Bin { l, r, .. } => {
                visit_expr(l, axes, callees);
                visit_expr(r, axes, callees);
            }
            Expr::Un { e, .. } | Expr::Post { e, .. } | Expr::Cast { e, .. } => {
                visit_expr(e, axes, callees)
            }
            Expr::Assign { target, value, .. } => {
                visit_expr(target, axes, callees);
                visit_expr(value, axes, callees);
            }
            Expr::Ternary { cond, t, f } => {
                visit_expr(cond, axes, callees);
                visit_expr(t, axes, callees);
                visit_expr(f, axes, callees);
            }
            Expr::Index { base, index } => {
                visit_expr(base, axes, callees);
                visit_expr(index, axes, callees);
            }
            _ => {}
        }
    }
    let _ = meta;
    match &s.kind {
        StmtKind::Decl { decls, .. } => {
            for d in decls {
                if let Some(e) = &d.array_len {
                    visit_expr(e, axes, callees);
                }
                if let Some(e) = &d.init {
                    visit_expr(e, axes, callees);
                }
            }
        }
        StmtKind::Expr(e) => visit_expr(e, axes, callees),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            visit_expr(cond, axes, callees);
            for s in then_blk.iter().chain(else_blk) {
                scan_axes_stmt(s, axes, meta, callees);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                scan_axes_stmt(i, axes, meta, callees);
            }
            if let Some(c) = cond {
                visit_expr(c, axes, callees);
            }
            if let Some(st) = step {
                visit_expr(st, axes, callees);
            }
            for s in body {
                scan_axes_stmt(s, axes, meta, callees);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            visit_expr(cond, axes, callees);
            for s in body {
                scan_axes_stmt(s, axes, meta, callees);
            }
        }
        StmtKind::Return(Some(e)) => visit_expr(e, axes, callees),
        StmtKind::Block(body) => {
            for s in body {
                scan_axes_stmt(s, axes, meta, callees);
            }
        }
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
    }
}

// ---------------------------------------------------------------------------
// tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        analyze_source(src)
            .expect("source must compile")
            .diagnostics
    }

    fn has(diags: &[Diagnostic], kind: DiagKind, sev: Severity) -> bool {
        diags.iter().any(|d| d.kind == kind && d.severity == sev)
    }

    #[test]
    fn poly_arithmetic() {
        let gid = Poly::sym(Sym::Gid(0));
        let p = gid.mul(&Poly::konst(10)).add(&Poly::konst(3));
        assert_eq!(p.k, 3);
        assert_eq!(p.terms[&vec![Sym::Gid(0)]], 10);
        assert!(p.sub(&p).is_const() == Some(0));
        let q = p.mul(&Poly::sym(Sym::Param(1)));
        assert_eq!(q.terms[&vec![Sym::Gid(0), Sym::Param(1)]], 10);
        assert_eq!(q.terms[&vec![Sym::Param(1)]], 3);
    }

    #[test]
    fn divergent_barrier_flagged_with_span() {
        let d = lint(
            "__kernel void k(__global float* a) {\n\
             int i = (int)get_global_id(0);\n\
             if (i < 5) {\n    barrier(CLK_LOCAL_MEM_FENCE);\n  }\n\
             a[i] = 1.0f;\n}",
        );
        assert!(
            has(&d, DiagKind::BarrierDivergence, Severity::Error),
            "{d:?}"
        );
        let bd = d
            .iter()
            .find(|d| d.kind == DiagKind::BarrierDivergence)
            .unwrap();
        assert_eq!(bd.span.line, 4, "{bd}");
    }

    #[test]
    fn uniform_barrier_clean() {
        let d = lint(
            "__kernel void k(__global float* a, int n) {\n\
             int i = (int)get_global_id(0);\n\
             if (n > 3) { barrier(CLK_LOCAL_MEM_FENCE); }\n\
             a[i] = 1.0f;\n}",
        );
        assert!(
            !has(&d, DiagKind::BarrierDivergence, Severity::Error),
            "{d:?}"
        );
    }

    #[test]
    fn varying_return_poisons_later_barrier() {
        let d = lint(
            "__kernel void k(__global float* a) {\n\
             int i = (int)get_global_id(0);\n\
             if (i == 0) { return; }\n\
             barrier(CLK_LOCAL_MEM_FENCE);\n\
             a[i] = 1.0f;\n}",
        );
        assert!(
            has(&d, DiagKind::BarrierDivergence, Severity::Error),
            "{d:?}"
        );
    }

    #[test]
    fn local_race_without_barrier_warns() {
        let d = lint(
            "__kernel void k(__global float* out) {\n\
             __local float t[16];\n\
             int lid = (int)get_local_id(0);\n\
             t[lid] = (float)lid;\n\
             out[(int)get_global_id(0)] = t[15 - lid];\n}",
        );
        assert!(has(&d, DiagKind::DataRace, Severity::Warning), "{d:?}");
    }

    #[test]
    fn local_race_fixed_by_barrier() {
        let d = lint(
            "__kernel void k(__global float* out) {\n\
             __local float t[16];\n\
             int lid = (int)get_local_id(0);\n\
             t[lid] = (float)lid;\n\
             barrier(CLK_LOCAL_MEM_FENCE);\n\
             out[(int)get_global_id(0)] = t[15 - lid];\n}",
        );
        assert!(!has(&d, DiagKind::DataRace, Severity::Warning), "{d:?}");
        assert!(!has(&d, DiagKind::DataRace, Severity::Error), "{d:?}");
    }

    #[test]
    fn same_address_differing_values_is_definite_race() {
        let d = lint(
            "__kernel void k(__global int* out) {\n\
             out[0] = (int)get_global_id(0);\n}",
        );
        assert!(has(&d, DiagKind::DataRace, Severity::Error), "{d:?}");
    }

    #[test]
    fn same_address_same_value_benign() {
        let d = lint(
            "__kernel void k(__global int* out, int n) {\n\
             out[0] = n * 2;\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tree_reduction_lints_clean() {
        let d = lint(
            "__kernel void k(__global const float* in, __global float* partials) {\n\
             __local float sdata[64];\n\
             int lid = (int)get_local_id(0);\n\
             sdata[lid] = in[(int)get_global_id(0)];\n\
             barrier(CLK_LOCAL_MEM_FENCE);\n\
             for (int s = 32; s > 0; s >>= 1) {\n\
               if (lid < s) { sdata[lid] += sdata[lid + s]; }\n\
               barrier(CLK_LOCAL_MEM_FENCE);\n\
             }\n\
             if (lid == 0) { partials[(int)get_group_id(0)] = sdata[0]; }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn strided_private_chunks_benign() {
        // EP shape: q[tid * 10 + i] with i in 0..10
        let d = lint(
            "__kernel void k(__global int* q) {\n\
             int tid = (int)get_global_id(0);\n\
             for (int i = 0; i < 10; i++) { q[tid * 10 + i] = i; }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn overlapping_strided_chunks_warn() {
        // stride 8 < spread 9: chunks of adjacent items overlap
        let d = lint(
            "__kernel void k(__global int* q) {\n\
             int tid = (int)get_global_id(0);\n\
             for (int i = 0; i < 10; i++) { q[tid * 8 + i] = i; }\n}",
        );
        assert!(has(&d, DiagKind::DataRace, Severity::Warning), "{d:?}");
    }

    #[test]
    fn local_constant_oob_flagged() {
        let d = lint(
            "__kernel void k(__global float* out) {\n\
             __local float t[16];\n\
             t[20] = 1.0f;\n\
             barrier(CLK_LOCAL_MEM_FENCE);\n\
             out[(int)get_global_id(0)] = t[0];\n}",
        );
        assert!(has(&d, DiagKind::OutOfBounds, Severity::Error), "{d:?}");
        let oob = d.iter().find(|d| d.kind == DiagKind::OutOfBounds).unwrap();
        assert_eq!(oob.span.line, 3, "{oob}");
    }

    #[test]
    fn private_array_in_bounds_loop_clean() {
        let d = lint(
            "__kernel void k(__global int* out) {\n\
             int acc[10];\n\
             for (int i = 0; i < 10; i++) { acc[i] = i; }\n\
             out[(int)get_global_id(0)] = acc[9];\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn launch_access_recorded_and_bounded() {
        let a = analyze_source(
            "__kernel void k(__global float* out) {\n\
             out[(int)get_global_id(0) + 1000] = 1.0f;\n}",
        )
        .unwrap();
        let sum = &a.kernels["k"];
        assert_eq!(sum.launch_accesses.len(), 1);
        let acc = &sum.launch_accesses[0];
        assert_eq!(acc.param, 0);
        let b = acc
            .element_bounds(&[4, 1, 1], &[4, 1, 1], &HashMap::new())
            .unwrap();
        assert_eq!(b, (1000, 1003));
    }

    #[test]
    fn scalar_param_feeds_launch_bounds() {
        let a = analyze_source(
            "__kernel void k(__global float* out, int off) {\n\
             out[(int)get_global_id(0) + off] = 1.0f;\n}",
        )
        .unwrap();
        let acc = &a.kernels["k"].launch_accesses[0];
        let mut scalars = HashMap::new();
        scalars.insert(1usize, 5i128);
        let b = acc
            .element_bounds(&[8, 1, 1], &[8, 1, 1], &scalars)
            .unwrap();
        assert_eq!(b, (5, 12));
    }

    #[test]
    fn transpose_tile_pattern_lints_clean() {
        let d = lint(
            "__kernel void t(__global float* dst, __global const float* src,\n\
                             const int h, const int w) {\n\
             __local float tile[256];\n\
             int gx = (int)get_global_id(0);\n\
             int gy = (int)get_global_id(1);\n\
             int lx = (int)get_local_id(0);\n\
             int ly = (int)get_local_id(1);\n\
             tile[ly * 16 + lx] = src[gy * w + gx];\n\
             barrier(CLK_LOCAL_MEM_FENCE);\n\
             int ox = (int)get_group_id(1) * 16 + lx;\n\
             int oy = (int)get_group_id(0) * 16 + ly;\n\
             dst[oy * h + ox] = tile[lx * 16 + ly];\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn transpose_without_barrier_warns() {
        let d = lint(
            "__kernel void t(__global float* dst, __global const float* src,\n\
                             const int h, const int w) {\n\
             __local float tile[256];\n\
             int gx = (int)get_global_id(0);\n\
             int gy = (int)get_global_id(1);\n\
             int lx = (int)get_local_id(0);\n\
             int ly = (int)get_local_id(1);\n\
             tile[ly * 16 + lx] = src[gy * w + gx];\n\
             dst[(gx * h) + gy] = tile[lx * 16 + ly];\n}",
        );
        assert!(has(&d, DiagKind::DataRace, Severity::Warning), "{d:?}");
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            kernel: "k".into(),
            span: Span::new(3, 5),
            severity: Severity::Warning,
            kind: DiagKind::DataRace,
            message: "possible data race".into(),
        };
        assert_eq!(
            d.to_string(),
            "warning[race] kernel `k`, line 3:5: possible data race"
        );
    }
}
