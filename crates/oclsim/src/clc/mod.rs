//! The OpenCL C compiler front-end: preprocessor, lexer, parser, and
//! semantic analysis producing the executable IR in [`crate::exec::ir`].

pub mod analysis;
pub mod ast;
pub mod dataflow;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod pp;
pub mod sema;
pub mod snippet;
