//! Platform discovery: the entry point of the simulated OpenCL stack.
//!
//! A [`Platform`] owns a set of [`Device`]s. The default platform exposes
//! the paper's testbed: a Tesla-class GPU, a Quadro-class GPU, and the Xeon
//! host CPU, so code written against `oclsim` sees the same device zoo the
//! paper's machines provided.

use crate::device::{Device, DeviceProfile, DeviceType};

/// A simulated OpenCL platform: a named collection of devices.
#[derive(Debug, Clone)]
pub struct Platform {
    name: String,
    devices: Vec<Device>,
}

impl Platform {
    /// The default platform, mirroring the paper's testbed (§V-B/§V-C):
    /// one Tesla C2050/C2070-class GPU, one Quadro FX 380-class GPU and the
    /// Xeon host as a CPU device, in that order, followed by the two
    /// cache-capable Tesla variants used by the cache observability stack
    /// and the extended Fig. 9 portability experiment. The paper devices
    /// come first so default selection (`default_accelerator`) and
    /// name-fragment lookups like `"tesla"` keep resolving to the plain
    /// roofline-modeled Tesla.
    pub fn default_platform() -> Self {
        Platform {
            name: "oclsim (paper testbed)".into(),
            devices: vec![
                Device::new(DeviceProfile::tesla_c2050()),
                Device::new(DeviceProfile::quadro_fx380()),
                Device::new(DeviceProfile::xeon_host()),
                Device::new(DeviceProfile::tesla_c2050_cached()),
                Device::new(DeviceProfile::tesla_c2050_small_l1()),
            ],
        }
    }

    /// Build a platform with a custom device list (for tests and ablations).
    pub fn with_devices(name: impl Into<String>, profiles: Vec<DeviceProfile>) -> Self {
        Platform {
            name: name.into(),
            devices: profiles.into_iter().map(Device::new).collect(),
        }
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All devices of the platform in discovery order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Devices of a given type.
    pub fn devices_of_type(&self, ty: DeviceType) -> Vec<Device> {
        self.devices
            .iter()
            .filter(|d| d.device_type() == ty)
            .cloned()
            .collect()
    }

    /// The device HPL selects by default: "the first device found in the
    /// system that is not a standard general-purpose CPU" (§III-C). Falls
    /// back to the first device if only CPUs exist.
    pub fn default_accelerator(&self) -> Option<Device> {
        self.devices
            .iter()
            .find(|d| d.device_type() != DeviceType::Cpu)
            .or_else(|| self.devices.first())
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_platform_has_paper_devices() {
        let p = Platform::default_platform();
        assert_eq!(p.devices().len(), 5);
        assert_eq!(p.devices_of_type(DeviceType::Gpu).len(), 4);
        assert_eq!(p.devices_of_type(DeviceType::Cpu).len(), 1);
        // the paper's three devices first, cache-capable variants appended
        assert!(p.devices()[0].profile().cache.is_none());
        assert!(p.devices()[1].profile().cache.is_none());
        assert!(p.devices()[2].profile().cache.is_none());
        assert!(p.devices()[3].profile().cache.is_some());
        assert!(p.devices()[4].profile().cache.is_some());
    }

    #[test]
    fn default_accelerator_is_first_non_cpu() {
        let p = Platform::default_platform();
        let d = p.default_accelerator().unwrap();
        assert_eq!(d.device_type(), DeviceType::Gpu);
        assert!(d.name().contains("Tesla"));
    }

    #[test]
    fn cpu_only_platform_falls_back_to_cpu() {
        let p = Platform::with_devices("cpu-only", vec![DeviceProfile::xeon_host()]);
        let d = p.default_accelerator().unwrap();
        assert_eq!(d.device_type(), DeviceType::Cpu);
    }

    #[test]
    fn custom_platform_preserves_order() {
        let p = Platform::with_devices(
            "two-gpus",
            vec![DeviceProfile::quadro_fx380(), DeviceProfile::tesla_c2050()],
        );
        assert!(p.devices()[0].name().contains("Quadro"));
        assert!(p.default_accelerator().unwrap().name().contains("Quadro"));
    }
}
