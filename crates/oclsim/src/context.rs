//! Contexts: allocation scopes tying buffers and programs to devices.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::buffer::{Buffer, MemAccess};
use crate::device::Device;
use crate::error::{Error, Result};

/// An execution context over one or more devices, mirroring `cl_context`.
///
/// The context tracks how much global memory has been allocated and
/// enforces the capacity of the smallest member device, which is how the
/// paper's §V-C "due to its smaller memory we had to reduce the problem
/// size" constraint shows up in the simulation.
#[derive(Debug, Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

#[derive(Debug)]
struct ContextInner {
    devices: Vec<Device>,
    allocated: AtomicU64,
    capacity: u64,
}

impl Context {
    /// Create a context over `devices`. Fails on an empty device list.
    pub fn new(devices: &[Device]) -> Result<Context> {
        if devices.is_empty() {
            return Err(Error::InvalidOperation(
                "context needs at least one device".into(),
            ));
        }
        let capacity = devices
            .iter()
            .map(|d| d.profile().global_mem_bytes)
            .min()
            .expect("non-empty device list");
        Ok(Context {
            inner: Arc::new(ContextInner {
                devices: devices.to_vec(),
                allocated: AtomicU64::new(0),
                capacity,
            }),
        })
    }

    /// The devices of this context.
    pub fn devices(&self) -> &[Device] {
        &self.inner.devices
    }

    /// Whether `device` belongs to this context.
    pub fn contains(&self, device: &Device) -> bool {
        self.inner.devices.iter().any(|d| d == device)
    }

    /// Total bytes currently allocated in this context.
    pub fn allocated_bytes(&self) -> u64 {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// Global-memory capacity (minimum across member devices).
    pub fn capacity_bytes(&self) -> u64 {
        self.inner.capacity
    }

    /// Allocate a device buffer, accounting against the context capacity.
    pub fn create_buffer(&self, len_bytes: usize, access: MemAccess) -> Result<Buffer> {
        let inner = &self.inner;
        // reserve; roll back on failure
        let prev = inner
            .allocated
            .fetch_add(len_bytes as u64, Ordering::Relaxed);
        if prev + len_bytes as u64 > inner.capacity {
            inner
                .allocated
                .fetch_sub(len_bytes as u64, Ordering::Relaxed);
            return Err(Error::OutOfResources(format!(
                "allocating {len_bytes} bytes would exceed device global memory \
                 ({} of {} bytes in use)",
                prev, inner.capacity
            )));
        }
        Ok(Buffer::new(len_bytes, access))
    }

    /// Allocate and initialise from a host slice in one step
    /// (the `CL_MEM_COPY_HOST_PTR` idiom).
    pub fn create_buffer_from<T: crate::types::DeviceScalar>(
        &self,
        data: &[T],
        access: MemAccess,
    ) -> Result<Buffer> {
        let buf = self.create_buffer(std::mem::size_of_val(data), access)?;
        buf.write_slice(0, data)?;
        Ok(buf)
    }

    /// Return the accounted bytes for a released buffer. `oclsim` buffers
    /// are reference-counted; callers that want exact accounting release
    /// explicitly (dropping the handle alone does not inform the context).
    pub fn release_buffer(&self, buffer: Buffer) {
        self.inner
            .allocated
            .fetch_sub(buffer.len_bytes() as u64, Ordering::Relaxed);
        drop(buffer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;

    fn ctx_with(profile: DeviceProfile) -> Context {
        Context::new(&[Device::new(profile)]).unwrap()
    }

    #[test]
    fn empty_context_rejected() {
        assert!(Context::new(&[]).is_err());
    }

    #[test]
    fn allocation_accounting() {
        let ctx = ctx_with(DeviceProfile::tesla_c2050());
        let b = ctx.create_buffer(1000, MemAccess::ReadWrite).unwrap();
        assert_eq!(ctx.allocated_bytes(), 1000);
        ctx.release_buffer(b);
        assert_eq!(ctx.allocated_bytes(), 0);
    }

    #[test]
    fn capacity_enforced_by_smallest_device() {
        // Quadro FX 380: 256 MB. One big allocation must fail.
        let ctx = ctx_with(DeviceProfile::quadro_fx380());
        assert_eq!(ctx.capacity_bytes(), 256 << 20);
        let err = ctx.create_buffer(usize::try_from(300u64 << 20).unwrap(), MemAccess::ReadWrite);
        assert!(matches!(err, Err(Error::OutOfResources(_))));
        // failed allocation must not leak accounting
        assert_eq!(ctx.allocated_bytes(), 0);
    }

    #[test]
    fn buffer_from_host_data() {
        let ctx = ctx_with(DeviceProfile::tesla_c2050());
        let b = ctx
            .create_buffer_from(&[1i32, 2, 3], MemAccess::ReadOnly)
            .unwrap();
        assert_eq!(b.read_vec::<i32>(0, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(ctx.allocated_bytes(), 12);
    }

    #[test]
    fn contains_checks_membership() {
        let d1 = Device::new(DeviceProfile::tesla_c2050());
        let d2 = Device::new(DeviceProfile::quadro_fx380());
        let ctx = Context::new(std::slice::from_ref(&d1)).unwrap();
        assert!(ctx.contains(&d1));
        assert!(!ctx.contains(&d2));
    }
}
