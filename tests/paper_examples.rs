//! End-to-end tests of the paper's §IV example codes, spanning
//! `hpl` + `oclsim`: SAXPY (Fig. 3), dot product (Fig. 4), spmv (Fig. 5).

use hpl::prelude::*;

#[test]
fn figure3_saxpy() {
    fn saxpy(y: &Array<f64, 1>, x: &Array<f64, 1>, a: &Double) {
        y.at(idx()).assign(a.v() * x.at(idx()) + y.at(idx()));
    }

    let n = 1000;
    let myvector: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let x = Array::<f64, 1>::from_vec([n], (0..n).map(|i| 3.0 * i as f64).collect());
    let y = Array::<f64, 1>::from_vec([n], myvector);
    let a = Double::new(2.0);

    eval(saxpy).run((&y, &x, &a)).unwrap();

    for i in 0..n {
        assert_eq!(y.get(i), 2.0 * 3.0 * i as f64 + i as f64);
    }
}

#[test]
fn figure4_dot_product() {
    const N: usize = 256;
    const M: usize = 32;
    const N_GROUP: usize = N / M;

    fn dotp(v1: &Array<f32, 1>, v2: &Array<f32, 1>, p_sums: &Array<f32, 1>) {
        let shared_m = Array::<f32, 1>::local([M]);
        shared_m.at(lidx()).assign(v1.at(idx()) * v2.at(idx()));
        barrier(LOCAL);
        if_(lidx().eq_(0), || {
            for_(0, M as i32, |i| {
                p_sums.at(gidx()).assign_add(shared_m.at(i));
            });
        });
    }

    let v1 = Array::<f32, 1>::from_vec([N], (0..N).map(|i| (i % 9) as f32).collect());
    let v2 = Array::<f32, 1>::from_vec([N], (0..N).map(|i| (i % 4) as f32).collect());
    let p_sums = Array::<f32, 1>::new([N_GROUP]);

    eval(dotp)
        .global(&[N])
        .local(&[M])
        .run((&v1, &v2, &p_sums))
        .unwrap();

    let mut result = 0.0f32;
    for i in 0..N_GROUP {
        result += p_sums.get(i);
    }
    let expect: f32 = (0..N).map(|i| ((i % 9) * (i % 4)) as f32).sum();
    assert_eq!(result, expect);
}

#[test]
fn figure5_spmv_matches_serial_loop() {
    // the paper's Figure 5(a) serial loop is the reference for Figure 5(b)
    let cfg = benchsuite::spmv::SpmvConfig {
        n: 64,
        density: 0.1,
        seed: 3,
    };
    let problem = benchsuite::spmv::generate(&cfg);
    let expect = benchsuite::spmv::serial(&problem);

    let device = hpl::runtime().default_device();
    let (result, _) = benchsuite::spmv::hpl_version::run(&cfg, &problem, &device).unwrap();
    assert!(benchsuite::spmv::results_match(&expect, &result));
}

#[test]
fn figure2_domain_identifiers() {
    // reproduce Figure 2's 4x8 global / 2x4 local decomposition and check
    // every predefined variable agrees with the figure
    fn probe(
        gx: &Array<i32, 2>,
        gy: &Array<i32, 2>,
        lx: &Array<i32, 2>,
        ly: &Array<i32, 2>,
        grx: &Array<i32, 2>,
        gry: &Array<i32, 2>,
    ) {
        gx.at((idx(), idy())).assign(idx());
        gy.at((idx(), idy())).assign(idy());
        lx.at((idx(), idy())).assign(lidx());
        ly.at((idx(), idy())).assign(lidy());
        grx.at((idx(), idy())).assign(gidx());
        gry.at((idx(), idy())).assign(gidy());
    }

    let mk = || Array::<i32, 2>::new([4, 8]);
    let (gx, gy, lx, ly, grx, gry) = (mk(), mk(), mk(), mk(), mk(), mk());
    eval(probe)
        .global(&[4, 8])
        .local(&[2, 4])
        .run((&gx, &gy, &lx, &ly, &grx, &gry))
        .unwrap();

    // the paper: threads (1,2), (1,6), (3,2), (3,6) all have local id (1,2)
    for (i, j) in [(1usize, 2usize), (1, 6), (3, 2), (3, 6)] {
        assert_eq!(gx.get((i, j)), i as i32);
        assert_eq!(gy.get((i, j)), j as i32);
        assert_eq!(lx.get((i, j)), 1, "thread ({i},{j})");
        assert_eq!(ly.get((i, j)), 2, "thread ({i},{j})");
    }
    // group ids: thread (3,6) belongs to group (1,1)
    assert_eq!(grx.get((3, 6)), 1);
    assert_eq!(gry.get((3, 6)), 1);
    assert_eq!(grx.get((0, 0)), 0);
    assert_eq!(gry.get((0, 7)), 1);
}

#[test]
fn sizes_and_group_counts_available_in_kernels() {
    fn probe(out: &Array<i32, 1>) {
        if_(idx().eq_(0), || {
            out.at(0).assign(szx());
            out.at(1).assign(lszx());
            out.at(2).assign(ngroupsx());
        });
    }
    let out = Array::<i32, 1>::new([3]);
    eval(probe).global(&[64]).local(&[16]).run((&out,)).unwrap();
    assert_eq!(out.to_vec(), vec![64, 16, 4]);
}
