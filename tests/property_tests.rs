//! Property-based tests across the whole stack: randomly generated
//! expressions recorded through HPL, compiled by oclsim, executed on the
//! simulated device, and compared against a host-side evaluation of the
//! same expression tree.

use hpl::prelude::*;
use hpl::Expr;
use proptest::prelude::*;

/// A little expression language we can both record as HPL IR and evaluate
/// directly on the host.
#[derive(Debug, Clone)]
enum TinyExpr {
    /// The element `input[idx]`.
    Input,
    /// An i32 literal (kept small to avoid overflow traps in products).
    Lit(i8),
    Add(Box<TinyExpr>, Box<TinyExpr>),
    Sub(Box<TinyExpr>, Box<TinyExpr>),
    Mul(Box<TinyExpr>, Box<TinyExpr>),
    /// `cond ? t : f` driven by a comparison of two sub-expressions.
    Select(Box<TinyExpr>, Box<TinyExpr>, Box<TinyExpr>, Box<TinyExpr>),
}

impl TinyExpr {
    fn eval_host(&self, x: i32) -> i32 {
        match self {
            TinyExpr::Input => x,
            TinyExpr::Lit(v) => *v as i32,
            TinyExpr::Add(a, b) => a.eval_host(x).wrapping_add(b.eval_host(x)),
            TinyExpr::Sub(a, b) => a.eval_host(x).wrapping_sub(b.eval_host(x)),
            TinyExpr::Mul(a, b) => a.eval_host(x).wrapping_mul(b.eval_host(x)),
            TinyExpr::Select(l, r, t, f) => {
                if l.eval_host(x) < r.eval_host(x) {
                    t.eval_host(x)
                } else {
                    f.eval_host(x)
                }
            }
        }
    }

    fn record(&self, x: &Expr<i32>) -> Expr<i32> {
        match self {
            TinyExpr::Input => x.clone(),
            TinyExpr::Lit(v) => (*v as i32).into_expr(),
            TinyExpr::Add(a, b) => a.record(x) + b.record(x),
            TinyExpr::Sub(a, b) => a.record(x) - b.record(x),
            TinyExpr::Mul(a, b) => a.record(x) * b.record(x),
            TinyExpr::Select(l, r, t, f) => {
                l.record(x).lt(r.record(x)).select(t.record(x), f.record(x))
            }
        }
    }
}

use hpl::IntoExpr;

fn tiny_expr() -> impl Strategy<Value = TinyExpr> {
    let leaf = prop_oneof![Just(TinyExpr::Input), any::<i8>().prop_map(TinyExpr::Lit),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TinyExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TinyExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TinyExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone(), inner).prop_map(|(l, r, t, f)| {
                TinyExpr::Select(Box::new(l), Box::new(r), Box::new(t), Box::new(f))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Any expression of the tiny language computes the same value through
    /// capture -> OpenCL C -> compile -> SIMT execution as on the host.
    #[test]
    fn recorded_expressions_match_host_eval(
        tree in tiny_expr(),
        inputs in proptest::collection::vec(-100i32..100, 8..64),
    ) {
        let n = inputs.len();
        let input = Array::<i32, 1>::from_vec([n], inputs.clone());
        let out = Array::<i32, 1>::new([n]);

        // the closure must be Copy + 'static to serve as a kernel
        // function, so it captures a leaked shared reference to the tree;
        // every case shares the closure's TypeId, so the cache is cleared
        // to force a fresh capture of this case's tree
        hpl::clear_kernel_cache();
        let tree_ref: &'static TinyExpr = Box::leak(Box::new(tree.clone()));
        let kernel = move |out: &Array<i32, 1>, input: &Array<i32, 1>| {
            let x = Int::new(0);
            x.assign(input.at(idx()));
            out.at(idx()).assign(tree_ref.record(&x.v()));
        };
        eval(kernel).run((&out, &input)).unwrap();

        let got = out.to_vec();
        for (i, &x) in inputs.iter().enumerate() {
            prop_assert_eq!(got[i], tree.eval_host(x), "input {}", x);
        }
    }

    /// patterns::reduce_sum equals the host sum for arbitrary exact inputs.
    #[test]
    fn reduce_sum_matches_host(
        values in proptest::collection::vec(-512i32..512, 1..700),
    ) {
        let data: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let arr = Array::<f64, 1>::from_vec([data.len()], data.clone());
        let device_sum = hpl::patterns::reduce_sum(&arr).unwrap();
        let host_sum: f64 = data.iter().sum();
        prop_assert_eq!(device_sum, host_sum);
    }

    /// Transposing twice on the device is the identity.
    #[test]
    fn transpose_involution(
        rows_t in 1usize..6,
        cols_t in 1usize..6,
        seed in any::<u32>(),
    ) {
        let (h, w) = (rows_t * 16, cols_t * 16);
        let data: Vec<f32> = (0..h * w).map(|i| ((i as u32).wrapping_mul(seed) % 1000) as f32).collect();

        fn tr(dst: &Array<f32, 2>, src: &Array<f32, 2>) {
            // global domain is (w, h): idx spans src columns = dst rows
            dst.at((idx(), idy())).assign(src.at((idy(), idx())));
        }

        let a = Array::<f32, 2>::from_vec([h, w], data.clone());
        let b = Array::<f32, 2>::new([w, h]);
        let c = Array::<f32, 2>::new([h, w]);
        eval(tr).global(&[w, h]).run((&b, &a)).unwrap();
        eval(tr).global(&[h, w]).run((&c, &b)).unwrap();
        prop_assert_eq!(c.to_vec(), data);
    }

    /// The device map pattern equals the host map for an affine function.
    #[test]
    fn map_matches_host(
        values in proptest::collection::vec(-1000i32..1000, 1..300),
        scale in -8i32..8,
    ) {
        let data: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let src = Array::<f64, 1>::from_vec([data.len()], data.clone());
        let dst = Array::<f64, 1>::new([data.len()]);
        let s = scale as f64;
        // closure captures `s` by value: same TypeId across cases, so the
        // cached kernel would keep the first `s` — bake it via a scalar arg
        fn affine(dst: &Array<f64, 1>, src: &Array<f64, 1>, s: &Double) {
            dst.at(idx()).assign(src.at(idx()) * s.v() + 1.0);
        }
        let sv = Double::new(s);
        eval(affine).run((&dst, &src, &sv)).unwrap();
        let got = dst.to_vec();
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(got[i], x * s + 1.0);
        }
    }
}
