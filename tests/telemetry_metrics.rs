//! Telemetry determinism: the canonical metrics snapshot is a pure
//! function of the workload, independent of scheduling.
//!
//! The same logical workload is run twice — once through the blocking
//! `run()` path (in-order queue) and once through `run_async()` (out-of-
//! order queue, all launches in flight before the first wait) — and the
//! canonical `metrics_text(true)` snapshots must be **byte-identical**:
//! every counter in the canonical set (cache lookups, coherence
//! decisions, transfer bytes, queue admissions, dispatch/retire totals)
//! is workload-determined, never timing-determined. Wall-clock metrics
//! (compile-time histograms, queue-depth gauges) are excluded by the
//! canonicalizer itself.
//!
//! `ci.sh` runs this whole suite under `OCLSIM_THREADS=1` and `=4`, and
//! additionally diffs `report -- metrics` output across thread counts, so
//! the same snapshots are also proven identical across dispatcher pools.

use hpl::prelude::*;
use hpl::telemetry;
use proptest::prelude::*;
use std::sync::Mutex;

/// Metrics are process-global; tests in this file must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn scale(y: &Array<f32, 1>, a: &Float) {
    y.at(idx()).assign(y.at(idx()) * a.v());
}

/// One workload: upload, `iters` dependent kernel launches, read back.
/// The kernel function is shared between modes, so both hit the same
/// cache entry once warm.
fn run_workload(sync: bool, len: usize, iters: usize) -> Vec<f32> {
    let y = Array::<f32, 1>::from_vec([len], vec![1.0; len]);
    let a = Float::new(1.5);
    if sync {
        for _ in 0..iters {
            eval(scale).run((&y, &a)).unwrap();
        }
    } else {
        let mut handles = Vec::with_capacity(iters);
        for _ in 0..iters {
            handles.push(eval(scale).run_async((&y, &a)).unwrap());
        }
        for h in handles {
            h.wait().unwrap();
        }
    }
    y.to_vec()
}

/// Warm the kernel cache so neither measured run records or compiles.
fn warm() {
    run_workload(true, 16, 1);
    run_workload(false, 16, 1);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// In-order and out-of-order execution of the same workload produce
    /// byte-identical canonical snapshots, for any size and launch count.
    #[test]
    fn canonical_snapshot_identical_sync_vs_async(
        len in 32usize..256,
        iters in 1usize..6,
    ) {
        let _guard = SERIAL.lock().unwrap();
        warm();

        telemetry::reset_metrics();
        let sync_result = run_workload(true, len, iters);
        let sync_snapshot = telemetry::metrics_text(true);

        telemetry::reset_metrics();
        let async_result = run_workload(false, len, iters);
        let async_snapshot = telemetry::metrics_text(true);

        prop_assert_eq!(sync_result, async_result);
        prop_assert_eq!(sync_snapshot, async_snapshot);
    }
}

#[test]
fn canonical_snapshot_reflects_the_workload() {
    let _guard = SERIAL.lock().unwrap();
    warm();
    telemetry::reset_metrics();
    let n = 64;
    run_workload(true, n, 3);
    let snap = telemetry::metrics_text(true);
    // steady state: 3 cache hits, no misses
    assert!(snap.contains("hpl_kernel_cache_hits_total 3"), "{snap}");
    assert!(snap.contains("hpl_kernel_cache_misses_total 0"), "{snap}");
    // one upload of n floats, one read-back, two coherence hits
    assert!(snap.contains("hpl_h2d_transfers_total 1"), "{snap}");
    assert!(
        snap.contains(&format!("hpl_h2d_bytes_total {}", 4 * n)),
        "{snap}"
    );
    assert!(snap.contains("hpl_d2h_transfers_total 1"), "{snap}");
    assert!(snap.contains("hpl_coherence_hits_total 2"), "{snap}");
    assert!(snap.contains("hpl_redundant_uploads_total 0"), "{snap}");
    // queue admissions: 1 write + 3 kernels + 1 read, all dispatched and
    // retired with no errors
    assert!(snap.contains("oclsim_enqueued_writes_total 1"), "{snap}");
    assert!(snap.contains("oclsim_enqueued_kernels_total 3"), "{snap}");
    assert!(snap.contains("oclsim_enqueued_reads_total 1"), "{snap}");
    assert!(snap.contains("oclsim_dispatched_total 5"), "{snap}");
    assert!(snap.contains("oclsim_retired_total 5"), "{snap}");
    assert!(snap.contains("oclsim_command_errors_total 0"), "{snap}");
    // the canonicalizer must exclude every wall-clock metric
    assert!(!snap.contains("oclsim_compile_us"), "{snap}");
    assert!(!snap.contains("queue_depth"), "{snap}");
}
