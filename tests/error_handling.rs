//! Failure-injection tests across the stack: capability gates, launch
//! geometry validation, runtime traps, and misuse of the recording API.

use hpl::prelude::*;

#[test]
fn fp64_kernel_rejected_on_quadro_through_hpl() {
    fn dbl(y: &Array<f64, 1>) {
        y.at(idx()).assign(y.at(idx()) * 2.0f64);
    }
    let quadro = hpl::runtime().device_named("quadro").unwrap();
    let y = Array::<f64, 1>::new([16]);
    let err = eval(dbl).device(&quadro).run((&y,)).unwrap_err();
    let hpl::Error::Backend(oclsim::Error::UnsupportedCapability(msg)) = &err else {
        panic!("expected a capability error, got {err}");
    };
    assert!(msg.contains("double precision"), "{msg}");

    // the same kernel runs fine on the Tesla
    let tesla = hpl::runtime().device_named("tesla").unwrap();
    eval(dbl).device(&tesla).run((&y,)).unwrap();
}

#[test]
fn non_dividing_local_domain_rejected() {
    fn touch(y: &Array<f32, 1>) {
        y.at(idx()).assign(1.0f32);
    }
    let y = Array::<f32, 1>::new([100]);
    let err = eval(touch)
        .global(&[100])
        .local(&[33])
        .run((&y,))
        .unwrap_err();
    assert!(
        matches!(&err, hpl::Error::Backend(oclsim::Error::InvalidLaunch(_))),
        "{err}"
    );
}

#[test]
fn work_group_too_large_rejected() {
    fn touch(y: &Array<f32, 1>) {
        y.at(idx()).assign(1.0f32);
    }
    let y = Array::<f32, 1>::new([4096]);
    // Tesla's maximum work-group is 1024
    let err = eval(touch)
        .global(&[4096])
        .local(&[2048])
        .run((&y,))
        .unwrap_err();
    assert!(
        matches!(&err, hpl::Error::Backend(oclsim::Error::InvalidLaunch(_))),
        "{err}"
    );
}

#[test]
fn out_of_bounds_kernel_access_trapped() {
    fn oob(y: &Array<f32, 1>, n: &Int) {
        y.at(idx() + n.v()).assign(1.0f32);
    }
    let y = Array::<f32, 1>::new([16]);
    let n = Int::new(1000);
    let err = eval(oob).run((&y, &n)).unwrap_err();
    assert!(
        matches!(&err, hpl::Error::Backend(oclsim::Error::MemoryFault { .. })),
        "{err}"
    );
}

#[test]
fn integer_division_by_zero_trapped() {
    fn div(y: &Array<i32, 1>, d: &Int) {
        y.at(idx()).assign(100 / d.v());
    }
    let y = Array::<i32, 1>::new([4]);
    let d = Int::new(0);
    let err = eval(div).run((&y, &d)).unwrap_err();
    assert!(
        matches!(&err, hpl::Error::Backend(oclsim::Error::ArithmeticFault(_))),
        "{err}"
    );
    // and the same kernel works with a sane divisor (cached binary reused)
    d.set(4);
    eval(div).run((&y, &d)).unwrap();
    assert_eq!(y.get(0), 25);
}

#[test]
fn divergent_barrier_trapped() {
    fn bad(y: &Array<f32, 1>) {
        if_(lidx().eq_(0), || {
            barrier(LOCAL);
        });
        y.at(idx()).assign(1.0f32);
    }
    let y = Array::<f32, 1>::new([64]);
    let err = eval(bad).global(&[64]).local(&[8]).run((&y,)).unwrap_err();
    assert!(
        matches!(
            &err,
            hpl::Error::Backend(oclsim::Error::BarrierDivergence(_))
        ),
        "{err}"
    );
}

#[test]
fn failed_launch_leaves_arrays_usable() {
    fn oob(y: &Array<f32, 1>, n: &Int) {
        y.at(idx() + n.v()).assign(1.0f32);
    }
    let y = Array::<f32, 1>::from_vec([8], vec![5.0; 8]);
    let n = Int::new(9999);
    let _ = eval(oob).run((&y, &n)).unwrap_err();
    // the host data must still be readable (whatever the device did)
    let _ = y.to_vec();
    // and a correct launch afterwards works
    n.set(0);
    eval(oob).run((&y, &n)).unwrap();
    assert_eq!(y.get(3), 1.0);
}

#[test]
fn eval_with_no_global_domain_and_no_arrays_fails_cleanly() {
    fn nothing(v: &Int) {
        let x = Int::new(0);
        x.assign(v.v());
    }
    let v = Int::new(1);
    let err = eval(nothing).run((&v,)).unwrap_err();
    assert!(matches!(err, hpl::Error::InvalidEval(_)));
}

#[test]
fn kernel_panics_do_not_poison_later_evals() {
    fn bad(_y: &Array<f32, 1>) {
        panic!("user bug inside a kernel function");
    }
    fn good(y: &Array<f32, 1>) {
        y.at(idx()).assign(2.0f32);
    }
    let y = Array::<f32, 1>::new([8]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = eval(bad).run((&y,));
    }));
    assert!(result.is_err(), "the panic propagates");
    // the recorder must have been cleaned up: the next eval works
    eval(good).run((&y,)).unwrap();
    assert_eq!(y.get(0), 2.0);
}

#[test]
fn quadro_memory_capacity_enforced() {
    // a Quadro FX 380 has 256 MB; a 400 MB array cannot be placed there
    fn touch(y: &Array<f32, 1>) {
        y.at(idx()).assign(0.0f32);
    }
    let quadro = hpl::runtime().device_named("quadro").unwrap();
    let huge = Array::<f32, 1>::new([100 * 1024 * 1024]);
    let err = eval(touch).device(&quadro).run((&huge,)).unwrap_err();
    assert!(
        matches!(&err, hpl::Error::Backend(oclsim::Error::OutOfResources(_))),
        "{err}"
    );
}
