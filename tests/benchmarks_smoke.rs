//! Smoke test of the complete evaluation pipeline at test scale: all five
//! paper benchmarks, each verifying its three implementations against each
//! other and yielding structurally sane timing reports.

use benchsuite::common::BenchReport;

fn check(report: &BenchReport) {
    assert!(report.verified, "{}: implementations disagree", report.name);
    assert!(
        report.serial_modeled_seconds > 0.0,
        "{}: serial baseline missing",
        report.name
    );
    assert!(
        report.opencl.kernel_modeled_seconds > 0.0,
        "{}",
        report.name
    );
    assert!(report.hpl.kernel_modeled_seconds > 0.0, "{}", report.name);
    assert!(
        report.hpl.front_seconds > 0.0,
        "{}: HPL front-end must be measured",
        report.name
    );
    assert_eq!(
        report.opencl.front_seconds, 0.0,
        "{}: OpenCL has no front-end",
        report.name
    );
    assert!(
        report.opencl_speedup() > 1.0,
        "{}: the GPU must win",
        report.name
    );
    // no tighter bound on the HPL side here: the test profile is an
    // unoptimised build, which inflates the measured front-end wall time
    // far beyond what the release-mode figures see
    assert!(
        report.hpl.paper_seconds() > report.hpl.kernel_modeled_seconds,
        "{}",
        report.name
    );
}

#[test]
fn ep_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::ep::EpConfig::default();
    let report = benchsuite::ep::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "EP");
    check(&report);
}

#[test]
fn floyd_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::floyd::FloydConfig::default();
    let report = benchsuite::floyd::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "Floyd");
    check(&report);
}

#[test]
fn transpose_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::transpose::TransposeConfig::default();
    let report = benchsuite::transpose::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "transpose");
    check(&report);
}

#[test]
fn spmv_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::spmv::SpmvConfig::default();
    let report = benchsuite::spmv::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "spmv");
    check(&report);
}

#[test]
fn reduction_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::reduction::ReductionConfig::default();
    let report = benchsuite::reduction::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "reduction");
    check(&report);
}

/// Every benchmark driven through `run_async` must produce exactly the
/// bytes the blocking `run` produces: the scheduler may reorder the
/// uploads and launches, but the inferred wait lists pin down every
/// ordering that affects the result.
#[test]
fn ep_async_matches_sync_bit_for_bit() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::ep::EpConfig::default();
    let (s, _) = benchsuite::ep::hpl_version::run(&cfg, &device).unwrap();
    let (a, _) = benchsuite::ep::async_version::run(&cfg, &device).unwrap();
    assert_eq!(s.q, a.q);
    assert_eq!(s.sx.to_bits(), a.sx.to_bits());
    assert_eq!(s.sy.to_bits(), a.sy.to_bits());
}

#[test]
fn floyd_async_matches_sync_bit_for_bit() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::floyd::FloydConfig::default();
    let graph = benchsuite::floyd::generate_graph(&cfg);
    let (s, _) = benchsuite::floyd::hpl_version::run(&cfg, &graph, &device).unwrap();
    let (a, _) = benchsuite::floyd::async_version::run(&cfg, &graph, &device).unwrap();
    assert_eq!(s, a);
}

#[test]
fn transpose_async_matches_sync_bit_for_bit() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::transpose::TransposeConfig::default();
    let src = benchsuite::transpose::generate_matrix(&cfg);
    let (s, _) = benchsuite::transpose::hpl_version::run(&cfg, &src, &device).unwrap();
    let (a, _) = benchsuite::transpose::async_version::run(&cfg, &src, &device).unwrap();
    assert_eq!(
        s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn spmv_async_matches_sync_bit_for_bit() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::spmv::SpmvConfig::default();
    let p = benchsuite::spmv::generate(&cfg);
    let (s, _) = benchsuite::spmv::hpl_version::run(&cfg, &p, &device).unwrap();
    let (a, _) = benchsuite::spmv::async_version::run(&cfg, &p, &device).unwrap();
    assert_eq!(
        s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn reduction_async_matches_sync_bit_for_bit() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::reduction::ReductionConfig::default();
    let data = benchsuite::reduction::generate_input(&cfg);
    let (s, _) = benchsuite::reduction::hpl_version::run(&cfg, &data, &device).unwrap();
    let (a, _) = benchsuite::reduction::async_version::run(&cfg, &data, &device).unwrap();
    assert_eq!(s.to_bits(), a.to_bits());
}

#[test]
fn quadro_runs_fp32_benchmarks() {
    // the portability device handles everything except EP
    let quadro = hpl::runtime().device_named("quadro").unwrap();
    let cfg = benchsuite::floyd::FloydConfig { nodes: 32, seed: 5 };
    let report = benchsuite::floyd::run(&cfg, &quadro).unwrap();
    check(&report);

    let err = benchsuite::ep::run(&benchsuite::ep::EpConfig::default(), &quadro);
    assert!(err.is_err(), "EP needs fp64, which the Quadro lacks");
}
