//! Smoke test of the complete evaluation pipeline at test scale: all five
//! paper benchmarks, each verifying its three implementations against each
//! other and yielding structurally sane timing reports.

use benchsuite::common::BenchReport;

fn check(report: &BenchReport) {
    assert!(report.verified, "{}: implementations disagree", report.name);
    assert!(
        report.serial_modeled_seconds > 0.0,
        "{}: serial baseline missing",
        report.name
    );
    assert!(report.opencl.kernel_modeled_seconds > 0.0, "{}", report.name);
    assert!(report.hpl.kernel_modeled_seconds > 0.0, "{}", report.name);
    assert!(report.hpl.front_seconds > 0.0, "{}: HPL front-end must be measured", report.name);
    assert_eq!(report.opencl.front_seconds, 0.0, "{}: OpenCL has no front-end", report.name);
    assert!(report.opencl_speedup() > 1.0, "{}: the GPU must win", report.name);
    // no tighter bound on the HPL side here: the test profile is an
    // unoptimised build, which inflates the measured front-end wall time
    // far beyond what the release-mode figures see
    assert!(report.hpl.paper_seconds() > report.hpl.kernel_modeled_seconds, "{}", report.name);
}

#[test]
fn ep_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::ep::EpConfig::default();
    let report = benchsuite::ep::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "EP");
    check(&report);
}

#[test]
fn floyd_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::floyd::FloydConfig::default();
    let report = benchsuite::floyd::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "Floyd");
    check(&report);
}

#[test]
fn transpose_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::transpose::TransposeConfig::default();
    let report = benchsuite::transpose::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "transpose");
    check(&report);
}

#[test]
fn spmv_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::spmv::SpmvConfig::default();
    let report = benchsuite::spmv::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "spmv");
    check(&report);
}

#[test]
fn reduction_full_pipeline() {
    let device = hpl::runtime().default_device();
    let cfg = benchsuite::reduction::ReductionConfig::default();
    let report = benchsuite::reduction::run(&cfg, &device).unwrap();
    assert_eq!(report.name, "reduction");
    check(&report);
}

#[test]
fn quadro_runs_fp32_benchmarks() {
    // the portability device handles everything except EP
    let quadro = hpl::runtime().device_named("quadro").unwrap();
    let cfg = benchsuite::floyd::FloydConfig { nodes: 32, seed: 5 };
    let report = benchsuite::floyd::run(&cfg, &quadro).unwrap();
    check(&report);

    let err = benchsuite::ep::run(&benchsuite::ep::EpConfig::default(), &quadro);
    assert!(err.is_err(), "EP needs fp64, which the Quadro lacks");
}
