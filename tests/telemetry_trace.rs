//! Unified host+device traces: telemetry spans injected into the Chrome
//! trace exporter next to the modeled device tracks.
//!
//! `hpl::telemetry::collect` captures the host-side span tree of an eval
//! pipeline while `hpl::profile` captures the backend events of the same
//! work; `chrome_trace_with_host` merges both into one `trace_event`
//! JSON. These tests hold that merged trace to the same schema validator
//! the PR 3 device-only traces pass, and check the host spans themselves
//! are well-nested.

use hpl::prelude::*;
use hpl::telemetry;
use oclsim::prof::json::{parse, Value};
use oclsim::prof::trace::HOST_PID;
use oclsim::{chrome_trace_with_host, validate_chrome_trace, Event};
use std::sync::Mutex;

/// The span sink and kernel cache are process-global; the tests below
/// clear and drain both, so they must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn saxpy(y: &Array<f64, 1>, x: &Array<f64, 1>, a: &Double) {
    y.at(idx()).assign(a.v() * x.at(idx()) + y.at(idx()));
}

/// Run a small workload under both collectors at once: spans from
/// telemetry, backend events from the profile scope.
fn collect_workload() -> (Vec<Event>, Vec<telemetry::SpanRecord>) {
    let ((_, report), spans) = telemetry::collect(|| {
        hpl::profile(|| {
            let y = Array::<f64, 1>::from_vec([128], vec![1.0; 128]);
            let x = Array::<f64, 1>::from_vec([128], vec![2.0; 128]);
            let a = Double::new(3.0);
            eval(saxpy).run((&y, &x, &a)).unwrap();
            eval(saxpy).run((&y, &x, &a)).unwrap();
            let _ = y.to_vec();
        })
    });
    let mut events: Vec<Event> = report.launches.iter().map(|l| l.event.clone()).collect();
    events.extend(report.transfers.iter().filter_map(|t| t.event.clone()));
    (events, spans)
}

#[test]
fn host_device_trace_passes_the_schema_validator() {
    let _guard = SERIAL.lock().unwrap();
    let device = hpl::runtime().default_device();
    let (events, spans) = collect_workload();
    assert!(!events.is_empty(), "the profile scope saw backend events");
    assert!(!spans.is_empty(), "the telemetry layer saw host spans");

    let json = chrome_trace_with_host(&device, &events, &spans);
    validate_chrome_trace(&json).expect("host+device trace passes the PR 3 schema validator");

    // the host track is present: X slices under the synthetic host pid,
    // carrying the span categories of the eval pipeline
    let root = parse(&json).expect("trace parses");
    let trace_events = root
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let host_slices: Vec<&Value> = trace_events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::as_str) == Some("X")
                && e.get("pid").and_then(Value::as_num) == Some(HOST_PID as f64)
        })
        .collect();
    assert!(!host_slices.is_empty(), "host spans appear as X slices");
    let cats: Vec<&str> = host_slices
        .iter()
        .filter_map(|e| e.get("cat").and_then(Value::as_str))
        .collect();
    for expected in ["hpl", "coherence", "sched"] {
        assert!(
            cats.contains(&expected),
            "host track covers category `{expected}`: {cats:?}"
        );
    }
    // device tracks survive the injection: at least one slice under a
    // non-host pid (the CU/DMA tracks of the modeled device)
    assert!(
        trace_events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("X")
                && e.get("pid").and_then(Value::as_num) != Some(HOST_PID as f64)
        }),
        "device slices still present in the merged trace"
    );
}

#[test]
fn host_span_nesting_is_well_formed() {
    let _guard = SERIAL.lock().unwrap();
    // force a cold pipeline so recording, codegen and the clc stages all
    // appear in the tree (the other test may have warmed the cache)
    hpl::clear_kernel_cache();
    let (_, spans) = collect_workload();
    telemetry::check_nesting(&spans).expect("span tree is well-nested");

    // the eval pipeline produced the expected hierarchy: a cache_lookup
    // span, and clc stages nested (transitively) under the hpl build
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"cache_lookup"), "{names:?}");
    assert!(names.contains(&"parse"), "{names:?}");
    // every parent a span names is a span of the same thread that
    // contains it in wall time — stricter than check_nesting's partial-
    // drain tolerance, valid here because collect() drained a full tree
    for s in &spans {
        if let Some(parent_id) = s.parent {
            let parent = spans
                .iter()
                .find(|p| p.id == parent_id)
                .unwrap_or_else(|| panic!("span `{}` has a drained parent", s.name));
            assert_eq!(parent.thread, s.thread, "parented across threads: {s:?}");
            assert!(
                parent.wall_start_us <= s.wall_start_us && s.wall_end_us <= parent.wall_end_us,
                "span `{}` escapes its parent `{}`",
                s.name,
                parent.name
            );
        }
    }
}
