//! Cross-crate tests of HPL's automatic buffer/transfer management — the
//! machinery the paper's §VI highlights against EPGPU ("the aim of that
//! analysis currently being the minimization of the data transfers").

use hpl::prelude::*;

fn scale(y: &Array<f64, 1>, a: &Double) {
    y.at(idx()).assign(y.at(idx()) * a.v());
}

fn fill_from(dst: &Array<f64, 1>, src: &Array<f64, 1>) {
    dst.at(idx()).assign(src.at(idx()));
}

#[test]
fn repeated_evals_do_not_retransfer() {
    let y = Array::<f64, 1>::from_vec([512], vec![1.0; 512]);
    let a = Double::new(2.0);
    let device = hpl::runtime().default_device();

    let p1 = eval(scale).device(&device).run((&y, &a)).unwrap();
    assert!(p1.transfer_modeled_seconds > 0.0, "first eval uploads");
    for _ in 0..5 {
        let p = eval(scale).device(&device).run((&y, &a)).unwrap();
        assert_eq!(
            p.transfer_modeled_seconds, 0.0,
            "resident data must not re-upload"
        );
    }
    assert_eq!(y.get(0), 64.0, "2^6 scalings applied");
}

#[test]
fn host_write_invalidates_device_copy() {
    let y = Array::<f64, 1>::from_vec([128], vec![1.0; 128]);
    let a = Double::new(3.0);
    let device = hpl::runtime().default_device();

    eval(scale).device(&device).run((&y, &a)).unwrap();
    assert!(y.device_copy_valid(&device));

    y.set(5, 100.0); // host write invalidates the device copy
    assert!(!y.device_copy_valid(&device));

    let p = eval(scale).device(&device).run((&y, &a)).unwrap();
    assert!(
        p.transfer_modeled_seconds > 0.0,
        "stale device copy must re-upload"
    );
    assert_eq!(y.get(5), 300.0);
    assert_eq!(y.get(6), 9.0);
}

#[test]
fn read_only_input_stays_host_valid() {
    let src = Array::<f64, 1>::from_vec([64], vec![7.0; 64]);
    let dst = Array::<f64, 1>::new([64]);
    let device = hpl::runtime().default_device();

    eval(fill_from).device(&device).run((&dst, &src)).unwrap();
    assert!(
        src.host_copy_valid(),
        "kernel only read src: host copy still valid"
    );
    assert!(
        !dst.host_copy_valid(),
        "kernel wrote dst: host copy stale until synced"
    );
    assert_eq!(dst.get(0), 7.0);
    assert!(dst.host_copy_valid(), "get() synchronised the host copy");
}

#[test]
fn write_only_output_is_not_uploaded() {
    let src = Array::<f64, 1>::from_vec([4096], vec![1.0; 4096]);
    let dst = Array::<f64, 1>::from_vec([4096], vec![9.0; 4096]);
    let device = hpl::runtime().default_device();

    hpl::runtime().reset_transfer_stats();
    eval(fill_from).device(&device).run((&dst, &src)).unwrap();
    let stats = hpl::runtime().transfer_stats();
    assert_eq!(
        stats.h2d_bytes,
        4096 * 8,
        "only src (read) must be uploaded, not dst (write-only)"
    );
}

#[test]
fn data_migrates_between_devices_through_host() {
    let tesla = hpl::runtime().device_named("tesla").unwrap();
    let quadro = hpl::runtime().device_named("quadro").unwrap();

    fn bump(y: &Array<f32, 1>) {
        y.at(idx()).assign(y.at(idx()) + 1.0f32);
    }

    let y = Array::<f32, 1>::from_vec([64], vec![0.0; 64]);
    eval(bump).device(&tesla).run((&y,)).unwrap();
    assert!(y.device_copy_valid(&tesla));
    assert!(!y.device_copy_valid(&quadro));

    // running on the other device must see the Tesla's result
    eval(bump).device(&quadro).run((&y,)).unwrap();
    assert!(y.device_copy_valid(&quadro));
    assert!(
        !y.device_copy_valid(&tesla),
        "quadro's write invalidates the tesla copy"
    );
    assert_eq!(y.get(0), 2.0, "both increments visible");
}

#[test]
fn constant_arrays_bind_to_constant_memory() {
    fn apply(out: &Array<f32, 1>, coeff: &Array<f32, 1>) {
        out.at(idx()).assign(coeff.at(idx() % 4) * 10.0f32);
    }
    // note: `coeff` must be declared Constant at creation
    let coeff = Array::<f32, 1>::constant([4]);
    coeff.write_from(&[1.0, 2.0, 3.0, 4.0]);
    let out = Array::<f32, 1>::new([16]);
    let p = eval(apply).run((&out, &coeff)).unwrap();
    assert!(p.source.contains("__constant"), "{}", p.source);
    assert_eq!(out.get(0), 10.0);
    assert_eq!(out.get(5), 20.0);
}

#[test]
fn scalar_arguments_reread_each_eval() {
    let y = Array::<f64, 1>::from_vec([16], vec![1.0; 16]);
    let a = Double::new(2.0);
    eval(scale).run((&y, &a)).unwrap();
    a.set(5.0);
    eval(scale).run((&y, &a)).unwrap();
    assert_eq!(y.get(0), 10.0, "1 * 2 * 5");
}

#[test]
fn async_eval_keeps_coherence_flags_honest() {
    let y = Array::<f64, 1>::from_vec([256], vec![1.0; 256]);
    let a = Double::new(2.0);
    let device = hpl::runtime().default_device();

    let h = eval(scale).device(&device).run_async((&y, &a)).unwrap();
    // flags flip at enqueue time: the device copy is the authoritative one
    // even while the command may still be in flight
    assert!(y.device_copy_valid(&device));
    assert!(!y.host_copy_valid());
    h.wait().unwrap();
    assert_eq!(y.get(0), 2.0, "get() settles and syncs");
    assert!(y.host_copy_valid());
}

#[test]
fn sync_access_settles_pending_async_writers() {
    let y = Array::<f64, 1>::from_vec([128], vec![1.0; 128]);
    let a = Double::new(3.0);
    let device = hpl::runtime().default_device();

    // never wait on the handles: the host read below must do it
    let _h1 = eval(scale).device(&device).run_async((&y, &a)).unwrap();
    let _h2 = eval(scale).device(&device).run_async((&y, &a)).unwrap();
    assert_eq!(
        y.get(0),
        9.0,
        "both async scalings visible to the host read"
    );
}

#[test]
fn mixed_async_and_sync_evals_stay_coherent() {
    let y = Array::<f64, 1>::from_vec([64], vec![1.0; 64]);
    let a = Double::new(2.0);
    let device = hpl::runtime().default_device();

    let h = eval(scale).device(&device).run_async((&y, &a)).unwrap();
    // the blocking eval must order itself after the pending async write
    eval(scale).device(&device).run((&y, &a)).unwrap();
    h.wait().unwrap();
    // host write invalidates; the next async run re-uploads before launch
    y.set(0, 100.0);
    assert!(!y.device_copy_valid(&device));
    let h2 = eval(scale).device(&device).run_async((&y, &a)).unwrap();
    h2.wait().unwrap();
    assert_eq!(y.get(0), 200.0);
    assert_eq!(y.get(1), 8.0, "1 * 2 * 2 * 2");
}

#[test]
fn async_chain_reuses_resident_data() {
    let y = Array::<f64, 1>::from_vec([512], vec![1.0; 512]);
    let a = Double::new(2.0);
    let device = hpl::runtime().default_device();

    let h1 = eval(scale).device(&device).run_async((&y, &a)).unwrap();
    assert!(
        h1.wait().unwrap().transfer_modeled_seconds > 0.0,
        "first eval uploads"
    );
    for _ in 0..3 {
        let h = eval(scale).device(&device).run_async((&y, &a)).unwrap();
        let p = h.wait().unwrap();
        assert_eq!(
            p.transfer_modeled_seconds, 0.0,
            "resident data must not re-upload"
        );
    }
    assert_eq!(y.get(0), 16.0, "2^4 scalings applied");
}

#[test]
fn transfer_stats_track_bytes() {
    let n = 1024;
    hpl::runtime().reset_transfer_stats();
    let y = Array::<f64, 1>::from_vec([n], vec![1.0; n]);
    let a = Double::new(2.0);
    eval(scale).run((&y, &a)).unwrap();
    let _ = y.get(0);
    let stats = hpl::runtime().transfer_stats();
    assert_eq!(stats.h2d_count, 1);
    assert_eq!(stats.h2d_bytes, (n * 8) as u64);
    assert_eq!(stats.d2h_count, 1);
    assert_eq!(stats.d2h_bytes, (n * 8) as u64);
    assert!(stats.modeled_seconds > 0.0);
}
